#!/usr/bin/env python3
"""Markdown link checker: every intra-repository link must resolve.

Scans the given markdown files (and directories, recursively) for inline
links and images -- ``[text](target)`` / ``![alt](target)`` -- plus
reference-style definitions (``[label]: target``) and verifies that every
*repository-relative* target names an existing file or directory.

Out of scope, deliberately:

* absolute URLs (``http:``/``https:``/``mailto:``) -- checking the network
  in CI is flaky and none of this repo's correctness depends on it;
* in-page anchors (``#section``) and the fragment part of file links;
* targets that resolve *outside* the repository root (e.g. the CI badge's
  ``../../actions/...`` link, which is relative to the GitHub web UI, not
  the working tree).

Exit status: 0 when every checked link resolves, 1 otherwise (each broken
link is listed as ``file:line: target``).  Used by the CI docs job over
``README.md`` and ``docs/``, and by ``tests/docs/test_docs.py`` so the gate
also runs in the tier-1 suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links/images; the optional ``"title"`` part is ignored.
INLINE_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: Reference-style definitions: ``[label]: target``.
REFERENCE_LINK_RE = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: list[str]) -> list[Path]:
    """The markdown files named by the arguments (directories recurse)."""
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def iter_links(text: str):
    """Yield ``(line_number, target)`` for every link in a markdown text."""
    in_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in INLINE_LINK_RE.finditer(line):
            yield line_number, match.group(1)
        reference = REFERENCE_LINK_RE.match(line)
        if reference is not None:
            yield line_number, reference.group(1)


def broken_links(files: list[Path], root: Path) -> list[str]:
    """All broken intra-repository links, as ``file:line: target`` strings."""
    root = root.resolve()
    failures: list[str] = []
    for markdown in files:
        if not markdown.exists():
            failures.append(f"{markdown}: file does not exist")
            continue
        text = markdown.read_text(encoding="utf-8")
        for line_number, target in iter_links(text):
            if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (markdown.parent / file_part).resolve()
            if not resolved.is_relative_to(root):
                continue  # web-relative (e.g. the CI badge); not a tree path
            if not resolved.exists():
                failures.append(f"{markdown}:{line_number}: {target}")
    return failures


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments:
        print("usage: check_links.py <file-or-directory> [...]", file=sys.stderr)
        return 2
    files = iter_markdown_files(arguments)
    failures = broken_links(files, Path.cwd())
    checked = len(files)
    if failures:
        print(f"link check FAILED ({len(failures)} broken link(s) in {checked} file(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"link check passed: {checked} markdown file(s), all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
