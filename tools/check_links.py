#!/usr/bin/env python3
"""Markdown link checker: every intra-repository link must resolve.

Scans the given markdown files (and directories, recursively) for inline
links and images -- ``[text](target)`` / ``![alt](target)`` -- plus
reference-style definitions (``[label]: target``) and verifies that every
*repository-relative* target names an existing file or directory.  When a
link carries a fragment into a markdown file -- ``#section`` in-page, or
``other.md#section`` -- the fragment must match the GitHub-style anchor
slug of a heading in the target document.

Out of scope, deliberately:

* absolute URLs (``http:``/``https:``/``mailto:``) -- checking the network
  in CI is flaky and none of this repo's correctness depends on it;
* fragments into non-markdown files (source links with ``#L123`` line
  anchors render on the web UI, not from the tree);
* targets that resolve *outside* the repository root (e.g. the CI badge's
  ``../../actions/...`` link, which is relative to the GitHub web UI, not
  the working tree).

Exit status: 0 when every checked link resolves, 1 otherwise (each broken
link is listed as ``file:line: target``).  Used by the CI docs job over
``README.md`` and ``docs/``, and by ``tests/docs/test_docs.py`` so the gate
also runs in the tier-1 suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links/images; the optional ``"title"`` part is ignored.
INLINE_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: Reference-style definitions: ``[label]: target``.
REFERENCE_LINK_RE = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$")
#: ATX headings (``## Title``) -- the anchor targets GitHub generates.
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def heading_slugs(text: str) -> set[str]:
    """GitHub-style anchor slugs for every heading in a markdown text."""
    slugs: set[str] = set()
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match is None:
            continue
        title = match.group(2)
        # Strip inline markup the slugger ignores: link targets, emphasis
        # and code backticks survive as their visible text.
        title = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", title)
        title = title.replace("`", "").replace("*", "").strip()
        slug = re.sub(r"[^\w\- ]", "", title.lower(), flags=re.UNICODE)
        slug = slug.replace(" ", "-")
        base = slug
        suffix = 0
        while slug in slugs:  # duplicate headings get -1, -2, ... suffixes
            suffix += 1
            slug = f"{base}-{suffix}"
        slugs.add(slug)
    return slugs


def iter_markdown_files(arguments: list[str]) -> list[Path]:
    """The markdown files named by the arguments (directories recurse)."""
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def iter_links(text: str):
    """Yield ``(line_number, target)`` for every link in a markdown text."""
    in_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in INLINE_LINK_RE.finditer(line):
            yield line_number, match.group(1)
        reference = REFERENCE_LINK_RE.match(line)
        if reference is not None:
            yield line_number, reference.group(1)


def broken_links(files: list[Path], root: Path) -> list[str]:
    """All broken intra-repository links, as ``file:line: target`` strings."""
    root = root.resolve()
    failures: list[str] = []
    slug_cache: dict[Path, set[str]] = {}

    def slugs_of(path: Path, text: str | None = None) -> set[str]:
        if path not in slug_cache:
            slug_cache[path] = heading_slugs(
                text if text is not None else path.read_text(encoding="utf-8")
            )
        return slug_cache[path]

    for markdown in files:
        if not markdown.exists():
            failures.append(f"{markdown}: file does not exist")
            continue
        text = markdown.read_text(encoding="utf-8")
        for line_number, target in iter_links(text):
            if target.startswith(_SKIP_PREFIXES):
                continue
            file_part, _, fragment = target.partition("#")
            if not file_part:  # in-page anchor: check against this file
                if fragment and fragment not in slugs_of(markdown.resolve(), text):
                    failures.append(f"{markdown}:{line_number}: {target} (no such heading)")
                continue
            resolved = (markdown.parent / file_part).resolve()
            if not resolved.is_relative_to(root):
                continue  # web-relative (e.g. the CI badge); not a tree path
            if not resolved.exists():
                failures.append(f"{markdown}:{line_number}: {target}")
            elif fragment and resolved.suffix == ".md" and fragment not in slugs_of(resolved):
                failures.append(f"{markdown}:{line_number}: {target} (no such heading)")
    return failures


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments:
        print("usage: check_links.py <file-or-directory> [...]", file=sys.stderr)
        return 2
    files = iter_markdown_files(arguments)
    failures = broken_links(files, Path.cwd())
    checked = len(files)
    if failures:
        print(f"link check FAILED ({len(failures)} broken link(s) in {checked} file(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"link check passed: {checked} markdown file(s), all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
