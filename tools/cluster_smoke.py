#!/usr/bin/env python3
"""End-to-end cluster smoke: real processes, real sockets, a real kill.

Boots a two-node cluster exactly the way an operator would -- two
``repro cluster serve-node`` subprocesses and one ``repro cluster
serve-gateway`` subprocess in front of them -- then drives a mixed
digest-referenced manifest through the HTTP gateway while SIGKILLing one
node mid-run.  The run passes when

* every request before the kill succeeds,
* the coordinator marks the victim unhealthy (``/healthz`` stays 200 with
  the victim reported down),
* checks keep succeeding after the kill (failover to the surviving
  replica, read-repairing any digest the survivor never saw), and
* the post-kill answers agree with the pre-kill verdicts for the same
  manifest entries.

This is the CI ``cluster-smoke`` job's payload (see
``.github/workflows/ci.yml``); it exercises the subprocess + CLI surface
that the in-thread tier-1 cluster tests deliberately avoid.  Exit status 0
on success, 1 with a diagnostic on any failed expectation.
"""

from __future__ import annotations

import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster import ClusterClient
from repro.generators.random_fsp import perturb, random_equivalent_copy, random_fsp
from repro.service import protocol

#: Processes in the smoke workload: bases plus equivalent/perturbed variants.
NUM_BASES = 6
#: Checks driven through the gateway before and after the kill.
CHECKS_PER_PHASE = 40
#: Seconds to wait for a subprocess socket to start accepting.
BOOT_TIMEOUT = 30.0
#: Seconds for the coordinator's probe loop to notice the kill.
PROBE_TIMEOUT = 15.0

NOTIONS = ("strong", "trace", "observational")


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for_port(port: int, process: subprocess.Popen, what: str) -> None:
    deadline = time.monotonic() + BOOT_TIMEOUT
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(f"{what} exited with {process.returncode} before listening")
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=1.0):
                return
        except OSError:
            time.sleep(0.1)
    raise SystemExit(f"{what} did not start listening on port {port} within {BOOT_TIMEOUT}s")


def build_workload() -> list[tuple[object, object, str, bool | None]]:
    """``(left, right, notion, expected)`` tuples; ``None`` = verdict unknown.

    Twins are equivalent by construction (state duplication); perturbed
    copies are *probably* inequivalent but the smoke only requires their
    verdict to be stable, not to have a particular value.
    """
    cases: list[tuple[object, object, str, bool | None]] = []
    for index in range(NUM_BASES):
        base = random_fsp(num_states=14, seed=7000 + index, tau_probability=0.2)
        twin = random_equivalent_copy(base, duplicates=2, seed=7100 + index)
        off = perturb(base, seed=7200 + index)
        notion = NOTIONS[index % len(NOTIONS)]
        cases.append((base, twin, notion, True))
        cases.append((base, off, notion, None))
    return cases


def run_phase(
    client: ClusterClient,
    digests: list[tuple[str, str, str]],
    count: int,
) -> tuple[dict[int, bool], int]:
    """Drive ``count`` digest-referenced checks; returns verdicts and errors."""
    verdicts: dict[int, bool] = {}
    errors = 0
    for n in range(count):
        index = n % len(digests)
        left, right, notion = digests[index]
        try:
            result = client.check(left, right, notion)
        except (protocol.ServiceError, protocol.ProtocolError, OSError) as error:
            print(f"  check #{n} ({notion}) failed: {error}", file=sys.stderr)
            errors += 1
            continue
        verdicts.setdefault(index, bool(result["equivalent"]))
        if verdicts[index] != bool(result["equivalent"]):
            raise SystemExit(f"manifest entry {index} flapped between verdicts")
    return verdicts, errors


def main() -> int:
    root = Path(tempfile.mkdtemp(prefix="cluster_smoke_"))
    node_ports = [free_port(), free_port()]
    gateway_port = free_port()
    children: list[subprocess.Popen] = []

    def spawn(argv: list[str], log_name: str) -> subprocess.Popen:
        log = (root / log_name).open("w")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", *argv], stdout=log, stderr=subprocess.STDOUT
        )
        children.append(process)
        return process

    try:
        nodes = {}
        for index, port in enumerate(node_ports):
            name = f"node{index}"
            nodes[name] = spawn(
                [
                    "cluster",
                    "serve-node",
                    "--name",
                    name,
                    "--port",
                    str(port),
                    "--shards",
                    "1",
                    "--store",
                    str(root / name),
                ],
                f"{name}.log",
            )
        for (name, process), port in zip(nodes.items(), node_ports):
            wait_for_port(port, process, f"node {name}")

        gateway = spawn(
            [
                "cluster",
                "serve-gateway",
                "--port",
                str(gateway_port),
                "--replication",
                "2",
                "--probe-interval",
                "0.25",
                "--store",
                str(root / "coordinator"),
                *(
                    arg
                    for index, port in enumerate(node_ports)
                    for arg in ("--node", f"node{index}=127.0.0.1:{port}")
                ),
            ],
            "gateway.log",
        )
        wait_for_port(gateway_port, gateway, "gateway")

        with ClusterClient("127.0.0.1", gateway_port) as client:
            health = client.healthz()
            if not health.get("ok"):
                raise SystemExit(f"cluster unhealthy at boot: {health}")
            print(f"booted: 2 nodes + gateway on :{gateway_port}, healthz ok")

            cases = build_workload()
            digests: list[tuple[str, str, str]] = []
            for left, right, notion, _expected in cases:
                left_digest = client.store(left)["digest"]
                right_digest = client.store(right)["digest"]
                digests.append((left_digest, right_digest, notion))
            print(f"stored {2 * len(cases)} processes ({len(cases)} manifest entries)")

            before, before_errors = run_phase(client, digests, CHECKS_PER_PHASE)
            if before_errors:
                raise SystemExit(f"{before_errors} check(s) failed before the kill")
            for index, (_l, _r, notion, expected) in enumerate(cases):
                if expected is not None and before[index] != expected:
                    raise SystemExit(
                        f"manifest entry {index} ({notion}): got {before[index]}, "
                        f"expected {expected}"
                    )
            print(f"pre-kill: {CHECKS_PER_PHASE} checks ok, twin verdicts as expected")

            victim = "node0"
            nodes[victim].send_signal(signal.SIGKILL)
            nodes[victim].wait(timeout=10)
            print(f"killed {victim} (SIGKILL)")

            deadline = time.monotonic() + PROBE_TIMEOUT
            while time.monotonic() < deadline:
                health = client.healthz()
                if health.get("nodes", {}).get(victim) is False:
                    break
                time.sleep(0.2)
            else:
                raise SystemExit(f"coordinator never marked {victim} down: {health}")
            if not health.get("ok"):
                raise SystemExit(f"healthz went 503 with a survivor up: {health}")
            print(f"coordinator marked {victim} down, cluster still serving")

            after, after_errors = run_phase(client, digests, CHECKS_PER_PHASE)
            if after_errors:
                raise SystemExit(f"{after_errors} check(s) failed after the kill")
            if after != before:
                raise SystemExit(f"post-kill verdicts {after} != pre-kill {before}")

            stats = client.stats()["coordinator"]
            print(
                f"post-kill: {CHECKS_PER_PHASE} checks ok on the survivor "
                f"(failovers={stats['failovers']}, repairs={stats['repairs']})"
            )
        print("cluster smoke PASSED")
        return 0
    finally:
        for process in children:
            if process.poll() is None:
                process.terminate()
        for process in children:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                process.kill()
        print(f"logs under {root}")


if __name__ == "__main__":
    raise SystemExit(main())
