"""Splitter-queue partition refinement in the style of Kanellakis & Smolka.

Section 3 of the paper describes (and Kanellakis & Smolka 1983 / Smolka 1984
develop in full) a divide-and-conquer refinement that generalises Hopcroft's
DFA-minimisation algorithm to the relational setting: instead of re-examining
the whole partition after every change (the naive method), only blocks with an
arc into a *splitter* block can possibly split, so the algorithm keeps a
worklist of splitters and processes them one at a time.

The solver runs on the integer-indexed :class:`~repro.core.lts.LTS` kernel:
a splitter scan walks the cached per-``(action, target)`` reverse index, and
marking/splitting the touched blocks is O(1) per predecessor in the
:class:`~repro.partition.refinable.RefinablePartition` (the mark is inlined
in the scan loop, so the per-arc cost is a handful of list operations).

Worklist policy:

* Pending splitters are processed **smallest first** (a heap keyed by the
  block's size when it was enqueued; stale priorities are harmless because
  processing order never affects the result, only the amount of rework).
  Scanning the arcs into a splitter costs time proportional to the
  splitter's in-degree, so draining small blocks first keeps the repeatedly
  re-enqueued large remainder blocks from being rescanned while they are
  still shrinking.
* The smaller-half rule is applied exactly where it is sound.  When every
  function is *deterministic* (fanout at most one -- the Hopcroft special
  case the paper generalises), a block stable with respect to a splitter
  ``S`` and to one half ``B`` of a split of ``S`` is automatically stable
  with respect to ``S \\ B``, so only the smaller half of each split block
  is re-enqueued, giving the genuine ``O(k n log n)`` bound.  Otherwise the
  nonemptiness predicate does not determine the complement (precisely the
  gap Paige & Tarjan's three-way splitting closes), so both halves are
  conservatively re-enqueued; the worst case then matches the naive bound,
  but the splitter-queue structure keeps it close to Paige-Tarjan in
  practice -- see ``benchmarks/run_all.py`` for the measured trajectory.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

from repro.core.lts import LTS
from repro.partition.generalized import GeneralizedPartitioningInstance
from repro.partition.partition import Partition
from repro.partition.refinable import RefinablePartition, partition_from_refinable


def kanellakis_smolka_refine_lts(
    lts: LTS, block_of: list[int], num_blocks: int
) -> RefinablePartition:
    """Run splitter-queue refinement on the integer kernel."""
    part = RefinablePartition(block_of, num_blocks)
    n = lts.n
    if n == 0:
        return part
    rev_lists = lts.reverse_lists()
    num_actions = lts.num_actions
    smaller_half_only = lts.is_deterministic()

    elems = part.elems
    loc = part.loc
    blk = part.blk
    marked = part.marked
    first = part.first
    end = part.end

    pending = [(end[b] - first[b], b) for b in range(num_blocks)]
    heapify(pending)
    in_pending = [True] * num_blocks

    while pending:
        _, splitter_block = heappop(pending)
        if not in_pending[splitter_block]:
            continue  # stale heap entry: the block was already processed
        in_pending[splitter_block] = False
        splitter = elems[first[splitter_block] : end[splitter_block]]  # snapshot

        for action in range(num_actions):
            base = action * n
            # Mark every element with an arc (under this action) into the
            # splitter.  Blocks entirely inside or outside this preimage are
            # stable with respect to the splitter; mixed blocks must split.
            # The mark is inlined (see RefinablePartition.mark) -- this loop
            # runs once per arc into the splitter and dominates the runtime.
            touched: list[int] = []
            for target in splitter:
                for s in rev_lists[base + target]:
                    b = blk[s]
                    pos = loc[s]
                    boundary = first[b] + marked[b]
                    if pos >= boundary:
                        if boundary == first[b]:
                            touched.append(b)
                        other = elems[boundary]
                        elems[pos] = other
                        loc[other] = pos
                        elems[boundary] = s
                        loc[s] = boundary
                        marked[b] = boundary + 1 - first[b]
            for b in touched:
                m = marked[b]
                size = end[b] - first[b]
                if m == size:
                    marked[b] = 0  # wholly inside the preimage: stable
                    continue
                new_block = part.split_marked(b)
                in_pending.append(False)
                if in_pending[b]:
                    # The parent was still awaiting processing: both halves
                    # inherit its pending status.
                    heappush(pending, (m, new_block))
                    in_pending[new_block] = True
                elif smaller_half_only:
                    smaller = new_block if m <= size - m else b
                    heappush(pending, (end[smaller] - first[smaller], smaller))
                    in_pending[smaller] = True
                else:
                    heappush(pending, (size - m, b))
                    heappush(pending, (m, new_block))
                    in_pending[b] = True
                    in_pending[new_block] = True
    return part


def kanellakis_smolka_refine(instance: GeneralizedPartitioningInstance) -> Partition:
    """Solve a generalized partitioning instance with splitter-queue refinement."""
    lts, block_of, num_blocks = instance.kernel
    part = kanellakis_smolka_refine_lts(lts, block_of, num_blocks)
    return partition_from_refinable(part, lts.state_names)
