"""Splitter-queue partition refinement in the style of Kanellakis & Smolka.

Section 3 of the paper describes (and Kanellakis & Smolka 1983 / Smolka 1984
develop in full) a divide-and-conquer refinement that generalises Hopcroft's
DFA-minimisation algorithm to the relational setting: instead of re-examining
the whole partition after every change (the naive method), only blocks with an
arc into a *splitter* block can possibly split, so the algorithm keeps a
worklist of splitters and processes them one at a time.

For processes with fanout bounded by a constant ``c`` the original algorithm
achieves ``O(c^2 n log n)`` by re-adding only the smaller half of a split
block to the worklist.  The implementation below keeps the splitter-queue
structure but conservatively re-adds *both* halves of a split block whenever
the parent is no longer pending.  This keeps the algorithm correct for
unbounded nondeterminism (where the smaller-half shortcut alone is unsound --
precisely the gap that Paige & Tarjan's three-way splitting closes) at the
cost of a worst case matching the naive bound; in practice it performs close
to the Paige-Tarjan algorithm on the workloads of the benchmark suite and far
better than the naive method.  See ``benchmarks/bench_strong_equivalence.py``
(experiment E5) for the measured comparison.
"""

from __future__ import annotations

from collections import deque

from repro.partition.generalized import GeneralizedPartitioningInstance
from repro.partition.partition import Partition


def kanellakis_smolka_refine(instance: GeneralizedPartitioningInstance) -> Partition:
    """Solve a generalized partitioning instance with splitter-queue refinement."""
    partition = instance.initial_partition()
    predecessors = instance.predecessor_map()
    function_names = sorted(instance.functions)

    # Worklist of pending splitter block ids.  A set mirror gives O(1)
    # membership tests so we can tell whether a split parent is still pending.
    pending: deque[int] = deque(partition.block_ids())
    pending_set: set[int] = set(pending)

    while pending:
        splitter_id = pending.popleft()
        pending_set.discard(splitter_id)
        try:
            splitter = partition.block_members(splitter_id)
        except Exception:  # pragma: no cover - splitter ids never disappear
            continue

        for name in function_names:
            # Elements with at least one arc (under this function) into the
            # splitter block.  Blocks entirely inside or entirely outside this
            # preimage are stable with respect to the splitter; mixed blocks
            # must be split.
            preimage: set[str] = set()
            pred = predecessors[name]
            for member in splitter:
                preimage |= pred.get(member, frozenset())
            if not preimage:
                continue

            touched_blocks: dict[int, set[str]] = {}
            for element in preimage:
                touched_blocks.setdefault(partition.block_id_of(element), set()).add(element)

            for block_id, inside in touched_blocks.items():
                members = partition.block_members(block_id)
                if len(inside) == len(members):
                    continue
                result = partition.split_block(block_id, inside)
                if result is None:
                    continue
                kept_id, new_id = result
                if block_id in pending_set:
                    # The parent was still awaiting processing: both halves
                    # inherit its pending status.
                    pending.append(new_id)
                    pending_set.add(new_id)
                else:
                    # Conservative variant: enqueue both halves.  (With fanout
                    # bounded by a constant the original algorithm enqueues
                    # only the smaller one.)
                    smaller, larger = sorted(
                        (kept_id, new_id), key=lambda bid: len(partition.block_members(bid))
                    )
                    pending.append(smaller)
                    pending_set.add(smaller)
                    pending.append(larger)
                    pending_set.add(larger)
    return partition
