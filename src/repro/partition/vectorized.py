"""Vectorized partition refinement: whole-array rounds on CSR edge arrays.

The pure-Python solvers (:mod:`repro.partition.kanellakis_smolka`,
:mod:`repro.partition.paige_tarjan`) spend a handful of list operations per
arc; at ``n ~ 10^6`` states the interpreter constant dominates everything the
paper's asymptotics promise.  This module computes the same coarsest stable
refinement with numpy array passes:

* Each **round** recomputes, for every state, the *splitter signature*
  ``{(action, block(target)) | state --action--> target}`` of the current
  partition.  The per-state sets are canonicalised in bulk: one
  ``np.lexsort`` over the ``(source, action, block[target])`` edge columns,
  a shift-compare dedup (the vectorized analogue of the per-dict splitter
  counting the Python solvers do arc by arc), and an ``np.bincount`` over
  sources to slice the flat pair list back into per-state rows.
* States are regrouped by ``(current block, signature)`` with iterated
  pair-ranking (lexsort + cumulative sum of change flags), i.e. a radix
  pass per signature column -- ``O((n + m) log)`` whole-array work per
  round, no Python-level loop over states or arcs anywhere.
* Rounds repeat until the block count stops growing.  Each round is a full
  functional step ``pi -> sig(pi)``, so after round ``r`` two states share
  a block iff no splitter sequence of length ``<= r`` separates them: the
  fixpoint is exactly the coarsest stable refinement the sequential solvers
  compute (the paper's Section 3 characterisation), reached after
  *refinement depth* many rounds.

The trade is constant factor against round count: deep, chain-like families
(``comb``, ``duplicated_chain``) have ``Theta(n)`` refinement depth and stay
the worklist solvers' home turf, while wide, shallow families -- meshes,
shift registers, the saturated relations of the weak pipeline, anything
whose depth is ``O(log n)`` or ``O(sqrt n)`` -- refine orders of magnitude
faster here (``BENCH_partition.json``'s ``vector_records`` section records
the measured gap, gated in CI).  The Python solvers remain the oracles the
property tests compare against, the same pattern ``saturate_reference``
established for the weak engine.

Because a round only touches the edge arrays through gathers
(``block[targets]``) and sorts, the kernel runs unchanged on
:class:`~repro.utils.matrices.MmapCSR` memory-mapped arrays: the working
set is the ``O(n)`` block/signature arrays plus the round's temporaries,
while the edges live on disk -- the out-of-core posture the ROADMAP's
``10^6``--``10^7`` state tier needs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.lts import LTS
from repro.partition.generalized import GeneralizedPartitioningInstance
from repro.partition.partition import Partition
from repro.utils.matrices import CSRArrays, require_numpy

__all__ = [
    "vector_refine_arrays",
    "vector_refine_csr",
    "vector_refine_lts",
    "vector_refine",
]


#: Packed ``primary * span + secondary`` keys must stay below this bound for
#: the single-key fast path of :func:`_pair_rank`; beyond it the two-key
#: lexsort route is used instead (int64 headroom, overflow-proof).
_PACK_LIMIT = 1 << 62


def _pair_rank(np, primary, secondary, pmax: int | None = None, smax: int | None = None):
    """Dense ids for the distinct ``(primary, secondary)`` pairs (one radix pass).

    Equivalent to ``np.unique(column_stack, axis=0, return_inverse=True)``
    without the void-view machinery.  When the caller knows (upper bounds on)
    the maxima, pairs are packed into one int64 key and ranked with a single
    ``argsort``; otherwise -- or when packing would overflow -- a two-key
    ``lexsort`` does the same work at twice the sorting cost.  ``secondary``
    may contain the ``-1`` sentinel (absent column), hence the ``+ 1`` shift.
    """
    if pmax is None:
        pmax = int(primary.max()) if len(primary) else 0
    if smax is None:
        smax = int(secondary.max()) if len(secondary) else 0
    span = smax + 2
    if (pmax + 1) * span < _PACK_LIMIT:
        key = primary * span + (secondary + 1)
        order = np.argsort(key, kind="stable")
        k_sorted = key[order]
        fresh = np.ones(len(order), dtype=bool)
        fresh[1:] = k_sorted[1:] != k_sorted[:-1]
    else:  # pragma: no cover - needs > 2^31 states to reach
        order = np.lexsort((secondary, primary))
        p_sorted = primary[order]
        s_sorted = secondary[order]
        fresh = np.ones(len(order), dtype=bool)
        fresh[1:] = (p_sorted[1:] != p_sorted[:-1]) | (s_sorted[1:] != s_sorted[:-1])
    ids = np.cumsum(fresh) - 1
    inverse = np.empty(len(order), dtype=np.int64)
    inverse[order] = ids
    return inverse


def vector_refine_arrays(sources, actions, targets, block_of, n: int):
    """Coarsest stable refinement over flat edge arrays (the inner kernel).

    Parameters are ``int64`` ndarrays: per-arc ``sources`` / ``actions`` /
    ``targets`` (any order, duplicates tolerated) and the initial ``block_of``
    assignment with block ids ``0..B-1``.  Returns the refined assignment as
    an ``int64`` array whose ids are dense but otherwise arbitrary -- compare
    partitions up to renumbering, or via :func:`repro.partition.partition.Partition`.
    """
    np = require_numpy()
    block = np.asarray(block_of, dtype=np.int64).copy()
    if n == 0:
        return block
    num_blocks = int(block.max()) + 1 if len(block) else 0
    if len(sources) == 0:
        return block
    m = len(sources)
    # Pre-sort the arc columns by source once; the per-round sort then only
    # has to order the (bounded) pair keys within each source run.
    base_order = np.argsort(sources, kind="stable")
    src = sources[base_order]
    act = actions[base_order]
    dst = targets[base_order]
    del base_order
    amax = int(act.max())

    while True:
        # Splitter signature pairs (action, block(target)), deduped per state.
        # Fast path: pack (source, action, target-block) into one int64 key
        # and sort once; the lexsort route covers sizes where packing would
        # overflow.
        pair_span = (amax + 1) * num_blocks
        if n * pair_span < _PACK_LIMIT:
            pair_key = act * num_blocks + block[dst]
            order = np.argsort(src * pair_span + pair_key, kind="stable")
            s_sorted = src[order]
            p_sorted = pair_key[order]
            pair_bound = pair_span - 1
        else:  # pragma: no cover - needs > 2^31 states to reach
            pair_key = _pair_rank(np, act, block[dst])
            order = np.lexsort((pair_key, src))
            s_sorted = src[order]
            p_sorted = pair_key[order]
            pair_bound = int(p_sorted.max())
        keep = np.ones(m, dtype=bool)
        keep[1:] = (s_sorted[1:] != s_sorted[:-1]) | (p_sorted[1:] != p_sorted[:-1])
        s_unique = s_sorted[keep]
        p_unique = p_sorted[keep]
        # Slice the flat pair list into fixed-width per-state rows: state s
        # owns counts[s] pairs starting at starts[s] (np.bincount is the
        # vectorized splitter count).
        counts = np.bincount(s_unique, minlength=n)
        width = int(counts.max()) if len(counts) else 0
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        position = np.arange(len(s_unique), dtype=np.int64) - starts[s_unique]
        # Regroup by (old block, signature row), one radix pass per column.
        rank = block
        column = np.full(n, -1, dtype=np.int64)
        for col in range(width):
            column[:] = -1
            in_col = position == col
            column[s_unique[in_col]] = p_unique[in_col]
            rank = _pair_rank(np, rank, column, pmax=n, smax=pair_bound)
        new_count = int(rank.max()) + 1
        if new_count == num_blocks:
            return block
        num_blocks = new_count
        block = rank


def vector_refine_csr(csr: CSRArrays, block_of, num_blocks: int | None = None):
    """Run the vector kernel on a :class:`~repro.utils.matrices.CSRArrays`.

    Accepts in-memory and memory-mapped (:class:`~repro.utils.matrices.MmapCSR`)
    stores alike; ``num_blocks`` is accepted for interface symmetry with the
    Python solvers and not needed by the algorithm.  Returns the refined
    ``block_of`` as an ``int64`` array.
    """
    require_numpy()
    return vector_refine_arrays(csr.sources(), csr.actions, csr.targets, block_of, csr.n)


def vector_refine_lts(lts: LTS, block_of: Sequence[int], num_blocks: int):
    """Drop-in vectorized counterpart of ``kanellakis_smolka_refine_lts``.

    Same inputs as the Python ``*_refine_lts`` solvers (an interned
    :class:`~repro.core.lts.LTS` plus the initial block assignment); the
    partition it computes is identical up to block renumbering.
    """
    return vector_refine_csr(CSRArrays.from_lts(lts), block_of, num_blocks)


def vector_refine(instance: GeneralizedPartitioningInstance) -> Partition:
    """Solve a generalized partitioning instance with the vector kernel.

    The string-keyed interface twin of ``kanellakis_smolka_refine`` /
    ``paige_tarjan_refine``: accepts the Lemma 3.1 instance, returns a
    :class:`~repro.partition.partition.Partition` over the element names.
    """
    np = require_numpy()
    lts, block_of, _num_blocks = instance.kernel
    if lts.n == 0:
        return Partition([])
    assignment = vector_refine_lts(lts, block_of, _num_blocks)
    names = lts.state_names
    order = np.argsort(assignment, kind="stable")
    boundaries = np.flatnonzero(
        np.concatenate(([True], assignment[order][1:] != assignment[order][:-1]))
    )
    groups = np.split(order, boundaries[1:])
    return Partition([names[int(i)] for i in group] for group in groups)
