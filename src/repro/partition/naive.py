"""The naive method of Lemma 3.2 for generalized partitioning.

Starting from the initial partition, every block is repeatedly split so that
two elements stay together only when, for every function, their images hit the
same set of blocks.  Each global pass costs ``O(n + m)`` (we compute one
signature per element and group by it), and at most ``n`` passes are needed
because every pass that changes anything increases the number of blocks.  The
total is the ``O(nm)`` bound of Lemma 3.2.
"""

from __future__ import annotations

from repro.partition.generalized import GeneralizedPartitioningInstance
from repro.partition.partition import Partition


def naive_refine(instance: GeneralizedPartitioningInstance) -> Partition:
    """Solve a generalized partitioning instance with the naive method.

    Returns the coarsest stable refinement of the instance's initial
    partition.
    """
    partition = instance.initial_partition()
    function_names = sorted(instance.functions)
    changed = True
    while changed:
        # Signature of an element: for every function, the set of blocks its
        # image intersects.  Two elements may share a block in the refined
        # partition only if their signatures (and current blocks) agree.
        signatures: dict[str, frozenset[tuple[str, int]]] = {}
        for element in instance.elements:
            signature = set()
            for name in function_names:
                for target in instance.image(name, element):
                    signature.add((name, partition.block_id_of(target)))
            signatures[element] = frozenset(signature)
        changed = partition.split_by_key(lambda element: signatures[element])
    return partition


def naive_refinement_passes(instance: GeneralizedPartitioningInstance) -> int:
    """The number of global passes the naive method performs on this instance.

    Exposed for the benchmark harness (experiment E6), which contrasts the
    pass count and total work of the naive method with the splitter-driven
    algorithms.
    """
    partition = instance.initial_partition()
    function_names = sorted(instance.functions)
    passes = 0
    changed = True
    while changed:
        passes += 1
        signatures: dict[str, frozenset[tuple[str, int]]] = {}
        for element in instance.elements:
            signature = set()
            for name in function_names:
                for target in instance.image(name, element):
                    signature.add((name, partition.block_id_of(target)))
            signatures[element] = frozenset(signature)
        changed = partition.split_by_key(lambda element: signatures[element])
    return passes
