"""The naive method of Lemma 3.2 for generalized partitioning.

Starting from the initial partition, every block is repeatedly split so that
two elements stay together only when, for every function, their images hit the
same set of blocks.  Each global pass costs ``O(n + m)`` (we compute one
signature per element and group by it), and at most ``n`` passes are needed
because every pass that changes anything increases the number of blocks.  The
total is the ``O(nm)`` bound of Lemma 3.2.

The pass structure is unchanged from the paper; the implementation runs on
the integer-indexed :class:`~repro.core.lts.LTS` kernel, so a signature is a
frozenset of packed ``(action, block)`` integers read straight off the CSR
arrays rather than a set of string tuples.
"""

from __future__ import annotations

from repro.core.lts import LTS
from repro.partition.generalized import GeneralizedPartitioningInstance
from repro.partition.partition import Partition
from repro.partition.refinable import RefinablePartition, partition_from_refinable

#: Shift packing an action id and a block id into one signature integer.
#: Block ids are bounded by ``2n`` which is far below ``2**40``.
_ACTION_SHIFT = 40


def naive_refine_lts(lts: LTS, block_of: list[int], num_blocks: int) -> RefinablePartition:
    """Run the naive method on the integer kernel; returns the refined partition."""
    part, _passes = _refine_counting_passes(lts, block_of, num_blocks)
    return part


def _refine_counting_passes(
    lts: LTS, block_of: list[int], num_blocks: int
) -> tuple[RefinablePartition, int]:
    part = RefinablePartition(block_of, num_blocks)
    n = lts.n
    offsets = lts.fwd_offsets
    arc_actions = lts.fwd_actions.tolist()
    arc_targets = lts.fwd_targets.tolist()
    passes = 0
    changed = True
    empty = frozenset()
    while changed:
        passes += 1
        changed = False
        blk = part.blk
        # Signature of an element: for every function, the set of blocks its
        # image intersects.  Two elements may share a block in the refined
        # partition only if their signatures (and current blocks) agree.
        sigs: list[frozenset[int]] = [empty] * n
        for s in range(n):
            lo, hi = offsets[s], offsets[s + 1]
            if lo != hi:
                sigs[s] = frozenset(
                    (arc_actions[i] << _ACTION_SHIFT) | blk[arc_targets[i]]
                    for i in range(lo, hi)
                )
        elems = part.elems
        for b in range(part.num_blocks()):  # new blocks this pass are uniform
            f, e = part.first[b], part.end[b]
            if e - f <= 1:
                continue
            groups: dict[frozenset[int], list[int]] = {}
            for i in range(f, e):
                s = elems[i]
                groups.setdefault(sigs[s], []).append(s)
            if len(groups) <= 1:
                continue
            changed = True
            buckets = iter(groups.values())
            next(buckets)  # the first group stays in the existing block
            for bucket in buckets:
                for s in bucket:
                    part.mark(s)
                part.split_marked(b)
    return part, passes


def naive_refine(instance: GeneralizedPartitioningInstance) -> Partition:
    """Solve a generalized partitioning instance with the naive method.

    Returns the coarsest stable refinement of the instance's initial
    partition.
    """
    lts, block_of, num_blocks = instance.kernel
    return partition_from_refinable(naive_refine_lts(lts, block_of, num_blocks), lts.state_names)


def naive_refinement_passes(instance: GeneralizedPartitioningInstance) -> int:
    """The number of global passes the naive method performs on this instance.

    Exposed for the benchmark harness (experiment E6), which contrasts the
    pass count and total work of the naive method with the splitter-driven
    algorithms.
    """
    lts, block_of, num_blocks = instance.kernel
    _part, passes = _refine_counting_passes(lts, block_of, num_blocks)
    return passes
