"""Array-based refinable partition for the integer solvers.

This is the classical "refinable partition" structure used by engineered
partition-refinement implementations (Hopcroft, Paige-Tarjan, Valmari):
the element set ``0..n-1`` lives in one permutation array, grouped so that
every block occupies a contiguous slice.  Marking an element swaps it into
the marked prefix of its block in O(1); splitting a block detaches the
marked prefix as a new block in O(marked).  No per-split set allocation,
no hashing -- exactly the constant-factor discipline the string/dict based
:class:`~repro.partition.partition.Partition` cannot offer.

The string-keyed :class:`~repro.partition.partition.Partition` remains the
*interface* type returned to callers; :func:`partition_from_refinable`
converts a finished refinement back to it.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.partition.partition import Partition


class RefinablePartition:
    """A partition of ``0..n-1`` supporting O(1) marking and O(k) splits.

    Blocks are numbered ``0..num_blocks-1``; new blocks created by
    :meth:`split_marked` receive fresh ids (the unmarked remainder keeps the
    parent id, mirroring the convention of
    :meth:`~repro.partition.partition.Partition.split_block`).
    """

    __slots__ = ("elems", "loc", "blk", "first", "end", "marked")

    def __init__(self, block_of: Sequence[int], num_blocks: int) -> None:
        n = len(block_of)
        counts = [0] * num_blocks
        for b in block_of:
            counts[b] += 1
        first = [0] * num_blocks
        end = [0] * num_blocks
        total = 0
        for b in range(num_blocks):
            first[b] = total
            total += counts[b]
            end[b] = total
        cursor = list(first)
        elems = [0] * n
        loc = [0] * n
        for s in range(n):
            b = block_of[s]
            slot = cursor[b]
            elems[slot] = s
            loc[s] = slot
            cursor[b] = slot + 1
        self.elems = elems  #: element ids, grouped by block
        self.loc = loc  #: position of each element in ``elems``
        self.blk = list(block_of)  #: block id of each element
        self.first = first  #: block id -> slice start in ``elems``
        self.end = end  #: block id -> slice end (exclusive)
        self.marked = [0] * num_blocks  #: block id -> number of marked elements

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def num_blocks(self) -> int:
        return len(self.first)

    def size(self, block: int) -> int:
        return self.end[block] - self.first[block]

    def block_elems(self, block: int) -> list[int]:
        """A snapshot copy of the block's members (safe to hold across splits)."""
        return self.elems[self.first[block] : self.end[block]]

    def to_blocks(self) -> list[list[int]]:
        """All blocks as lists of element ids."""
        return [self.block_elems(b) for b in range(len(self.first))]

    # ------------------------------------------------------------------
    # refinement
    # ------------------------------------------------------------------
    def mark(self, element: int) -> None:
        """Move ``element`` into the marked prefix of its block (idempotent)."""
        b = self.blk[element]
        i = self.loc[element]
        boundary = self.first[b] + self.marked[b]
        if i >= boundary:
            elems = self.elems
            other = elems[boundary]
            elems[i] = other
            self.loc[other] = i
            elems[boundary] = element
            self.loc[element] = boundary
            self.marked[b] = boundary + 1 - self.first[b]

    def split_marked(self, block: int) -> int:
        """Detach the marked prefix of ``block`` as a new block.

        Returns the new block id, or ``-1`` (leaving the partition unchanged
        apart from clearing the marks) when the split would be trivial --
        nothing marked, or the whole block marked.
        """
        m = self.marked[block]
        self.marked[block] = 0
        f = self.first[block]
        if m == 0 or f + m == self.end[block]:
            return -1
        new_block = len(self.first)
        self.first.append(f)
        self.end.append(f + m)
        self.marked.append(0)
        self.first[block] = f + m
        blk = self.blk
        elems = self.elems
        for i in range(f, f + m):
            blk[elems[i]] = new_block
        return new_block


def partition_from_refinable(part: RefinablePartition, names: Sequence[str]) -> Partition:
    """Render a finished integer refinement as a string-keyed :class:`Partition`."""
    return Partition([names[s] for s in part.block_elems(b)] for b in range(part.num_blocks()))
