"""The Paige-Tarjan relational coarsest partition algorithm.

Theorem 3.1 of the paper obtains its ``O(m log n + n)`` bound for strong
equivalence by plugging in the algorithm of Paige & Tarjan (1987), which
solves exactly the generalized partitioning problem (they call it *relational
coarsest partition*).  The algorithm maintains two partitions:

* ``P`` -- the current fine partition (which refines the answer from above),
* ``X`` -- a coarser partition, each of whose blocks is a union of ``P``-blocks,

with the invariant that ``P`` is *stable* with respect to every block of
``X``.  While some ``X``-block ``S`` is *compound* (contains at least two
``P``-blocks), the algorithm picks a ``P``-block ``B`` inside ``S`` of at most
half its size, replaces ``S`` by ``B`` and ``S \\ B`` in ``X``, and restores
stability by the famous *three-way split*: each ``P``-block is split by
"has an arc into ``B``" and then by "has an arc into ``S \\ B``", using
per-element arc counts so that the second test needs no scan of ``S \\ B``.
Processing a splitter costs time proportional to the arcs into ``B``, and each
element's block can play the role of ``B`` only ``O(log n)`` times, giving
``O(m log n + n)``.

The implementation runs on the integer-indexed :class:`~repro.core.lts.LTS`
kernel: splitter scans walk the cached reverse CSR index, counts are kept in
a dict keyed by a single packed integer ``(x_block * k + action) * n + state``
(one hash per update instead of a tuple allocation), and the blocks live in a
:class:`~repro.partition.refinable.RefinablePartition`.
"""

from __future__ import annotations

from repro.core.lts import LTS
from repro.partition.generalized import GeneralizedPartitioningInstance
from repro.partition.partition import Partition
from repro.partition.refinable import RefinablePartition, partition_from_refinable


def paige_tarjan_refine_lts(lts: LTS, block_of: list[int], num_blocks: int) -> RefinablePartition:
    """Run the Paige-Tarjan algorithm on the integer kernel."""
    n = lts.n
    num_actions = lts.num_actions
    if n == 0:
        return RefinablePartition(block_of, num_blocks)
    offsets = lts.fwd_offsets
    arc_actions = lts.fwd_actions.tolist()
    rev_lists = lts.reverse_lists()

    # ------------------------------------------------------------------
    # Preprocessing: make P stable with respect to the single X-block U.
    # For every function, elements with a non-empty image must be separated
    # from elements with an empty image inside every initial block, so group
    # states by (initial block, bitmask of actions with outgoing arcs) and
    # rebuild the partition over those finer ids.  Along the way record the
    # per-(state, action) out-degrees that seed the counts against U.
    # ------------------------------------------------------------------
    out_count = [0] * (n * num_actions)
    for s in range(n):
        base = s * num_actions
        for i in range(offsets[s], offsets[s + 1]):
            out_count[base + arc_actions[i]] += 1
    fine_ids: dict[tuple[int, int], int] = {}
    fine_of = [0] * n
    for s in range(n):
        mask = 0
        base = s * num_actions
        for action in range(num_actions):
            if out_count[base + action]:
                mask |= 1 << action
        fine_of[s] = fine_ids.setdefault((block_of[s], mask), len(fine_ids))
    part = RefinablePartition(fine_of, len(fine_ids))

    # ------------------------------------------------------------------
    # X-partition bookkeeping.  X-blocks are identified by integers; each
    # X-block is a set of P-block ids, and every P-block belongs to exactly
    # one X-block.  counts[(x * k + action) * n + s] = |f_action(s) ∩ X-block|.
    # ------------------------------------------------------------------
    x_of = [0] * part.num_blocks()
    x_members: list[set[int]] = [set(range(part.num_blocks()))]
    compound = {0} if part.num_blocks() > 1 else set()

    counts: dict[int, int] = {}
    for s in range(n):
        base = s * num_actions
        for action in range(num_actions):
            c = out_count[base + action]
            if c:
                counts[action * n + s] = c  # x = 0

    blk = part.blk
    marked = part.marked
    first = part.first
    end = part.end

    def register_split(parent: int, new_block: int) -> None:
        """A P-block split: the new block joins the parent's X-block."""
        x = x_of[parent]
        x_members[x].add(new_block)
        x_of.append(x)
        if len(x_members[x]) > 1:
            compound.add(x)

    # ------------------------------------------------------------------
    # Main refinement loop.
    # ------------------------------------------------------------------
    while compound:
        s_x = compound.pop()
        members = x_members[s_x]
        if len(members) <= 1:
            continue
        # Choose a P-block B inside S of size at most |S| / 2.
        b_block = min(members, key=lambda pid: end[pid] - first[pid])
        splitter = part.block_elems(b_block)

        # Move B out of S into its own X-block.
        members.discard(b_block)
        b_x = len(x_members)
        x_members.append({b_block})
        x_of[b_block] = b_x
        if len(members) > 1:
            compound.add(s_x)

        # Per action: count arcs into the new X-block B per source (walking
        # only the reverse-index slices of B's members), update the counts
        # against the remainder S' = S \ B, and three-way split.  The split
        # for one action happens before the counts for the next are read,
        # which is safe because counts are per-element, not per-block.
        for action in range(num_actions):
            base = action * n
            per_action: dict[int, int] = {}
            get_count = per_action.get
            for target in splitter:
                for source in rev_lists[base + target]:
                    per_action[source] = get_count(source, 0) + 1
            if not per_action:
                continue
            base_b = (b_x * num_actions + action) * n
            base_s = (s_x * num_actions + action) * n
            for source, count_into_b in per_action.items():
                counts[base_b + source] = count_into_b
                remaining = counts.get(base_s + source, 0) - count_into_b
                if remaining:
                    counts[base_s + source] = remaining
                else:
                    counts.pop(base_s + source, None)

            # First split: elements with an arc into B versus the rest.
            hit_blocks: list[int] = []
            for source in per_action:
                b = blk[source]
                if marked[b] == 0:
                    hit_blocks.append(b)
                part.mark(source)
            inside_blocks: list[int] = []
            for b in hit_blocks:
                if marked[b] == end[b] - first[b]:
                    marked[b] = 0  # wholly inside the preimage: no split
                    inside_blocks.append(b)
                    continue
                new_block = part.split_marked(b)
                register_split(b, new_block)
                inside_blocks.append(new_block)
            # Second split: among elements with an arc into B, separate those
            # with no remaining arc into S' (count into S' is zero).
            for b in inside_blocks:
                for source in part.block_elems(b):  # snapshot: mark() reorders
                    if counts.get(base_s + source, 0) == 0:
                        part.mark(source)
                m = marked[b]
                if m == 0 or m == end[b] - first[b]:
                    marked[b] = 0
                    continue
                new_block = part.split_marked(b)
                register_split(b, new_block)

    return part


def paige_tarjan_refine(instance: GeneralizedPartitioningInstance) -> Partition:
    """Solve a generalized partitioning instance with the Paige-Tarjan algorithm."""
    lts, block_of, num_blocks = instance.kernel
    part = paige_tarjan_refine_lts(lts, block_of, num_blocks)
    return partition_from_refinable(part, lts.state_names)
