"""The Paige-Tarjan relational coarsest partition algorithm.

Theorem 3.1 of the paper obtains its ``O(m log n + n)`` bound for strong
equivalence by plugging in the algorithm of Paige & Tarjan (1987), which
solves exactly the generalized partitioning problem (they call it *relational
coarsest partition*).  The algorithm maintains two partitions:

* ``P`` -- the current fine partition (which refines the answer from above),
* ``X`` -- a coarser partition, each of whose blocks is a union of ``P``-blocks,

with the invariant that ``P`` is *stable* with respect to every block of
``X``.  While some ``X``-block ``S`` is *compound* (contains at least two
``P``-blocks), the algorithm picks a ``P``-block ``B`` inside ``S`` of at most
half its size, replaces ``S`` by ``B`` and ``S \\ B`` in ``X``, and restores
stability by the famous *three-way split*: each ``P``-block is split by
"has an arc into ``B``" and then by "has an arc into ``S \\ B``", using
per-element arc counts so that the second test needs no scan of ``S \\ B``.
Processing a splitter costs time proportional to the arcs into ``B``, and each
element's block can play the role of ``B`` only ``O(log n)`` times, giving
``O(m log n + n)``.

The implementation below follows the published algorithm with one relation per
function name (one per action of the reduced FSP); counts are kept per
``(element, function, X-block)``.
"""

from __future__ import annotations

from repro.partition.generalized import GeneralizedPartitioningInstance
from repro.partition.partition import Partition


def paige_tarjan_refine(instance: GeneralizedPartitioningInstance) -> Partition:
    """Solve a generalized partitioning instance with the Paige-Tarjan algorithm."""
    partition = instance.initial_partition()
    predecessors = instance.predecessor_map()
    function_names = sorted(instance.functions)
    if not partition.elements:
        return partition

    # ------------------------------------------------------------------
    # Preprocessing: make P stable with respect to the single X-block U.
    # For every function, elements with a non-empty image must be separated
    # from elements with an empty image inside every initial block.
    # ------------------------------------------------------------------
    def emptiness_signature(element: str) -> tuple[bool, ...]:
        return tuple(bool(instance.image(name, element)) for name in function_names)

    partition.split_by_key(emptiness_signature)

    # ------------------------------------------------------------------
    # X-partition bookkeeping.  X-blocks are identified by integers; each
    # X-block is a set of P-block ids, and every P-block belongs to exactly
    # one X-block.
    # ------------------------------------------------------------------
    x_members: dict[int, set[int]] = {0: set(partition.block_ids())}
    x_of_pblock: dict[int, int] = {pid: 0 for pid in partition.block_ids()}
    next_x_id = 1

    # counts[(element, function, x_id)] = |f(element) ∩ X-block|
    counts: dict[tuple[str, str, int], int] = {}
    for element in instance.elements:
        for name in function_names:
            image = instance.image(name, element)
            if image:
                counts[(element, name, 0)] = len(image)

    def compound_x_blocks() -> list[int]:
        return [x_id for x_id, members in x_members.items() if len(members) > 1]

    compound = set(compound_x_blocks())

    def register_split(parent_pid: int, new_pid: int) -> None:
        """A P-block split: the new block joins the parent's X-block."""
        x_id = x_of_pblock[parent_pid]
        x_members[x_id].add(new_pid)
        x_of_pblock[new_pid] = x_id
        if len(x_members[x_id]) > 1:
            compound.add(x_id)

    # ------------------------------------------------------------------
    # Main refinement loop.
    # ------------------------------------------------------------------
    while compound:
        s_x_id = compound.pop()
        members = x_members[s_x_id]
        if len(members) <= 1:
            continue
        # Choose a P-block B inside S of size at most |S| / 2: compare the two
        # smallest candidates, taking the smaller.
        pids = sorted(members, key=lambda pid: len(partition.block_members(pid)))
        b_pid = pids[0]
        splitter = partition.block_members(b_pid)

        # Move B out of S into its own X-block.
        members.discard(b_pid)
        b_x_id = next_x_id
        next_x_id += 1
        x_members[b_x_id] = {b_pid}
        x_of_pblock[b_pid] = b_x_id
        if len(members) > 1:
            compound.add(s_x_id)

        # Compute counts into the new X-block B and decrement the counts into
        # the remainder S' = S \ B, touching only predecessors of B.
        touched: dict[str, dict[str, int]] = {name: {} for name in function_names}
        for name in function_names:
            pred = predecessors[name]
            per_function = touched[name]
            for target in splitter:
                for source in pred.get(target, frozenset()):
                    per_function[source] = per_function.get(source, 0) + 1
        for name, per_function in touched.items():
            for source, count_into_b in per_function.items():
                counts[(source, name, b_x_id)] = count_into_b
                remaining = counts.get((source, name, s_x_id), 0) - count_into_b
                if remaining:
                    counts[(source, name, s_x_id)] = remaining
                else:
                    counts.pop((source, name, s_x_id), None)

        # Three-way split of every P-block with an arc into B.
        for name, per_function in touched.items():
            if not per_function:
                continue
            preimage = set(per_function)
            # First split: elements with an arc into B versus the rest.
            blocks_hit: dict[int, set[str]] = {}
            for element in preimage:
                blocks_hit.setdefault(partition.block_id_of(element), set()).add(element)
            inside_blocks: list[int] = []
            for pid, inside in blocks_hit.items():
                block = partition.block_members(pid)
                if len(inside) == len(block):
                    inside_blocks.append(pid)
                    continue
                result = partition.split_block(pid, inside)
                if result is None:  # pragma: no cover - guarded by length check
                    continue
                _kept, new_pid = result
                register_split(pid, new_pid)
                inside_blocks.append(new_pid)
            # Second split: among elements with an arc into B, separate those
            # with no remaining arc into S' (count into S' is zero).
            for pid in inside_blocks:
                block = partition.block_members(pid)
                only_into_b = {
                    element
                    for element in block
                    if counts.get((element, name, s_x_id), 0) == 0
                }
                if not only_into_b or len(only_into_b) == len(block):
                    continue
                result = partition.split_block(pid, only_into_b)
                if result is None:  # pragma: no cover - guarded above
                    continue
                _kept, new_pid = result
                register_split(pid, new_pid)

    return partition
