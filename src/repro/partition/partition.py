"""Partition data structure shared by the refinement algorithms.

A :class:`Partition` is a division of a finite element set into non-empty,
pairwise disjoint blocks.  The refinement algorithms of Section 3 only need a
few operations -- block lookup, splitting a block by a predicate, comparing
coarseness -- and those are provided here with O(1) block lookup.

Blocks are exposed as ``frozenset`` values; the partition itself is mutable
(blocks can be split) because the refinement algorithms are inherently
imperative, but a finished partition can be frozen into a canonical
``frozenset[frozenset[str]]`` via :meth:`Partition.as_frozen`.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Iterator

from repro.core.errors import ReproError


class PartitionError(ReproError):
    """Raised when a partition operation receives inconsistent input."""


class Partition:
    """A partition of a finite set of string-named elements."""

    def __init__(self, blocks: Iterable[Iterable[str]]) -> None:
        self._blocks: dict[int, set[str]] = {}
        self._block_of: dict[str, int] = {}
        self._next_id = 0
        for block in blocks:
            self._add_block(set(block))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def discrete(cls, elements: Iterable[str]) -> "Partition":
        """The finest partition: every element in its own block."""
        return cls([[element] for element in elements])

    @classmethod
    def trivial(cls, elements: Iterable[str]) -> "Partition":
        """The coarsest partition: a single block containing every element."""
        elements = list(elements)
        return cls([elements]) if elements else cls([])

    @classmethod
    def from_key(cls, elements: Iterable[str], key: Callable[[str], Hashable]) -> "Partition":
        """Group elements by a key function (used for the initial extension-based blocks)."""
        groups: dict[Hashable, list[str]] = {}
        for element in elements:
            groups.setdefault(key(element), []).append(element)
        return cls(groups.values())

    def _add_block(self, members: set[str]) -> int:
        if not members:
            raise PartitionError("blocks must be non-empty")
        for element in members:
            if element in self._block_of:
                raise PartitionError(f"element {element!r} appears in two blocks")
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = members
        for element in members:
            self._block_of[element] = block_id
        return block_id

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def elements(self) -> frozenset[str]:
        """The underlying element set."""
        return frozenset(self._block_of)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[frozenset[str]]:
        for members in self._blocks.values():
            yield frozenset(members)

    def block_ids(self) -> list[int]:
        """The identifiers of the current blocks (stable across splits of *other* blocks)."""
        return list(self._blocks)

    def block_members(self, block_id: int) -> frozenset[str]:
        """The members of the block with the given identifier."""
        try:
            return frozenset(self._blocks[block_id])
        except KeyError as exc:
            raise PartitionError(f"no block with id {block_id}") from exc

    def block_id_of(self, element: str) -> int:
        """The identifier of the block containing ``element``."""
        try:
            return self._block_of[element]
        except KeyError as exc:
            raise PartitionError(f"{element!r} is not an element of this partition") from exc

    def block_of(self, element: str) -> frozenset[str]:
        """The block (as a frozenset) containing ``element``."""
        return frozenset(self._blocks[self.block_id_of(element)])

    def same_block(self, first: str, second: str) -> bool:
        """Whether two elements currently share a block."""
        return self.block_id_of(first) == self.block_id_of(second)

    def as_frozen(self) -> frozenset[frozenset[str]]:
        """A canonical immutable rendering of the partition."""
        return frozenset(frozenset(members) for members in self._blocks.values())

    def refines(self, other: "Partition") -> bool:
        """Whether every block of ``self`` is contained in some block of ``other``.

        This is the lattice order used in Section 3 to state that the output
        partition must be *consistent with* the initial partition.
        """
        if self.elements != other.elements:
            return False
        return all(
            all(other.same_block(member, next(iter(block))) for member in block)
            for block in self
        )

    # ------------------------------------------------------------------
    # refinement operations
    # ------------------------------------------------------------------
    def split_block(self, block_id: int, chosen: Iterable[str]) -> tuple[int, int] | None:
        """Split one block into ``chosen`` and its complement.

        Returns the pair ``(kept_id, new_id)`` of block identifiers when the
        split is proper (both parts non-empty); returns ``None`` and leaves the
        partition unchanged when the split would be trivial.  The original
        ``block_id`` keeps the complement part, which lets callers that track
        per-block bookkeeping update only the new block.
        """
        members = self._blocks.get(block_id)
        if members is None:
            raise PartitionError(f"no block with id {block_id}")
        chosen_set = {element for element in chosen if element in members}
        if not chosen_set or len(chosen_set) == len(members):
            return None
        members -= chosen_set
        new_id = self._add_block_unchecked(chosen_set)
        return block_id, new_id

    def _add_block_unchecked(self, members: set[str]) -> int:
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = members
        for element in members:
            self._block_of[element] = block_id
        return block_id

    def split_by_key(self, key: Callable[[str], Hashable]) -> bool:
        """Split every block by a key function; returns True when anything changed."""
        changed = False
        for block_id in list(self._blocks):
            members = self._blocks[block_id]
            groups: dict[Hashable, set[str]] = {}
            for element in members:
                groups.setdefault(key(element), set()).add(element)
            if len(groups) <= 1:
                continue
            changed = True
            group_sets = list(groups.values())
            # keep the first group in the existing block, move the rest out
            kept = group_sets[0]
            removed = members - kept
            members -= removed
            for group in group_sets[1:]:
                self._add_block_unchecked(set(group))
        return changed

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.as_frozen() == other.as_frozen()

    def __hash__(self) -> int:
        return hash(self.as_frozen())

    def __repr__(self) -> str:
        blocks = sorted(sorted(block) for block in self)
        return f"Partition({blocks})"
