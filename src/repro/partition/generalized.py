"""The *generalized partitioning* problem of Section 3.

The problem (introduced by the paper and now better known as the *relational
coarsest partition problem*) is:

    **Input:** a set ``S``, an initial partition ``pi = {B_1, ..., B_p}`` of
    ``S``, and ``k`` functions ``f_l : S -> 2^S``.

    **Output:** the coarsest partition ``pi' = {E_1, ..., E_q}`` such that

    1. ``pi'`` is consistent with (refines) ``pi``;
    2. for all ``a, b`` in the same block ``E_j``, every block ``E_i`` and
       every function ``f_l``:  ``f_l(a) ∩ E_i != {}``  iff  ``f_l(b) ∩ E_i != {}``.

The coarsest such partition always exists (Knaster-Tarski on the lattice of
partitions).  Lemma 3.1 reduces strong-equivalence checking of observable FSPs
to this problem: ``S`` is the state set, the initial partition groups states
by extension set, and there is one function per action mapping a state to its
successor set.

This module defines the instance representation, the Lemma 3.1 reduction, a
reference correctness check (:func:`is_valid_solution`) and the
solver dispatcher :func:`solve` used throughout the library.

Internally every instance is backed by the integer-indexed
:class:`~repro.core.lts.LTS` kernel (elements and function names interned to
dense ints, arcs in CSR arrays): that is the representation all three solvers
actually refine.  The dict-of-frozensets views (:attr:`functions`,
:meth:`image`, :meth:`predecessor_map`) remain available -- instances built
via :meth:`from_fsp` materialise them lazily, so the hot path never pays for
them.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping

from repro.core.errors import ReproError
from repro.core.fsp import FSP
from repro.core.lts import LTS
from repro.partition.partition import Partition


class GeneralizedPartitioningError(ReproError):
    """Raised when an instance of the generalized partitioning problem is malformed."""


class Solver(enum.Enum):
    """The three solution methods discussed in Section 3."""

    NAIVE = "naive"
    KANELLAKIS_SMOLKA = "kanellakis-smolka"
    PAIGE_TARJAN = "paige-tarjan"


class GeneralizedPartitioningInstance:
    """An instance ``(S, pi, f_1..f_k)`` of the generalized partitioning problem.

    Parameters
    ----------
    elements:
        The set ``S``.
    initial_blocks:
        The initial partition ``pi`` as an iterable of blocks.  Blocks must be
        non-empty, disjoint, and cover ``S``.
    functions:
        A mapping from function name to the function itself, where each
        function maps an element to a set of elements (``f_l : S -> 2^S``).
        Elements missing from a function's mapping are treated as mapped to
        the empty set.
    """

    def __init__(
        self,
        elements: Iterable[str],
        initial_blocks: Iterable[Iterable[str]],
        functions: Mapping[str, Mapping[str, Iterable[str]]],
    ) -> None:
        self._init_fields(
            elements=frozenset(elements),
            initial_blocks=tuple(frozenset(block) for block in initial_blocks),
            functions={
                name: {element: frozenset(targets) for element, targets in mapping.items()}
                for name, mapping in functions.items()
            },
            kernel=None,
        )
        self._validate()

    def _init_fields(
        self,
        elements: frozenset[str],
        initial_blocks: tuple[frozenset[str], ...],
        functions: dict[str, dict[str, frozenset[str]]] | None,
        kernel: tuple[LTS, list[int], int] | None,
    ) -> None:
        """Single initialisation point for every instance field.

        Both construction paths -- the validated dict path in ``__init__``
        and the kernel fast path in :meth:`from_fsp` -- go through here, so
        a future field cannot be set on one path and missed on the other.
        """
        self.elements = elements
        self.initial_blocks = initial_blocks
        self._functions = functions
        self._kernel = kernel

    def _validate(self) -> None:
        covered: set[str] = set()
        for block in self.initial_blocks:
            if not block:
                raise GeneralizedPartitioningError("initial blocks must be non-empty")
            if block & covered:
                raise GeneralizedPartitioningError("initial blocks must be disjoint")
            covered |= block
        if covered != set(self.elements):
            raise GeneralizedPartitioningError(
                "the initial partition must cover exactly the element set"
            )
        for name, mapping in self.functions.items():
            for element, targets in mapping.items():
                if element not in self.elements:
                    raise GeneralizedPartitioningError(
                        f"function {name!r} is defined on {element!r} which is not in S"
                    )
                if not targets <= self.elements:
                    raise GeneralizedPartitioningError(
                        f"function {name!r} maps {element!r} outside of S"
                    )

    # ------------------------------------------------------------------
    # the integer kernel every solver runs on
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> tuple[LTS, list[int], int]:
        """``(lts, block_of, num_blocks)`` -- the interned form of the instance.

        The :class:`~repro.core.lts.LTS` encodes the functions as one action
        per function name over CSR adjacency arrays; ``block_of`` assigns
        every interned element its initial-partition block id.  Built once
        and cached.
        """
        if self._kernel is None:
            names = sorted(self.elements)
            state_index = {name: i for i, name in enumerate(names)}
            functions = self.functions
            action_names = sorted(functions)
            edges = [
                (state_index[element], action_id, state_index[target])
                for action_id, name in enumerate(action_names)
                for element, targets in functions[name].items()
                for target in targets
            ]
            lts = LTS(names, action_names, edges)
            block_of = [0] * len(names)
            for block_id, block in enumerate(self.initial_blocks):
                for element in block:
                    block_of[state_index[element]] = block_id
            self._kernel = (lts, block_of, len(self.initial_blocks))
        return self._kernel

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def functions(self) -> dict[str, dict[str, frozenset[str]]]:
        """The functions as dict-of-frozensets (materialised lazily from the kernel)."""
        if self._functions is None:
            lts = self._kernel[0]  # from_fsp always sets the kernel
            functions: dict[str, dict[str, frozenset[str]]] = {
                name: {} for name in lts.action_names
            }
            names = lts.state_names
            action_names = lts.action_names
            offsets, arc_actions, arc_targets = (
                lts.fwd_offsets,
                lts.fwd_actions,
                lts.fwd_targets,
            )
            grouped: dict[tuple[int, int], list[str]] = {}
            for src in range(lts.n):
                for i in range(offsets[src], offsets[src + 1]):
                    grouped.setdefault((src, arc_actions[i]), []).append(names[arc_targets[i]])
            for (src, action), targets in grouped.items():
                functions[action_names[action]][names[src]] = frozenset(targets)
            self._functions = functions
        return self._functions

    def image(self, function: str, element: str) -> frozenset[str]:
        """``f_function(element)`` with missing entries read as the empty set."""
        return self.functions.get(function, {}).get(element, frozenset())

    @property
    def size(self) -> tuple[int, int]:
        """The instance size ``(n, m)``: ``|S|`` and the total number of arcs."""
        lts = self.kernel[0]
        return lts.n, lts.num_transitions

    @property
    def fanout(self) -> int:
        """The maximum ``|f_l(a)|`` over all functions and elements (the ``c`` of Section 3)."""
        return self.kernel[0].max_fanout()

    def initial_partition(self) -> Partition:
        """A fresh mutable :class:`Partition` initialised to ``pi``."""
        return Partition(self.initial_blocks)

    def predecessor_map(self) -> dict[str, dict[str, frozenset[str]]]:
        """For each function, the inverse image map ``element -> {x | element in f(x)}``.

        Kept as a dict view for reference implementations and tests; the
        solvers themselves use the LTS kernel's cached reverse CSR index.
        """
        inverted: dict[str, dict[str, set[str]]] = {name: {} for name in self.functions}
        for name, mapping in self.functions.items():
            for element, targets in mapping.items():
                for target in targets:
                    inverted[name].setdefault(target, set()).add(element)
        return {
            name: {element: frozenset(sources) for element, sources in mapping.items()}
            for name, mapping in inverted.items()
        }

    # ------------------------------------------------------------------
    # the Lemma 3.1 reduction
    # ------------------------------------------------------------------
    @classmethod
    def from_fsp(cls, fsp: FSP, include_tau: bool = False) -> "GeneralizedPartitioningInstance":
        """Build the instance of Lemma 3.1 from a finite state process.

        * ``S`` is the state set,
        * the initial partition groups states with equal extension sets,
        * there is one function per action ``sigma`` with
          ``f_sigma(p) = Delta(p, sigma)``.

        The process is interned straight into the integer kernel (states and
        actions to dense ints, transitions to CSR arrays); no dict-of-sets
        intermediary is built unless :attr:`functions` is actually read.

        Parameters
        ----------
        fsp:
            The process.  Lemma 3.1 is stated for observable FSPs, but the
            reduction itself works verbatim for any FSP if tau is treated as
            an ordinary action, which is what ``include_tau=True`` does (this
            yields *strong bisimilarity over tau-as-a-label*, the notion most
            modern toolsets call strong bisimulation).
        include_tau:
            Whether to add a function for the tau-transitions.
        """
        return cls.from_lts(LTS.from_fsp(fsp, include_tau=include_tau))

    @classmethod
    def from_lts(cls, lts: LTS) -> "GeneralizedPartitioningInstance":
        """Adopt an already-interned kernel as a partitioning instance.

        The initial partition is taken from the kernel's extension sets
        (:meth:`~repro.core.lts.LTS.extension_block_ids` -- the Lemma 3.1
        grouping); every action of the kernel becomes one function.  This is
        the zero-copy entry point of the weak-equivalence pipeline: the
        saturated kernel produced by :func:`repro.core.weak.saturate_lts`
        feeds the solvers directly, with no dict FSP in between.
        """
        block_of, num_blocks = lts.extension_block_ids()
        groups: list[list[str]] = [[] for _ in range(num_blocks)]
        for index, block_id in enumerate(block_of):
            groups[block_id].append(lts.state_names[index])
        instance = cls.__new__(cls)
        instance._init_fields(
            elements=frozenset(lts.state_names),
            initial_blocks=tuple(frozenset(group) for group in groups),
            functions=None,
            kernel=(lts, block_of, num_blocks),
        )
        return instance

    def __repr__(self) -> str:
        n, m = self.size
        return (
            f"GeneralizedPartitioningInstance(n={n}, m={m}, "
            f"functions={sorted(self.functions)}, blocks={len(self.initial_blocks)})"
        )


def is_stable(instance: GeneralizedPartitioningInstance, partition: Partition) -> bool:
    """Check condition (2) of the problem statement for a candidate partition."""
    blocks = list(partition)
    for block in blocks:
        representative_signatures: dict[str, frozenset[tuple[str, int]]] = {}
        for element in block:
            signature = set()
            for name in instance.functions:
                for target in instance.image(name, element):
                    signature.add((name, partition.block_id_of(target)))
            representative_signatures[element] = frozenset(signature)
        if len(set(representative_signatures.values())) > 1:
            return False
    return True


def is_valid_solution(
    instance: GeneralizedPartitioningInstance,
    partition: Partition,
    reference: Partition | None = None,
) -> bool:
    """Check that ``partition`` satisfies conditions (1) and (2).

    Coarsest-ness (condition 3) cannot be checked locally; when a trusted
    ``reference`` solution is supplied the two are compared for equality,
    which the uniqueness of the coarsest stable refinement makes a complete
    check.
    """
    if partition.elements != instance.elements:
        return False
    if not partition.refines(instance.initial_partition()):
        return False
    if not is_stable(instance, partition):
        return False
    if reference is not None and partition != reference:
        return False
    return True


#: valid values for the ``backend`` parameter of :func:`solve` (and of every
#: caller that threads it down here: the equivalence layer, the engine's
#: notion registry, the CLI's ``--backend`` flag).
BACKENDS = ("python", "vector")

#: The size-dispatching pseudo-backend accepted everywhere a concrete
#: backend is: resolved per call site by :func:`resolve_backend`.
AUTO_BACKEND = "auto"

#: Above this many states, ``backend="auto"`` picks the vector kernel (when
#: numpy is importable).  The crossover matches the explore layer's
#: compositional-minimisation dispatch; ``repro.explore.system`` re-exports
#: this value as its own module global so existing monkeypatches keep
#: working.
VECTOR_STATE_THRESHOLD = 512


def resolve_backend(backend: str, num_states: int) -> str:
    """Resolve a backend name (possibly ``"auto"``) to a concrete backend.

    ``"auto"`` picks ``"vector"`` when numpy is importable and the problem
    has at least :data:`VECTOR_STATE_THRESHOLD` states, else ``"python"`` --
    the whole-array kernel's setup cost only amortises on large instances,
    and small ones dominate interactive traffic.  Concrete names pass
    through validated, so every caller funnels its error message here.
    """
    if backend == AUTO_BACKEND:
        from repro.utils.matrices import HAVE_NUMPY

        if HAVE_NUMPY and num_states >= VECTOR_STATE_THRESHOLD:
            return "vector"
        return "python"
    if backend not in BACKENDS:
        raise GeneralizedPartitioningError(
            f"unknown partition backend {backend!r}; "
            f"choose from {', '.join(BACKENDS)} or {AUTO_BACKEND!r}"
        )
    return backend


def solve(
    instance: GeneralizedPartitioningInstance,
    method: Solver | str = Solver.PAIGE_TARJAN,
    backend: str = "python",
) -> Partition:
    """Solve a generalized partitioning instance with the chosen method.

    The three methods produce identical partitions (the coarsest stable
    refinement is unique); they differ only in running time:

    * :attr:`Solver.NAIVE` -- the O(nm) method of Lemma 3.2;
    * :attr:`Solver.KANELLAKIS_SMOLKA` -- the splitter-queue refinement in the
      style of the paper's extension of Hopcroft's algorithm;
    * :attr:`Solver.PAIGE_TARJAN` -- the O(m log n) three-way splitting
      algorithm of Paige and Tarjan (1987), the default.

    All three run on the instance's integer :attr:`~GeneralizedPartitioningInstance.kernel`.

    ``backend`` selects the execution engine: ``"python"`` (default) runs the
    sequential worklist solver named by ``method``; ``"vector"`` runs the
    numpy whole-array kernel (:mod:`repro.partition.vectorized`), which
    computes the same unique partition -- ``method`` is then irrelevant to
    the result and ignored.  The Python solvers double as the vector
    kernel's cross-check oracles.  ``"auto"`` dispatches by instance size
    (:func:`resolve_backend`): vector above
    :data:`VECTOR_STATE_THRESHOLD` states when numpy is available, python
    otherwise.
    """
    backend = resolve_backend(backend, len(instance.elements))
    if backend == "vector":
        from repro.partition.vectorized import vector_refine

        return vector_refine(instance)
    method = Solver(method)
    if method is Solver.NAIVE:
        from repro.partition.naive import naive_refine

        return naive_refine(instance)
    if method is Solver.KANELLAKIS_SMOLKA:
        from repro.partition.kanellakis_smolka import kanellakis_smolka_refine

        return kanellakis_smolka_refine(instance)
    from repro.partition.paige_tarjan import paige_tarjan_refine

    return paige_tarjan_refine(instance)
