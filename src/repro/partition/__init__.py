"""Generalized partitioning (relational coarsest partition) and its solvers.

All solvers run on the integer-indexed :class:`~repro.core.lts.LTS` kernel;
the ``*_refine_lts`` variants expose the raw integer interface for callers
that already hold an interned system (e.g. DFA minimisation), while the
``*_refine`` functions accept a :class:`GeneralizedPartitioningInstance` and
return a string-keyed :class:`Partition`.

Two execution backends solve every instance (``solve(..., backend=...)``):
``"python"`` -- the sequential worklist solvers (naive / Kanellakis-Smolka /
Paige-Tarjan), which remain the cross-check oracles -- and ``"vector"`` --
the numpy whole-array kernel of :mod:`repro.partition.vectorized`, which
also accepts memory-mapped CSR stores for out-of-core refinement.
"""

from repro.partition.generalized import (
    BACKENDS,
    GeneralizedPartitioningError,
    GeneralizedPartitioningInstance,
    Solver,
    is_stable,
    is_valid_solution,
    solve,
)
from repro.partition.kanellakis_smolka import (
    kanellakis_smolka_refine,
    kanellakis_smolka_refine_lts,
)
from repro.partition.naive import naive_refine, naive_refine_lts
from repro.partition.paige_tarjan import paige_tarjan_refine, paige_tarjan_refine_lts
from repro.partition.partition import Partition, PartitionError
from repro.partition.refinable import RefinablePartition, partition_from_refinable
from repro.partition.vectorized import (
    vector_refine,
    vector_refine_arrays,
    vector_refine_csr,
    vector_refine_lts,
)

__all__ = [
    "BACKENDS",
    "GeneralizedPartitioningError",
    "GeneralizedPartitioningInstance",
    "Partition",
    "PartitionError",
    "RefinablePartition",
    "Solver",
    "is_stable",
    "is_valid_solution",
    "kanellakis_smolka_refine",
    "kanellakis_smolka_refine_lts",
    "naive_refine",
    "naive_refine_lts",
    "paige_tarjan_refine",
    "paige_tarjan_refine_lts",
    "partition_from_refinable",
    "solve",
    "vector_refine",
    "vector_refine_arrays",
    "vector_refine_csr",
    "vector_refine_lts",
]
