"""Generalized partitioning (relational coarsest partition) and its solvers."""

from repro.partition.generalized import (
    GeneralizedPartitioningError,
    GeneralizedPartitioningInstance,
    Solver,
    is_stable,
    is_valid_solution,
    solve,
)
from repro.partition.kanellakis_smolka import kanellakis_smolka_refine
from repro.partition.naive import naive_refine
from repro.partition.paige_tarjan import paige_tarjan_refine
from repro.partition.partition import Partition, PartitionError

__all__ = [
    "GeneralizedPartitioningError",
    "GeneralizedPartitioningInstance",
    "Partition",
    "PartitionError",
    "Solver",
    "is_stable",
    "is_valid_solution",
    "kanellakis_smolka_refine",
    "naive_refine",
    "paige_tarjan_refine",
    "solve",
]
