"""The engine facade: cached process handles, pluggable notions, verdicts.

This package is the recommended entry point for repeated equivalence
queries::

    from repro.engine import Engine

    engine = Engine()
    verdict = engine.check(p, q, "observational")
    if not verdict:
        print(verdict.witness.describe())

See :class:`Engine` (caching facade), :class:`Process` (per-process artifact
cache), :class:`Verdict` (structured answers with checkable witnesses) and
:mod:`repro.engine.notions` (the pluggable notion registry).
"""

from repro.engine.engine import (
    Engine,
    check,
    check_expressions,
    check_many,
    default_engine,
    minimize,
    reset_default_engine,
)
from repro.engine.notions import (
    Notion,
    NotionResult,
    available_notions,
    expression_notions,
    get_notion,
    register_notion,
    unregister_notion,
)
from repro.engine.process import Process
from repro.engine.verdict import (
    BatchResult,
    CheckStats,
    FormulaWitness,
    RefusalWitness,
    Verdict,
    Witness,
    WordWitness,
)

__all__ = [
    "BatchResult",
    "CheckStats",
    "Engine",
    "FormulaWitness",
    "Notion",
    "NotionResult",
    "Process",
    "RefusalWitness",
    "Verdict",
    "Witness",
    "WordWitness",
    "available_notions",
    "check",
    "check_expressions",
    "check_many",
    "default_engine",
    "expression_notions",
    "get_notion",
    "minimize",
    "register_notion",
    "reset_default_engine",
    "unregister_notion",
]
