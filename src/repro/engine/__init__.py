"""The engine facade: cached process handles, pluggable notions, verdicts.

This package is the recommended entry point for repeated equivalence
queries.  ``quick`` below buys with one ``coin``; ``lazy`` takes an internal
``tau`` step afterwards -- observationally the same machine, strongly not:

>>> from repro import from_transitions
>>> quick = from_transitions(
...     [("p0", "coin", "p1")],
...     start="p0", accepting=["p0", "p1"], alphabet={"coin"},
... )
>>> lazy = from_transitions(
...     [("q0", "coin", "q1"), ("q1", "τ", "q2")],
...     start="q0", accepting=["q0", "q1", "q2"], alphabet={"coin"},
... )
>>> from repro.engine import Engine
>>> engine = Engine()
>>> engine.check(quick, lazy, "observational").equivalent
True
>>> verdict = engine.check(quick, lazy, "strong")
>>> verdict.equivalent
False
>>> verdict.witness is not None  # a checkable HML certificate
True
>>> engine.check(quick, lazy, "strong").stats.from_cache  # repeats are O(1)
True
>>> engine.minimize(lazy, "observational").num_states
2

See :class:`Engine` (caching facade), :class:`Process` (per-process artifact
cache), :class:`Verdict` (structured answers with checkable witnesses) and
:mod:`repro.engine.notions` (the pluggable notion registry); for the network
layer on top of this facade see :mod:`repro.service`.
"""

from repro.engine.engine import (
    Engine,
    check,
    check_expressions,
    check_many,
    check_on_the_fly,
    default_engine,
    minimize,
    reset_default_engine,
)
from repro.engine.notions import (
    Notion,
    NotionResult,
    available_notions,
    expression_notions,
    get_notion,
    register_notion,
    unregister_notion,
)
from repro.engine.process import Process
from repro.engine.verdict import (
    BatchResult,
    CheckStats,
    FormulaWitness,
    RefusalWitness,
    TraceWitness,
    Verdict,
    Witness,
    WordWitness,
)

__all__ = [
    "BatchResult",
    "CheckStats",
    "Engine",
    "FormulaWitness",
    "Notion",
    "NotionResult",
    "Process",
    "RefusalWitness",
    "TraceWitness",
    "Verdict",
    "Witness",
    "WordWitness",
    "available_notions",
    "check",
    "check_expressions",
    "check_many",
    "check_on_the_fly",
    "default_engine",
    "expression_notions",
    "get_notion",
    "minimize",
    "register_notion",
    "reset_default_engine",
    "unregister_notion",
]
