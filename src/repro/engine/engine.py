"""The engine facade: cached process handles, checks, batches, expressions.

An :class:`Engine` owns two bounded LRU caches:

* a **process cache** mapping each FSP (value-hashed, so structurally equal
  processes share one entry) to its :class:`~repro.engine.process.Process`
  handle, whose derived artifacts -- interned LTS, weak kernel, partitions,
  minimized quotients, language DFA -- are each computed at most once;
* a **verdict cache** mapping ``(left, right, notion, params)`` to the
  :class:`~repro.engine.verdict.Verdict`, so a repeated check costs a
  dictionary lookup.

``check`` decides one pair, ``check_many`` drives a whole manifest through
the shared caches (the server-style batch shape), ``check_expressions``
lifts the notions to the CCS equivalence problem of Section 2.3, and
``minimize`` exposes the cached quotients.  The module-level functions
(:func:`check`, :func:`check_many`, ...) delegate to a shared default
engine, which is also what the old free functions now run on.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.core.classify import require_same_signature
from repro.core.fsp import FSP
from repro.engine.notions import Notion, get_notion
from repro.engine.process import Process
from repro.engine.verdict import (
    BatchResult,
    CheckStats,
    Verdict,
    cached_copy,
    now,
)
from repro.partition.generalized import Solver


class Engine:
    """A reusable equivalence-checking facade with bounded caches.

    Parameters
    ----------
    max_processes:
        Most-recently-used bound on cached process handles.
    max_verdicts:
        Most-recently-used bound on cached verdicts.
    """

    def __init__(self, max_processes: int = 256, max_verdicts: int = 4096) -> None:
        if max_processes < 1 or max_verdicts < 1:
            raise ValueError("cache bounds must be positive")
        self.max_processes = max_processes
        self.max_verdicts = max_verdicts
        self._processes: OrderedDict[FSP, Process] = OrderedDict()
        self._verdicts: OrderedDict[tuple, Verdict] = OrderedDict()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # process interning
    # ------------------------------------------------------------------
    def process(self, source: FSP | Process) -> Process:
        """The cached handle for a process (interned by FSP value equality)."""
        if isinstance(source, Process):
            cached = self._processes.get(source.fsp)
            if cached is None:
                self._remember_process(source.fsp, source)
                return source
            self._processes.move_to_end(source.fsp)
            return cached
        if not isinstance(source, FSP):
            raise TypeError(
                f"Engine.process expects an FSP or Process, not {type(source).__name__}"
            )
        handle = self._processes.get(source)
        if handle is None:
            handle = Process(source)
            self._remember_process(source, handle)
        else:
            self._processes.move_to_end(source)
        return handle

    def _remember_process(self, fsp: FSP, handle: Process) -> None:
        self._processes[fsp] = handle
        while len(self._processes) > self.max_processes:
            self._processes.popitem(last=False)

    # ------------------------------------------------------------------
    # single checks
    # ------------------------------------------------------------------
    def check(
        self,
        left: FSP | Process,
        right: FSP | Process,
        notion: str | Notion = "observational",
        *,
        align: bool = False,
        witness: bool = True,
        **params: Any,
    ) -> Verdict:
        """Decide one equivalence and return a structured :class:`Verdict`.

        ``align=True`` extends both alphabets to their union first (what the
        CLI always did); with the default ``align=False`` mismatched
        signatures raise, exactly like the classic free functions.
        ``witness=True`` attaches a checkable certificate on inequivalence.
        Notion-specific parameters (``k``, ``method``, search bounds) pass
        through ``**params``; unknown ones raise :class:`TypeError`.
        """
        notion_obj = get_notion(notion)
        unknown = set(params) - set(notion_obj.param_names)
        if unknown:
            allowed = ", ".join(sorted(notion_obj.param_names)) or "none"
            raise TypeError(
                f"notion {notion_obj.name!r} does not accept parameter(s) "
                f"{sorted(unknown)}; allowed: {allowed}"
            )
        # Canonicalise against the notion's declared defaults so that e.g.
        # check(p, q, "failure") and check(p, q, "failure",
        # max_macro_states=None) produce one cache key, not two.
        params = notion_obj.normalize_params({**notion_obj.param_defaults, **params})

        left_p = self.process(left)
        right_p = self.process(right)
        if align:
            left_p, right_p = self._aligned(left_p, right_p)
        require_same_signature(left_p.fsp, right_p.fsp)

        key = (
            left_p.fsp,
            right_p.fsp,
            notion_obj.name,
            tuple(sorted(params.items())),
        )
        cached = self._verdicts.get(key)
        if cached is not None:
            needs_witness = (
                witness
                and not cached.equivalent
                and cached.witness is None
                and notion_obj.provides_witness
            )
            if not needs_witness:
                self._hits += 1
                self._verdicts.move_to_end(key)
                return cached_copy(cached)
        self._misses += 1

        begin = now()
        result = notion_obj.check(left_p, right_p, want_witness=witness, **params)
        seconds = now() - begin
        verdict = Verdict(
            equivalent=result.equivalent,
            notion=notion_obj.name,
            left=left_p.fsp,
            right=right_p.fsp,
            witness=result.witness,
            stats=CheckStats(
                notion=notion_obj.name,
                seconds=seconds,
                from_cache=False,
                left_states=left_p.num_states,
                left_transitions=left_p.num_transitions,
                right_states=right_p.num_states,
                right_transitions=right_p.num_transitions,
                details=dict(result.details),
            ),
        )
        self._verdicts[key] = verdict
        while len(self._verdicts) > self.max_verdicts:
            self._verdicts.popitem(last=False)
        return verdict

    def _aligned(self, left: Process, right: Process) -> tuple[Process, Process]:
        if left.fsp.alphabet == right.fsp.alphabet:
            return left, right
        alphabet = left.fsp.alphabet | right.fsp.alphabet
        return (
            self.process(left.fsp.with_alphabet(alphabet)),
            self.process(right.fsp.with_alphabet(alphabet)),
        )

    # ------------------------------------------------------------------
    # batches
    # ------------------------------------------------------------------
    def check_many(
        self,
        checks,
        *,
        notion: str | Notion = "observational",
        align: bool = True,
        witness: bool = True,
    ) -> BatchResult:
        """Run a manifest of checks through the shared caches.

        Each entry is ``(left, right)``, ``(left, right, notion)``, or a
        mapping with ``left``, ``right``, optional ``notion`` and notion
        parameters.  ``left`` / ``right`` may be FSPs, process handles, or
        paths to ``.json`` / ``.aut`` files; every distinct file is loaded
        once per batch.  Compiled artifacts and verdicts are shared across
        entries, so manifests that revisit processes or pairs -- the
        dominant server-side shape -- skip straight to the cached answers.
        """
        file_memo: dict[Path, FSP] = {}
        begin = now()
        verdicts: list[Verdict] = []
        for index, item in enumerate(checks):
            left, right, item_notion, params = _parse_check_spec(item, notion, index)
            left = self._resolve_source(left, file_memo)
            right = self._resolve_source(right, file_memo)
            verdicts.append(
                self.check(left, right, item_notion, align=align, witness=witness, **params)
            )
        return BatchResult(tuple(verdicts), seconds=now() - begin)

    def _resolve_source(self, source, file_memo: dict[Path, FSP]) -> FSP | Process:
        if isinstance(source, (FSP, Process)):
            return source
        if isinstance(source, (str, Path)):
            from repro.utils.serialization import load_process_file

            path = Path(source)
            fsp = file_memo.get(path)
            if fsp is None:
                fsp = load_process_file(path)
                file_memo[path] = fsp
            return fsp
        raise TypeError(
            f"a check entry must name an FSP, Process, or file path, not {type(source).__name__}"
        )

    # ------------------------------------------------------------------
    # the on-the-fly route (composed / implicit systems, Section 6)
    # ------------------------------------------------------------------
    def check_on_the_fly(
        self,
        left,
        right,
        notion: str = "observational",
        *,
        witness: bool = True,
        max_pairs: int | None = None,
        reduction: str = "none",
        frontier: str = "exact",
    ) -> Verdict:
        """Decide strong or observational equivalence without materialising.

        ``left`` / ``right`` may be FSPs, :class:`Process` handles, implicit
        systems (:class:`~repro.explore.implicit.ImplicitLTS`) or composition
        specs (:class:`~repro.explore.system.SystemSpec`) -- for composed
        systems nothing is ever built beyond the pairs the game touches, so
        a product with :math:`10^6` states can be decided in microseconds
        when the difference (or the proof) is local.

        The verdict's stats report *explored* component states and the
        number of product pairs visited (``details["pairs_visited"]``); on
        inequivalence a replay-verified distinguishing trace becomes a
        :class:`~repro.engine.verdict.TraceWitness`.  Eager FSP operands are
        kept on the verdict so ``verify_witness()`` re-checks the trace;
        composed/implicit operands leave ``left``/``right`` as None (there
        is nothing materialised to store).  Implicit systems have no value
        identity, so this route bypasses the verdict cache.

        ``reduction`` selects a sound state-space reduction
        (:data:`repro.explore.reduce.REDUCTIONS`) and ``frontier`` the
        visited-set representation (``"exact"`` or ``"compact"``); operands
        are handed to the checker unmaterialised so spec-level symmetry
        annotations survive.
        """
        from repro.engine.verdict import TraceWitness
        from repro.explore.onthefly import check_implicit

        begin = now()
        left = left.fsp if isinstance(left, Process) else left
        right = right.fsp if isinstance(right, Process) else right
        result = check_implicit(
            left,
            right,
            notion,
            max_pairs=max_pairs,
            reduction=reduction,
            frontier=frontier,
        )
        witness_obj = None
        if witness and not result.equivalent and result.trace_verified:
            witness_obj = TraceWitness(
                trace=result.trace,
                weak=(notion == "observational"),
                in_left=bool(result.trace_in_left),
            )
        details: dict[str, Any] = {
            "route": f"on-the-fly:{result.route}",
            "pairs_visited": result.pairs_visited,
            "reduction": result.reduction,
        }
        if result.trace is not None:
            details["trace"] = list(result.trace)
            details["trace_verified"] = result.trace_verified
        return Verdict(
            equivalent=result.equivalent,
            notion=notion,
            left=left if isinstance(left, FSP) else None,
            right=right if isinstance(right, FSP) else None,
            witness=witness_obj,
            stats=CheckStats(
                notion=notion,
                seconds=now() - begin,
                from_cache=False,
                left_states=result.left_states,
                left_transitions=0,
                right_states=result.right_states,
                right_transitions=0,
                details=details,
            ),
        )

    # ------------------------------------------------------------------
    # expressions (the CCS equivalence problem, Section 2.3)
    # ------------------------------------------------------------------
    def check_expressions(
        self,
        first,
        second,
        notion: str | Notion = "strong",
        *,
        witness: bool = True,
        **params: Any,
    ) -> Verdict:
        """Decide the CCS equivalence problem for two star expressions.

        The expressions (strings or parsed :class:`StarExpression` trees) are
        compiled to representative FSPs over their joint alphabet and
        compared under the chosen notion; notions may adapt the FSPs (failure
        semantics reads them as restricted processes) or answer directly from
        the expressions (language equivalence uses the regular-expression
        procedure).  On the direct route the representative FSPs -- whose
        construction can dwarf the decision itself -- are only built when a
        witness is actually needed; the verdict's size stats then report the
        expression lengths instead, and ``left`` / ``right`` are None.
        """
        from repro.expressions.parser import parse
        from repro.expressions.syntax import length_of

        notion_obj = get_notion(notion)
        if not notion_obj.supports_expressions:
            raise ValueError(f"notion {notion_obj.name!r} is not defined for star expressions")
        begin = now()
        left_expr = parse(first) if isinstance(first, str) else first
        right_expr = parse(second) if isinstance(second, str) else second

        direct = notion_obj.decide_expressions(left_expr, right_expr)
        if direct is None:
            left_fsp, right_fsp = self._representatives(notion_obj, left_expr, right_expr)
            return self.check(left_fsp, right_fsp, notion_obj, witness=witness, **params)

        left_fsp = right_fsp = None
        witness_obj = None
        if witness and not direct:
            left_fsp, right_fsp = self._representatives(notion_obj, left_expr, right_expr)
            witness_obj = notion_obj.expression_witness(left_fsp, right_fsp)
        return Verdict(
            equivalent=direct,
            notion=notion_obj.name,
            left=left_fsp,
            right=right_fsp,
            witness=witness_obj,
            stats=CheckStats(
                notion=notion_obj.name,
                seconds=now() - begin,
                from_cache=False,
                left_states=left_fsp.num_states if left_fsp else length_of(left_expr),
                left_transitions=left_fsp.num_transitions if left_fsp else 0,
                right_states=right_fsp.num_states if right_fsp else length_of(right_expr),
                right_transitions=right_fsp.num_transitions if right_fsp else 0,
                details={"route": "expression"},
            ),
        )

    @staticmethod
    def _representatives(notion_obj: Notion, left_expr, right_expr) -> tuple[FSP, FSP]:
        """The two representative FSPs over the joint alphabet, notion-adapted."""
        from repro.expressions.semantics import representative_fsp
        from repro.expressions.syntax import actions_of

        alphabet = actions_of(left_expr) | actions_of(right_expr)
        return (
            notion_obj.prepare_expression_fsp(representative_fsp(left_expr, alphabet=alphabet)),
            notion_obj.prepare_expression_fsp(representative_fsp(right_expr, alphabet=alphabet)),
        )

    # ------------------------------------------------------------------
    # minimisation
    # ------------------------------------------------------------------
    def minimize(
        self,
        source: FSP | Process,
        notion: str = "observational",
        method: Solver | str = Solver.PAIGE_TARJAN,
        backend: str = "auto",
    ) -> FSP:
        """The cached quotient of a process under strong or observational equivalence.

        ``backend="auto"`` (the default) dispatches by process size: the
        vector kernel above
        :data:`~repro.partition.generalized.VECTOR_STATE_THRESHOLD` states
        when numpy is available, the python solvers otherwise.
        """
        handle = self.process(source)
        if notion == "strong":
            return handle.minimized_strong(method, backend)
        if notion == "observational":
            return handle.minimized_observational(method, backend)
        raise ValueError(
            f"minimisation is defined for 'strong' and 'observational', not {notion!r}"
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, int]:
        """Cache occupancy and hit counters (for monitoring and tests)."""
        return {
            "processes": len(self._processes),
            "verdicts": len(self._verdicts),
            "hits": self._hits,
            "misses": self._misses,
        }

    def export_stats(self, node: str | None = None) -> dict[str, Any]:
        """A JSON-compatible snapshot of this engine's caches.

        Extends :meth:`cache_info` with the configured bounds and one row per
        cached process handle (sizes plus which derived artifacts have been
        materialised).  This is what a service worker ships back for the
        ``stats`` RPC, so operators can see whether a shard's cache actually
        stays hot for its routed processes.

        ``node`` stamps the snapshot with the cluster-node identity that
        produced it.  Prometheus renderers must emit these counters with a
        ``node=`` label -- without it, several nodes scraped into one
        dashboard collide on identical series names and the aggregation
        silently sums unrelated caches.
        """
        stats = {
            **self.cache_info(),
            "max_processes": self.max_processes,
            "max_verdicts": self.max_verdicts,
            "process_artifacts": [
                {
                    "states": handle.num_states,
                    "transitions": handle.num_transitions,
                    "artifacts": handle.artifact_summary(),
                }
                for handle in self._processes.values()
            ],
        }
        if node is not None:
            stats["node"] = node
        return stats

    def clear(self) -> None:
        """Drop all cached handles and verdicts (counters included)."""
        self._processes.clear()
        self._verdicts.clear()
        self._hits = 0
        self._misses = 0

    def __repr__(self) -> str:
        info = self.cache_info()
        return (
            f"Engine(processes={info['processes']}/{self.max_processes}, "
            f"verdicts={info['verdicts']}/{self.max_verdicts}, "
            f"hits={info['hits']}, misses={info['misses']})"
        )


def _parse_check_spec(item, default_notion, index: int):
    """Normalise one ``check_many`` entry to ``(left, right, notion, params)``."""
    if isinstance(item, dict):
        spec = dict(item)
        try:
            left = spec.pop("left")
            right = spec.pop("right")
        except KeyError as missing:
            raise ValueError(
                f"check #{index} is missing the {missing.args[0]!r} key"
            ) from None
        item_notion = spec.pop("notion", default_notion)
        return left, right, item_notion, spec
    if isinstance(item, (tuple, list)):
        if len(item) == 2:
            return item[0], item[1], default_notion, {}
        if len(item) == 3:
            return item[0], item[1], item[2], {}
    raise ValueError(
        f"check #{index} must be (left, right), (left, right, notion), or a mapping; "
        f"got {type(item).__name__}"
    )


# ----------------------------------------------------------------------
# the shared default engine
# ----------------------------------------------------------------------
_default: Engine | None = None


#: cache bounds of the shared default engine.  The classic free functions now
#: run on this engine, so its bounds govern how much memory the shim path may
#: retain; they are deliberately tighter than the :class:`Engine` defaults
#: (callers that want bigger caches construct their own engine, and
#: :func:`reset_default_engine` drops everything under memory pressure).
DEFAULT_MAX_PROCESSES = 64
DEFAULT_MAX_VERDICTS = 1024


def default_engine() -> Engine:
    """The process-wide shared engine (created on first use)."""
    global _default
    if _default is None:
        _default = Engine(max_processes=DEFAULT_MAX_PROCESSES, max_verdicts=DEFAULT_MAX_VERDICTS)
    return _default


def reset_default_engine() -> None:
    """Replace the shared engine with a fresh one (tests, memory pressure)."""
    global _default
    _default = None


def check(left, right, notion: str | Notion = "observational", **kwargs: Any) -> Verdict:
    """Module-level convenience: :meth:`Engine.check` on the default engine."""
    return default_engine().check(left, right, notion, **kwargs)


def check_many(checks, **kwargs: Any) -> BatchResult:
    """Module-level convenience: :meth:`Engine.check_many` on the default engine."""
    return default_engine().check_many(checks, **kwargs)


def check_expressions(first, second, notion: str | Notion = "strong", **kwargs: Any) -> Verdict:
    """Module-level convenience: :meth:`Engine.check_expressions` on the default engine."""
    return default_engine().check_expressions(first, second, notion, **kwargs)


def check_on_the_fly(left, right, notion: str = "observational", **kwargs: Any) -> Verdict:
    """Module-level convenience: :meth:`Engine.check_on_the_fly` on the default engine."""
    return default_engine().check_on_the_fly(left, right, notion, **kwargs)


def minimize(source, notion: str = "observational", **kwargs: Any) -> FSP:
    """Module-level convenience: :meth:`Engine.minimize` on the default engine."""
    return default_engine().minimize(source, notion, **kwargs)
