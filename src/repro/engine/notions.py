"""The pluggable notion registry: one object per equivalence notion.

The paper studies a spectrum of equivalences over the same process model;
previously each lived in its own free function and the CLI / CCS layers kept
parallel hard-coded dicts mapping notion names to functions.  This module
replaces those dicts with a registry of :class:`Notion` objects.  A notion
knows

* how to *decide* equivalence of two cached :class:`~repro.engine.process.Process`
  handles, reusing their artifacts (minimized quotients, language DFAs,
  weak kernels) so repeated checks against the same process are cheap;
* how to produce a checkable :class:`~repro.engine.verdict.Witness` on
  inequivalence;
* which keyword parameters it accepts (``k``, solver ``method``, search
  bounds), so the engine can reject typos instead of silently ignoring them;
* how to adapt itself to the star-expression world (the CCS equivalence
  problem of Section 2.3).

Third parties register additional notions with :func:`register_notion`; the
CLI's ``--notion`` choices and the engine's dispatch both read the registry,
so a registered notion is immediately usable everywhere.

Soundness of the quotient fast paths: strong equivalence is decided on the
disjoint union of the two *strong* quotients, observational / failure /
``k``-observational equivalence on the union of the two *observational*
quotients.  Each quotient is equivalent to its input (state-wise at the
start), the notions are transitive, and observational equivalence refines
both failure equivalence and every ``approx_k`` (``approx`` is the
intersection of the decreasing ``approx_k`` chain; weak-bisimilar states
have matching weak derivatives, hence equal refusal information), so the
answer on the quotients equals the answer on the originals.  The property
tests cross-check this against the direct reference routes on random
processes.  Caller-supplied search bounds (``max_states`` and friends) are
honoured by running the original, un-quotiented route, so bounded calls
raise :class:`~repro.core.errors.StateSpaceLimitError` exactly as before.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.core.classify import ModelClass, require
from repro.core.fsp import FSP
from repro.engine.process import Process
from repro.engine.verdict import FormulaWitness, RefusalWitness, Witness, WordWitness
from repro.equivalence.failure import failure_distinguishing_string, maximal_refusals
from repro.equivalence.hml import distinguishing_formula
from repro.equivalence.kobs import k_observational_equivalent
from repro.equivalence.language import language_nfa
from repro.equivalence.observational import observationally_equivalent
from repro.equivalence.strong import strongly_equivalent
from repro.partition.generalized import Solver

_LEFT = "L:"
_RIGHT = "R:"


@dataclass(frozen=True)
class NotionResult:
    """What a notion reports back to the engine for one pair."""

    equivalent: bool
    witness: Witness | None = None
    details: dict[str, Any] = field(default_factory=dict)


class Notion(ABC):
    """One equivalence notion, pluggable into the engine and the CLI.

    Subclasses set :attr:`name` (the registry key), optionally
    :attr:`aliases`, and :attr:`param_names` (accepted keyword parameters);
    they implement :meth:`check` over two cached process handles.  The
    expression hooks adapt the notion to the CCS equivalence problem:
    :meth:`prepare_expression_fsp` post-processes the representative FSP
    (e.g. the restricted reading failure semantics needs) and
    :meth:`decide_expressions` may answer directly from the expressions
    (language equivalence uses the regular-expression decision procedure).
    """

    name: str = ""
    aliases: tuple[str, ...] = ()
    description: str = ""
    #: keyword parameters accepted by :meth:`check` with their defaults.  The
    #: engine rejects unknown parameters and *canonicalises* the rest against
    #: these defaults before caching, so ``check(p, q, "failure")`` and
    #: ``check(p, q, "failure", max_macro_states=None)`` share one verdict.
    param_defaults: dict[str, Any] = {}
    #: whether expressions can be compared under this notion.
    supports_expressions: bool = True
    #: whether :meth:`check` can produce a witness on inequivalence.
    provides_witness: bool = True

    @property
    def param_names(self) -> frozenset[str]:
        return frozenset(self.param_defaults)

    @abstractmethod
    def check(
        self, left: Process, right: Process, want_witness: bool, **params: Any
    ) -> NotionResult:
        """Decide the notion for the start states of two aligned processes."""

    def normalize_params(self, params: dict[str, Any]) -> dict[str, Any]:
        """Canonicalise parameters (also used as part of the cache key)."""
        return params

    # -- star-expression hooks ------------------------------------------
    def prepare_expression_fsp(self, fsp: FSP) -> FSP:
        """Adapt a representative FSP to this notion's model class."""
        return fsp

    def decide_expressions(self, left_expr, right_expr) -> bool | None:
        """Decide directly on the expressions, or None to use the FSP route."""
        return None

    def expression_witness(self, left: FSP, right: FSP) -> Witness | None:
        """A witness for a :meth:`decide_expressions` inequivalence."""
        return None

    def __repr__(self) -> str:
        return f"<Notion {self.name!r}>"


def _normalize_method(params: dict[str, Any]) -> dict[str, Any]:
    method = params.get("method")
    if method is not None and not isinstance(method, Solver):
        params = dict(params)
        params["method"] = Solver(method)
    return params


class StrongNotion(Notion):
    """Strong equivalence ``~`` (Section 3 / Theorem 3.1)."""

    name = "strong"
    aliases = ("bisimulation",)
    description = "strong (bisimulation) equivalence; tau treated as a label"
    param_defaults = {
        "method": Solver.PAIGE_TARJAN,
        "require_observable": False,
        "backend": "auto",
    }

    def normalize_params(self, params: dict[str, Any]) -> dict[str, Any]:
        return _normalize_method(params)

    def check(
        self,
        left: Process,
        right: Process,
        want_witness: bool,
        method: Solver | str = Solver.PAIGE_TARJAN,
        require_observable: bool = False,
        backend: str = "auto",
    ) -> NotionResult:
        if require_observable:
            require(left.fsp, ModelClass.OBSERVABLE, context="strong equivalence")
            require(right.fsp, ModelClass.OBSERVABLE, context="strong equivalence")
        left_min = left.minimized_strong(method, backend)
        right_min = right.minimized_strong(method, backend)
        combined = left_min.disjoint_union(right_min)
        equivalent = strongly_equivalent(
            combined,
            _LEFT + left_min.start,
            _RIGHT + right_min.start,
            method=method,
            backend=backend,
        )
        witness: Witness | None = None
        if want_witness and not equivalent:
            formula = distinguishing_formula(
                combined, _LEFT + left_min.start, _RIGHT + right_min.start, weak=False
            )
            if formula is not None:  # always reachable on inequivalence
                witness = FormulaWitness(formula, weak=False)
        return NotionResult(
            equivalent,
            witness,
            {"left_min_states": left_min.num_states, "right_min_states": right_min.num_states},
        )


class ObservationalNotion(Notion):
    """Observational equivalence ``approx`` (Theorem 4.1(a))."""

    name = "observational"
    aliases = ("weak",)
    description = "observational (weak bisimulation) equivalence"
    param_defaults = {"method": Solver.PAIGE_TARJAN, "backend": "auto"}

    def normalize_params(self, params: dict[str, Any]) -> dict[str, Any]:
        return _normalize_method(params)

    def check(
        self,
        left: Process,
        right: Process,
        want_witness: bool,
        method: Solver | str = Solver.PAIGE_TARJAN,
        backend: str = "auto",
    ) -> NotionResult:
        left_min = left.minimized_observational(method, backend)
        right_min = right.minimized_observational(method, backend)
        combined = left_min.disjoint_union(right_min)
        equivalent = observationally_equivalent(
            combined,
            _LEFT + left_min.start,
            _RIGHT + right_min.start,
            method=method,
            backend=backend,
        )
        witness: Witness | None = None
        if want_witness and not equivalent:
            formula = distinguishing_formula(
                combined, _LEFT + left_min.start, _RIGHT + right_min.start, weak=True
            )
            if formula is not None:  # always reachable on inequivalence
                witness = FormulaWitness(formula, weak=True)
        return NotionResult(
            equivalent,
            witness,
            {"left_min_states": left_min.num_states, "right_min_states": right_min.num_states},
        )


class KObservationalNotion(Notion):
    """``k``-observational equivalence ``approx_k`` (Definition 2.2.1)."""

    name = "k-observational"
    aliases = ("kobs",)
    description = "approx_k: weak-derivative matching down to depth k"
    param_defaults = {"k": 1, "max_subset_states": None}

    def check(
        self,
        left: Process,
        right: Process,
        want_witness: bool,
        k: int = 1,
        max_subset_states: int | None = None,
    ) -> NotionResult:
        if max_subset_states is None:
            left_fsp = left.minimized_observational()
            right_fsp = right.minimized_observational()
        else:
            # Honour the caller's subset-construction bound on the original
            # state space, so the bound means what it always meant.
            left_fsp, right_fsp = left.fsp, right.fsp
        combined = left_fsp.disjoint_union(right_fsp)
        first, second = _LEFT + left_fsp.start, _RIGHT + right_fsp.start
        equivalent = k_observational_equivalent(
            combined, first, second, k, max_subset_states=max_subset_states
        )
        witness: Witness | None = None
        if want_witness and not equivalent:
            # approx refines every approx_k, so a level-k difference implies
            # observational inequivalence and a weak distinguishing formula.
            formula = distinguishing_formula(combined, first, second, weak=True)
            if formula is not None:  # always reachable on inequivalence
                witness = FormulaWitness(formula, weak=True)
        return NotionResult(equivalent, witness, {"k": k})


class LanguageNotion(Notion):
    """Language (weak-trace acceptance) equivalence -- the classical baseline."""

    name = "language"
    aliases = ("trace",)
    description = "classical language equivalence of the weak-transition NFAs"
    param_defaults = {"max_states": None}

    def check(
        self,
        left: Process,
        right: Process,
        want_witness: bool,
        max_states: int | None = None,
    ) -> NotionResult:
        if max_states is not None:
            from repro.automata.equivalence import nfa_distinguishing_word, nfa_equivalent

            left_nfa = language_nfa(left.fsp)
            right_nfa = language_nfa(right.fsp)
            equivalent = nfa_equivalent(left_nfa, right_nfa, max_states=max_states)
            witness: Witness | None = None
            if want_witness and not equivalent:
                word = nfa_distinguishing_word(left_nfa, right_nfa, max_states=max_states)
                if word is not None:  # always reachable on inequivalence
                    witness = WordWitness(word, in_left=left_nfa.accepts(word))
            return NotionResult(equivalent, witness, {"route": "nfa"})
        from repro.automata.equivalence import dfa_equivalent, distinguishing_word

        left_dfa = left.language_dfa()
        right_dfa = right.language_dfa()
        equivalent = dfa_equivalent(left_dfa, right_dfa)
        witness = None
        if want_witness and not equivalent:
            word = distinguishing_word(left_dfa, right_dfa)
            if word is not None:  # always reachable on inequivalence
                witness = WordWitness(word, in_left=left_dfa.accepts(word))
        return NotionResult(
            equivalent,
            witness,
            {
                "route": "dfa",
                "left_dfa_states": len(left_dfa.states),
                "right_dfa_states": len(right_dfa.states),
            },
        )

    def decide_expressions(self, left_expr, right_expr) -> bool | None:
        from repro.expressions.regular import regular_equivalent

        return regular_equivalent(left_expr, right_expr)

    def expression_witness(self, left: FSP, right: FSP) -> Witness | None:
        from repro.automata.equivalence import nfa_distinguishing_word

        left_nfa = language_nfa(left)
        word = nfa_distinguishing_word(left_nfa, language_nfa(right))
        if word is None:
            return None
        return WordWitness(word, in_left=left_nfa.accepts(word))


class FailureNotion(Notion):
    """Failure equivalence (Section 5 / Theorem 5.1) on the restricted model."""

    name = "failure"
    aliases = ("failures",)
    description = "failure-set equality (restricted model)"
    param_defaults = {"max_macro_states": None}

    def check(
        self,
        left: Process,
        right: Process,
        want_witness: bool,
        max_macro_states: int | None = None,
    ) -> NotionResult:
        require(left.fsp, ModelClass.RESTRICTED, context="failure equivalence")
        require(right.fsp, ModelClass.RESTRICTED, context="failure equivalence")
        if max_macro_states is None:
            # Observational equivalence refines failure equivalence, so the
            # observational quotients have the same failure sets.
            left_fsp = left.minimized_observational()
            right_fsp = right.minimized_observational()
        else:
            left_fsp, right_fsp = left.fsp, right.fsp
        combined = left_fsp.disjoint_union(right_fsp)
        first, second = _LEFT + left_fsp.start, _RIGHT + right_fsp.start
        string = failure_distinguishing_string(
            combined, first, second, max_macro_states=max_macro_states
        )
        if string is None:
            return NotionResult(True)
        witness = self._refusal_witness(combined, first, second, string) if want_witness else None
        return NotionResult(False, witness)

    @staticmethod
    def _refusal_witness(
        combined: FSP, first: str, second: str, string: tuple[str, ...]
    ) -> RefusalWitness:
        """Turn a distinguishing string into a concrete one-sided failure pair."""
        from repro.core.derivatives import WeakTransitionView

        view = WeakTransitionView(combined)
        left_macro = view.epsilon_closure(first)
        right_macro = view.epsilon_closure(second)
        for action in string:
            left_macro = view.weak_successors_of_set(left_macro, action)
            right_macro = view.weak_successors_of_set(right_macro, action)
        if bool(left_macro) != bool(right_macro):
            # Only one side has a string-derivative: (string, {}) is a
            # failure of that side alone.
            return RefusalWitness(string, frozenset(), in_left=bool(left_macro))
        left_max = maximal_refusals(combined, left_macro, view)
        right_max = maximal_refusals(combined, right_macro, view)
        for refusal in left_max:
            if not any(refusal <= other for other in right_max):
                return RefusalWitness(string, refusal, in_left=True)
        for refusal in right_max:
            if not any(refusal <= other for other in left_max):
                return RefusalWitness(string, refusal, in_left=False)
        raise AssertionError(
            "distinguishing string does not separate the refusal information"
        )  # pragma: no cover - the search only returns separating strings

    def prepare_expression_fsp(self, fsp: FSP) -> FSP:
        """Read the representative FSP as a restricted process (all accepting).

        Failure equivalence is defined on the restricted model; marking every
        state accepting is the standard move the paper itself makes when it
        reads star expressions as restricted processes in Section 4.
        """
        return FSP(
            states=fsp.states,
            start=fsp.start,
            alphabet=fsp.alphabet,
            transitions=fsp.transitions,
            variables=fsp.variables | {"x"},
            extensions=set(fsp.extensions) | {(state, "x") for state in fsp.states},
        )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Notion] = {}
_ALIASES: dict[str, str] = {}


def register_notion(notion: Notion, replace: bool = False) -> Notion:
    """Add a notion to the registry (its name and aliases become lookup keys)."""
    if not notion.name:
        raise ValueError("a notion must have a non-empty name")
    if not replace and notion.name in _REGISTRY:
        raise ValueError(f"notion {notion.name!r} is already registered")
    _REGISTRY[notion.name] = notion
    for alias in notion.aliases:
        _ALIASES[alias] = notion.name
    return notion


def unregister_notion(name: str) -> None:
    """Remove a notion (used by tests and plugin teardown)."""
    notion = _REGISTRY.pop(name, None)
    if notion is not None:
        for alias in notion.aliases:
            _ALIASES.pop(alias, None)


def get_notion(name: str | Notion) -> Notion:
    """Look a notion up by name or alias; raises with the known names."""
    if isinstance(name, Notion):
        return name
    key = _ALIASES.get(name, name)
    notion = _REGISTRY.get(key)
    if notion is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown equivalence notion {name!r}; registered notions: {known}")
    return notion


def available_notions() -> tuple[str, ...]:
    """The registered notion names, sorted."""
    return tuple(sorted(_REGISTRY))


def expression_notions() -> tuple[str, ...]:
    """The registered notions applicable to star expressions, sorted."""
    return tuple(sorted(name for name, n in _REGISTRY.items() if n.supports_expressions))


for _notion in (
    StrongNotion(),
    ObservationalNotion(),
    KObservationalNotion(),
    LanguageNotion(),
    FailureNotion(),
):
    register_notion(_notion)
