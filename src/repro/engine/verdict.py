"""Structured check results: :class:`Verdict`, stats, and checkable witnesses.

A bare boolean is a poor API for an equivalence checker: callers serving
heavy traffic want to know *how* the answer was produced (timings, cache
hits, artifact sizes) and, on inequivalence, *why* -- a certificate they can
re-check against the original processes without trusting the engine.  The
paper's machinery already produces three kinds of certificates:

* a Hennessy-Milner **distinguishing formula** satisfied by exactly one side
  (:func:`repro.equivalence.hml.distinguishing_formula`) for strong,
  observational and ``k``-observational inequivalence;
* a **distinguishing word** accepted by exactly one side's language
  (:func:`repro.equivalence.language.language_distinguishing_word`);
* a **refusal pair** ``(s, Z)`` in exactly one side's failure set
  (:func:`repro.equivalence.failure.failure_distinguishing_string`).

This module wires them into one place.  Every witness implements
:meth:`Witness.holds`, which re-evaluates the certificate against two FSPs
from first principles -- satisfaction for formulas, NFA acceptance for words,
weak-derivative refusal membership for failure pairs -- so a verdict can be
audited end to end (the property tests do exactly that).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.derivatives import WeakTransitionView
from repro.core.fsp import FSP
from repro.equivalence.hml import Formula, satisfies


# ----------------------------------------------------------------------
# witnesses
# ----------------------------------------------------------------------
class Witness(ABC):
    """A checkable certificate of inequivalence.

    ``holds(left, right)`` must re-derive the certificate's claim from the
    two processes alone: it returns True exactly when the certificate
    separates ``left.start`` from ``right.start`` in the stated direction.
    """

    @abstractmethod
    def holds(self, left: FSP, right: FSP) -> bool:
        """Re-check the certificate against two processes."""

    @abstractmethod
    def describe(self) -> str:
        """A one-line human-readable rendering."""

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class FormulaWitness(Witness):
    """An HML formula satisfied by the left start state but not the right.

    ``weak`` records whether the formula uses weak modalities (observational
    and ``k``-observational inequivalence) or strong ones.
    """

    formula: Formula
    weak: bool = False

    def holds(self, left: FSP, right: FSP) -> bool:
        return satisfies(left, left.start, self.formula) and not satisfies(
            right, right.start, self.formula
        )

    def describe(self) -> str:
        kind = "weak HML" if self.weak else "HML"
        return f"{kind} formula satisfied by left only: {self.formula}"


@dataclass(frozen=True)
class WordWitness(Witness):
    """An observable word in exactly one of the two weak languages.

    ``in_left`` records which side accepts the word.
    """

    word: tuple[str, ...]
    in_left: bool

    def holds(self, left: FSP, right: FSP) -> bool:
        from repro.equivalence.language import language_nfa

        left_accepts = language_nfa(left).accepts(self.word)
        right_accepts = language_nfa(right).accepts(self.word)
        return left_accepts != right_accepts and left_accepts == self.in_left

    def describe(self) -> str:
        side = "left" if self.in_left else "right"
        rendered = ".".join(self.word) if self.word else "ε"
        return f"word {rendered!r} accepted by the {side} process only"


@dataclass(frozen=True)
class TraceWitness(Witness):
    """An action sequence admitted by exactly one side.

    Produced by the on-the-fly route (:mod:`repro.explore`): the challenger's
    path through the bisimulation game, verified by macro-state replay as a
    genuine (strong or weak) trace of one side only.  ``weak`` selects the
    replay semantics; ``in_left`` names the side admitting the trace.
    """

    trace: tuple[str, ...]
    weak: bool
    in_left: bool

    def holds(self, left: FSP, right: FSP) -> bool:
        from repro.explore.onthefly import verify_trace

        verified, in_left = verify_trace(
            left, right, self.trace, "observational" if self.weak else "strong"
        )
        return verified and in_left == self.in_left

    def describe(self) -> str:
        side = "left" if self.in_left else "right"
        kind = "weak trace" if self.weak else "trace"
        rendered = ".".join(self.trace) if self.trace else "ε"
        return f"{kind} {rendered!r} witnesses extra behaviour of the {side} process"


@dataclass(frozen=True)
class RefusalWitness(Witness):
    """A failure pair ``(string, refusal)`` of exactly one side.

    The pair belongs to the failure set of the side named by ``in_left``: it
    has a weak ``string``-derivative that refuses every action in
    ``refusal``; the other side has no such derivative.  The empty refusal
    set covers the pure reachability case (one side has no
    ``string``-derivative at all).
    """

    string: tuple[str, ...]
    refusal: frozenset[str]
    in_left: bool

    def _has_pair(self, fsp: FSP) -> bool:
        view = WeakTransitionView(fsp)
        macro: frozenset[str] = view.epsilon_closure(fsp.start)
        for action in self.string:
            macro = view.weak_successors_of_set(macro, action)
        return any(self.refusal <= (fsp.alphabet - view.weak_initials(state)) for state in macro)

    def holds(self, left: FSP, right: FSP) -> bool:
        left_has = self._has_pair(left)
        right_has = self._has_pair(right)
        return left_has != right_has and left_has == self.in_left

    def describe(self) -> str:
        side = "left" if self.in_left else "right"
        rendered = ".".join(self.string) if self.string else "ε"
        refusal = "{" + ", ".join(sorted(self.refusal)) + "}"
        return f"failure ({rendered!r}, {refusal}) of the {side} process only"


# ----------------------------------------------------------------------
# stats and verdicts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckStats:
    """How a verdict was produced: timings, input sizes, cache provenance."""

    notion: str
    seconds: float
    from_cache: bool
    left_states: int
    left_transitions: int
    right_states: int
    right_transitions: int
    details: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Verdict:
    """The structured answer of one equivalence check.

    ``left`` / ``right`` are the (aligned) processes the check compared, kept
    so that :meth:`verify_witness` can re-check the certificate without any
    external state.  They are None when no eager process exists to store:
    the direct expression route with no witness materialised (see
    :meth:`~repro.engine.engine.Engine.check_expressions`) and the
    on-the-fly route's composed/implicit operands (see
    :meth:`~repro.engine.engine.Engine.check_on_the_fly`).  ``bool(verdict)``
    is the equivalence answer, so verdicts drop into boolean positions where
    the old free functions were used.
    """

    equivalent: bool
    notion: str
    left: FSP | None
    right: FSP | None
    witness: Witness | None
    stats: CheckStats

    def __bool__(self) -> bool:
        return self.equivalent

    def verify_witness(self) -> bool | None:
        """Re-check the witness against the stored processes.

        Returns None when there is nothing to verify (the processes are
        equivalent, or no witness was requested/available), otherwise the
        result of :meth:`Witness.holds`.
        """
        if self.witness is None or self.left is None or self.right is None:
            return None
        return self.witness.holds(self.left, self.right)

    def describe(self) -> str:
        answer = "equivalent" if self.equivalent else "NOT equivalent"
        line = f"{answer} under {self.notion} equivalence"
        if self.witness is not None:
            line += f" ({self.witness.describe()})"
        return line

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible rendering (used by the CLI ``batch`` command)."""
        return {
            "notion": self.notion,
            "equivalent": self.equivalent,
            "witness": self.witness.describe() if self.witness is not None else None,
            "seconds": round(self.stats.seconds, 6),
            "from_cache": self.stats.from_cache,
            "left_states": self.stats.left_states,
            "right_states": self.stats.right_states,
        }


def cached_copy(verdict: Verdict) -> Verdict:
    """The verdict to hand out on a cache hit: same answer, zero-cost stats."""
    return replace(verdict, stats=replace(verdict.stats, from_cache=True, seconds=0.0))


@dataclass(frozen=True)
class BatchResult:
    """The result of :meth:`repro.engine.Engine.check_many`."""

    verdicts: tuple[Verdict, ...]
    seconds: float

    def __iter__(self) -> Iterator[Verdict]:
        return iter(self.verdicts)

    def __len__(self) -> int:
        return len(self.verdicts)

    def __getitem__(self, index: int) -> Verdict:
        return self.verdicts[index]

    @property
    def num_equivalent(self) -> int:
        return sum(1 for verdict in self.verdicts if verdict.equivalent)

    @property
    def num_inequivalent(self) -> int:
        return len(self.verdicts) - self.num_equivalent

    @property
    def cache_hits(self) -> int:
        return sum(1 for verdict in self.verdicts if verdict.stats.from_cache)

    def summary(self) -> dict[str, Any]:
        return {
            "checks": len(self.verdicts),
            "equivalent": self.num_equivalent,
            "inequivalent": self.num_inequivalent,
            "cache_hits": self.cache_hits,
            "seconds": round(self.seconds, 6),
        }

    def to_dicts(self) -> list[dict[str, Any]]:
        return [verdict.to_dict() for verdict in self.verdicts]


def now() -> float:
    """The engine's clock (one place to patch in tests)."""
    return time.perf_counter()
