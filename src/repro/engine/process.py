"""The :class:`Process` handle: one FSP, every derived artifact cached once.

The server-style workloads the ROADMAP targets ask many questions about the
same process -- repeated equivalence queries, minimisation, language checks.
Each of the old free functions recompiled the full ``FSP -> LTS ->
WeakKernel -> partition`` pipeline per call; a :class:`Process` wraps the FSP
and materialises each derived artifact lazily, exactly once:

===========================  ====================================================
artifact                     producer
===========================  ====================================================
``lts()``                    :meth:`repro.core.lts.LTS.from_fsp` (CSR kernel)
``weak_kernel()``            :class:`repro.core.weak.WeakKernel` (tau-SCC+bitsets)
``weak_view()``              :class:`repro.core.derivatives.WeakTransitionView`
                             sharing the same kernel
``saturated_lts()``          :func:`repro.core.weak.saturate_lts` (``P_hat``)
``strong_partition()``       Lemma 3.1 reduction + a partition solver
``observational_partition``  Theorem 4.1(a): saturation + strong refinement
``minimized_strong()``       quotient by the cached strong partition
``minimized_observational``  quotient by the cached observational partition
``language_dfa()``           minimal DFA of the start state's weak language
===========================  ====================================================

Handles are cheap to create; all caches fill on first use.  A handle is tied
to one immutable FSP, so cached artifacts never go stale.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.derivatives import WeakTransitionView
from repro.core.fsp import FSP
from repro.core.lts import LTS
from repro.core.weak import WeakKernel, saturate_lts
from repro.equivalence.minimize import quotient
from repro.partition.generalized import (
    GeneralizedPartitioningInstance,
    Solver,
    resolve_backend,
    solve,
)
from repro.partition.partition import Partition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.automata.dfa import DFA


def _solver(method: Solver | str) -> Solver:
    return method if isinstance(method, Solver) else Solver(method)


def _backend(backend: str, num_states: int) -> str:
    """Resolve (and validate) a backend name against this process's size.

    Resolving ``"auto"`` *before* the cache lookup means an auto-dispatched
    call and an explicit call to the backend it picked share one cache slot
    -- the artifacts are identical, caching them twice would halve the
    effective bound.
    """
    return resolve_backend(backend, num_states)


class Process:
    """A handle around one FSP with lazily cached derived artifacts."""

    __slots__ = (
        "fsp",
        "_lts",
        "_weak_kernel",
        "_weak_view",
        "_saturated_lts",
        "_strong_partitions",
        "_observational_partitions",
        "_minimized_strong",
        "_minimized_observational",
        "_language_dfa",
    )

    def __init__(self, fsp: FSP) -> None:
        if not isinstance(fsp, FSP):
            raise TypeError(f"Process wraps an FSP, not {type(fsp).__name__}")
        self.fsp = fsp
        self._lts: LTS | None = None
        self._weak_kernel: WeakKernel | None = None
        self._weak_view: WeakTransitionView | None = None
        self._saturated_lts: dict[str, LTS] = {}
        self._strong_partitions: dict[tuple[Solver, str], Partition] = {}
        self._observational_partitions: dict[tuple[Solver, str], Partition] = {}
        self._minimized_strong: dict[tuple[Solver, str], FSP] = {}
        self._minimized_observational: dict[tuple[Solver, str], FSP] = {}
        self._language_dfa: DFA | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: str | Path) -> "Process":
        """Load a handle from a ``.json`` or ``.aut`` process file."""
        from repro.utils.serialization import load_process_file

        return cls(load_process_file(path))

    @classmethod
    def from_expression(cls, expression, alphabet=None) -> "Process":
        """A handle on the representative FSP of a star expression."""
        from repro.expressions.parser import parse
        from repro.expressions.semantics import representative_fsp

        parsed = parse(expression) if isinstance(expression, str) else expression
        return cls(representative_fsp(parsed, alphabet=alphabet))

    @classmethod
    def from_ccs(cls, term: str, definitions=None, max_states: int = 10_000) -> "Process":
        """A handle on the FSP compiled from a CCS term."""
        from repro.ccs.parser import parse_process
        from repro.ccs.semantics import compile_to_fsp

        return cls(compile_to_fsp(parse_process(term), definitions, max_states=max_states))

    # ------------------------------------------------------------------
    # cached artifacts
    # ------------------------------------------------------------------
    def lts(self) -> LTS:
        """The interned integer CSR kernel (tau kept as one more action)."""
        if self._lts is None:
            self._lts = LTS.from_fsp(self.fsp, include_tau=True)
        return self._lts

    def weak_kernel(self) -> WeakKernel:
        """The tau-SCC + bitset weak-transition engine over :meth:`lts`."""
        if self._weak_kernel is None:
            self._weak_kernel = WeakKernel(self.lts())
        return self._weak_kernel

    def weak_view(self) -> WeakTransitionView:
        """The string-named weak-transition view, sharing :meth:`weak_kernel`."""
        if self._weak_view is None:
            self._weak_view = WeakTransitionView(self.fsp, kernel=self.weak_kernel())
        return self._weak_view

    def saturated_lts(self, backend: str = "python") -> LTS:
        """The saturated kernel ``P_hat`` of Theorem 4.1(a) (cached per backend).

        Both backends produce byte-identical CSR arrays; they are cached
        separately only so a vector-backend pipeline never silently reuses an
        artifact the Python oracle produced (and vice versa) when the two are
        being cross-checked against each other.
        """
        backend = _backend(backend, self.fsp.num_states)
        saturated = self._saturated_lts.get(backend)
        if saturated is None:
            saturated = saturate_lts(self.lts(), backend=backend)
            self._saturated_lts[backend] = saturated
        return saturated

    def strong_partition(
        self, method: Solver | str = Solver.PAIGE_TARJAN, backend: str = "python"
    ) -> Partition:
        """The strong-equivalence partition (cached per solver and backend)."""
        method = _solver(method)
        backend = _backend(backend, self.fsp.num_states)
        key = (method, backend)
        partition = self._strong_partitions.get(key)
        if partition is None:
            instance = GeneralizedPartitioningInstance.from_lts(self.lts())
            partition = solve(instance, method=method, backend=backend)
            self._strong_partitions[key] = partition
        return partition

    def observational_partition(
        self, method: Solver | str = Solver.PAIGE_TARJAN, backend: str = "python"
    ) -> Partition:
        """The observational-equivalence partition (cached per solver and backend)."""
        method = _solver(method)
        backend = _backend(backend, self.fsp.num_states)
        key = (method, backend)
        partition = self._observational_partitions.get(key)
        if partition is None:
            instance = GeneralizedPartitioningInstance.from_lts(self.saturated_lts(backend))
            partition = solve(instance, method=method, backend=backend)
            self._observational_partitions[key] = partition
        return partition

    def minimized_strong(
        self, method: Solver | str = Solver.PAIGE_TARJAN, backend: str = "python"
    ) -> FSP:
        """The quotient by strong equivalence (cached per solver and backend)."""
        method = _solver(method)
        backend = _backend(backend, self.fsp.num_states)
        key = (method, backend)
        minimal = self._minimized_strong.get(key)
        if minimal is None:
            minimal = quotient(self.fsp, self.strong_partition(method, backend))
            self._minimized_strong[key] = minimal
        return minimal

    def minimized_observational(
        self, method: Solver | str = Solver.PAIGE_TARJAN, backend: str = "python"
    ) -> FSP:
        """The quotient by observational equivalence (cached per solver and backend)."""
        method = _solver(method)
        backend = _backend(backend, self.fsp.num_states)
        key = (method, backend)
        minimal = self._minimized_observational.get(key)
        if minimal is None:
            minimal = quotient(self.fsp, self.observational_partition(method, backend))
            self._minimized_observational[key] = minimal
        return minimal

    def language_dfa(self) -> "DFA":
        """The minimal DFA of ``L(start)`` (subset construction + Hopcroft)."""
        if self._language_dfa is None:
            from repro.equivalence.language import language_dfa

            self._language_dfa = language_dfa(self.fsp)
        return self._language_dfa

    # ------------------------------------------------------------------
    # pickling (worker shipping)
    # ------------------------------------------------------------------
    def __getstate__(self) -> FSP:
        """Pickle only the FSP: snapshots shipped to workers stay lean.

        Derived artifacts (CSR arrays, bitset kernels, partitions) can dwarf
        the FSP itself and are cheaper to rebuild in the receiving process
        than to serialise, so a pickled handle carries just its immutable
        FSP; every cache refills lazily on first use after unpickling.
        """
        return self.fsp

    def __setstate__(self, fsp: FSP) -> None:
        self.__init__(fsp)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return self.fsp.num_states

    @property
    def num_transitions(self) -> int:
        return self.fsp.num_transitions

    def artifact_summary(self) -> dict[str, bool | int]:
        """Which derived artifacts have been materialised so far."""
        return {
            "lts": self._lts is not None,
            "weak_kernel": self._weak_kernel is not None,
            "weak_view": self._weak_view is not None,
            "saturated_lts": bool(self._saturated_lts),
            "strong_partitions": len(self._strong_partitions),
            "observational_partitions": len(self._observational_partitions),
            "minimized_strong": len(self._minimized_strong),
            "minimized_observational": len(self._minimized_observational),
            "language_dfa": self._language_dfa is not None,
        }

    def __repr__(self) -> str:
        return (
            f"Process(states={self.fsp.num_states}, "
            f"transitions={self.fsp.num_transitions}, start={self.fsp.start!r})"
        )
