"""Observational equivalence -- Theorem 4.1(a).

Observational equivalence ``approx`` is the limit of the chain ``approx_k`` of
Definition 2.2.1 and, by Proposition 2.2.1(c), coincides with *limited*
observational equivalence ``simeq`` (Definition 2.2.2), which only quantifies
over single-action weak moves.  Theorem 4.1(a) turns this into a polynomial
algorithm:

1. saturate the process: build the observable kernel ``P_hat`` over
   ``Sigma u {epsilon}`` whose arcs are the weak transitions of ``P``
   (:func:`repro.core.weak.saturate_lts`, tau-SCC condensation + bitset
   propagation straight on the CSR :class:`~repro.core.lts.LTS`);
2. decide strong equivalence on ``P_hat`` by generalized partitioning.

Two states of ``P`` are observationally equivalent iff they are strongly
equivalent in ``P_hat``.

A direct fixed-point implementation of Definition 2.2.2
(:func:`limited_observational_partition_reference`) is retained as a reference
oracle; property-based tests check that it always agrees with the saturation
route (experiment E13).
"""

from __future__ import annotations

from repro.core.derivatives import WeakTransitionView
from repro.core.fsp import EPSILON, FSP
from repro.core.lts import LTS
from repro.core.weak import saturate_lts
from repro.partition.generalized import GeneralizedPartitioningInstance, Solver, solve
from repro.partition.partition import Partition


def observational_partition(
    fsp: FSP,
    method: Solver | str = Solver.PAIGE_TARJAN,
    backend: str = "python",
) -> Partition:
    """The partition of the state set into observational-equivalence classes.

    Implements the algorithm of Theorem 4.1(a): saturation followed by strong
    partition refinement.  The whole pipeline stays on the integer kernel --
    ``FSP -> LTS -> saturated LTS -> RefinablePartition`` -- via
    :func:`repro.core.weak.saturate_lts` and
    :meth:`~repro.partition.generalized.GeneralizedPartitioningInstance.from_lts`;
    no dict-of-frozensets saturated FSP is ever materialised.  With
    ``backend="vector"`` both stages vectorize: the tau-closure runs on packed
    bitset matrices (:func:`repro.core.weak.saturate_lts` with
    ``backend="vector"``) and the refinement on the numpy kernel.
    """
    saturated = saturate_lts(LTS.from_fsp(fsp, include_tau=True), backend=backend)
    return solve(
        GeneralizedPartitioningInstance.from_lts(saturated), method=method, backend=backend
    )


def observationally_equivalent(
    fsp: FSP,
    first: str,
    second: str,
    method: Solver | str = Solver.PAIGE_TARJAN,
    backend: str = "python",
) -> bool:
    """Decide ``first approx second`` for two states of the same FSP."""
    return observational_partition(fsp, method=method, backend=backend).same_block(first, second)


def observationally_equivalent_processes(
    first: FSP,
    second: FSP,
    method: Solver | str = Solver.PAIGE_TARJAN,
) -> bool:
    """Decide observational equivalence of the start states of two FSPs.

    A thin shim over the engine facade (:mod:`repro.engine`): repeated calls
    against the same processes reuse cached saturations, quotients and
    verdicts; use :meth:`repro.engine.Engine.check` for stats and witnesses.
    """
    from repro.engine import default_engine

    return default_engine().check(
        first, second, "observational", witness=False, method=method
    ).equivalent


def limited_observational_partition_reference(fsp: FSP) -> Partition:
    """Reference implementation of ``simeq`` by direct fixed-point iteration.

    Starting from the partition by extension sets, states are repeatedly
    separated when some weak single-action move of one cannot be matched by
    the other into the current partition.  This follows Definition 2.2.2
    literally (each iteration computes ``simeq_{k+1}`` from ``simeq_k``) and
    stops at the fixed point, which by Proposition 2.2.1(c) equals
    observational equivalence.  It is asymptotically slower than the
    saturation route and exists for cross-checking.
    """
    view = WeakTransitionView(fsp)
    actions = sorted(fsp.alphabet) + [EPSILON]
    partition = Partition.from_key(fsp.states, key=fsp.extension)
    changed = True
    while changed:
        signatures: dict[str, frozenset[tuple[str, int]]] = {}
        for state in fsp.states:
            signature = set()
            for action in actions:
                for target in view.weak_successors(state, action):
                    signature.add((action, partition.block_id_of(target)))
            signatures[state] = frozenset(signature)
        changed = partition.split_by_key(lambda state: signatures[state])
    return partition


def observational_equivalence_classes(fsp: FSP) -> frozenset[frozenset[str]]:
    """The set of observational-equivalence classes of the process's states."""
    return observational_partition(fsp).as_frozen()
