"""The approximation chains ``approx_k`` and ``simeq_k`` -- Definitions 2.2.1 and 2.2.2.

The paper defines observational equivalence as the intersection of a chain of
successively finer relations:

* ``approx_k`` (*k-observational equivalence*, Definition 2.2.1) matches weak
  derivatives over **all strings** ``s`` in ``Sigma*`` down to depth ``k``;
  ``approx_1`` is NFA language equivalence on standard processes
  (Proposition 2.2.3(b)) and deciding any fixed ``approx_k`` is
  PSPACE-complete (Theorem 4.1(b)).
* ``simeq_k`` (*k-limited observational equivalence*, Definition 2.2.2)
  matches only single-action weak moves; its limit equals ``approx``
  (Proposition 2.2.1(c)) and each level is computable by one round of
  partition refinement on the saturated process.

``approx_k`` is computed here through the characterisation used in the
membership half of Theorem 4.1(b): with ``{B_i}`` the partition induced by
``approx_k``,

    ``p approx_{k+1} q   iff   for every block B_i,  L_i(p) = L_i(q)``

where ``L_i(p)`` is the language of the weak-transition NFA with start state
``p`` and accepting set ``B_i``.  The language checks determinise the
automaton, so the procedure is exponential in the worst case -- which is the
behaviour the PSPACE-completeness result says cannot be avoided for fixed
``k`` (contrast with the polynomial limit, experiment E8).
"""

from __future__ import annotations

from repro.automata.equivalence import nfa_equivalent
from repro.core.derivatives import WeakTransitionView
from repro.core.fsp import EPSILON, FSP
from repro.equivalence.language import weak_language_nfa
from repro.partition.partition import Partition


# ----------------------------------------------------------------------
# simeq_k : k-limited observational equivalence
# ----------------------------------------------------------------------
def k_limited_partition(fsp: FSP, k: int) -> Partition:
    """The partition induced by ``simeq_k`` (Definition 2.2.2).

    ``k = 0`` groups states by extension set; each further level is one
    refinement round against single-action weak moves.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    view = WeakTransitionView(fsp)
    actions = sorted(fsp.alphabet) + [EPSILON]
    partition = Partition.from_key(fsp.states, key=fsp.extension)
    for _ in range(k):
        signatures: dict[str, frozenset[tuple[str, int]]] = {}
        for state in fsp.states:
            signature = set()
            for action in actions:
                for target in view.weak_successors(state, action):
                    signature.add((action, partition.block_id_of(target)))
            signatures[state] = frozenset(signature)
        if not partition.split_by_key(lambda state: signatures[state]):
            break  # reached the fixed point early: simeq_j = simeq for all j >= this level
    return partition


def k_limited_equivalent(fsp: FSP, first: str, second: str, k: int) -> bool:
    """Decide ``first simeq_k second`` for two states of the same FSP."""
    return k_limited_partition(fsp, k).same_block(first, second)


def limited_observational_partition(fsp: FSP) -> Partition:
    """The partition induced by ``simeq`` (the limit of the ``simeq_k`` chain).

    Equivalent to :func:`repro.equivalence.observational.observational_partition`
    by Proposition 2.2.1(c); computed here by iterating ``simeq_k`` to its
    fixed point, which takes at most ``|K|`` rounds.
    """
    return k_limited_partition(fsp, len(fsp.states) + 1)


# ----------------------------------------------------------------------
# approx_k : k-observational equivalence
# ----------------------------------------------------------------------
def k_observational_partition(fsp: FSP, k: int, max_subset_states: int | None = None) -> Partition:
    """The partition induced by ``approx_k`` (Definition 2.2.1).

    Parameters
    ----------
    fsp:
        The process whose states are partitioned.
    k:
        The level of the approximation chain; ``k = 0`` groups states by
        extension set.
    max_subset_states:
        Optional bound on the subset constructions performed by the language
        comparisons (each comparison may be exponential; see Theorem 4.1(b)).

    Notes
    -----
    The refinement step compares, for every pair of states in a block and
    every current block ``B_i``, the languages of the weak-transition NFAs
    accepting at ``B_i``.  The NFAs are the epsilon-free kernel automata of
    :func:`repro.equivalence.language.weak_language_nfa`, all sharing one
    interned :class:`~repro.core.weak.WeakKernel` (no saturated dict FSP is
    materialised).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    view = WeakTransitionView(fsp)
    partition = Partition.from_key(fsp.states, key=fsp.extension)
    for _ in range(k):
        partition = _refine_by_block_languages(fsp, view, partition, max_subset_states)
    return partition


def _refine_by_block_languages(
    fsp: FSP,
    view: WeakTransitionView,
    partition: Partition,
    max_subset_states: int | None,
) -> Partition:
    """One ``approx_k -> approx_{k+1}`` refinement round via per-block languages."""
    blocks = [frozenset(block) for block in partition]
    new_groups: list[set[str]] = []
    for block in partition:
        remaining = sorted(block)
        groups: list[set[str]] = []
        for state in remaining:
            placed = False
            for group in groups:
                representative = next(iter(group))
                if _same_block_languages(
                    fsp, view, state, representative, blocks, max_subset_states
                ):
                    group.add(state)
                    placed = True
                    break
            if not placed:
                groups.append({state})
        new_groups.extend(groups)
    return Partition(new_groups)


def _same_block_languages(
    fsp: FSP,
    view: WeakTransitionView,
    first: str,
    second: str,
    blocks: list[frozenset[str]],
    max_subset_states: int | None,
) -> bool:
    """Whether ``L_i(first) = L_i(second)`` for every block ``B_i``."""
    for block in blocks:
        left = weak_language_nfa(fsp, first, accepting=block, view=view)
        right = weak_language_nfa(fsp, second, accepting=block, view=view)
        if not nfa_equivalent(left, right, max_states=max_subset_states):
            return False
    return True


def k_observational_equivalent(
    fsp: FSP, first: str, second: str, k: int, max_subset_states: int | None = None
) -> bool:
    """Decide ``first approx_k second`` for two states of the same FSP."""
    return k_observational_partition(fsp, k, max_subset_states).same_block(first, second)


def k_observational_equivalent_processes(
    first: FSP, second: FSP, k: int, max_subset_states: int | None = None
) -> bool:
    """Decide ``approx_k`` for the start states of two FSPs.

    A thin shim over the engine facade (:mod:`repro.engine`): with the
    default unbounded search, the per-block language comparisons run on the
    cached observational quotients (observational equivalence refines every
    ``approx_k``); a ``max_subset_states`` bound runs on the original state
    spaces so the bound keeps its meaning.
    """
    from repro.engine import default_engine

    return default_engine().check(
        first, second, "k-observational", witness=False, k=k, max_subset_states=max_subset_states
    ).equivalent


def separation_level(fsp: FSP, first: str, second: str, max_level: int | None = None) -> int | None:
    """The smallest ``k`` with ``not (first approx_k second)``, or None if none exists.

    By Proposition 2.2.1(c) the two states are observationally equivalent iff
    no such ``k`` exists; because ``approx`` equals the fixed point of the
    ``simeq`` chain, the search can stop at ``k = |K|`` (or ``max_level``).
    The level is a useful "how different are they" metric surfaced by the
    examples.
    """
    from repro.equivalence.observational import observationally_equivalent

    if observationally_equivalent(fsp, first, second):
        return None
    limit = max_level if max_level is not None else len(fsp.states) + 1
    for k in range(limit + 1):
        if not k_observational_equivalent(fsp, first, second, k):
            return k
    return None
