"""Hennessy-Milner logic and distinguishing formulas.

Hennessy & Milner (1985) -- cited by the paper as the logical companion of the
equivalence theory -- characterise strong bisimilarity on finite-branching
processes: two states are strongly equivalent iff they satisfy the same
Hennessy-Milner logic (HML) formulas.  The library uses this in the other
direction: when two states are *not* equivalent, a distinguishing formula is a
compact, human-readable certificate of the difference, which the examples and
the failure counterexamples surface to users.

Formulas are built from ``tt``, negation, finite conjunction, the (strong)
diamond ``<a>phi``, the weak diamond ``<<a>>phi`` (over ``=>^a``), and an
extension atom ``ext(V)`` asserting that the state's extension set equals
``V`` (needed because the paper's equivalences compare extensions at level 0).

:func:`distinguishing_formula` produces a formula satisfied by the first state
but not the second whenever they are distinguished by the chosen equivalence
(strong or observational); it works level by level along the refinement chain,
which guarantees termination and yields formulas of modal depth equal to the
separation level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.derivatives import WeakTransitionView
from repro.core.fsp import FSP, TAU
from repro.partition.partition import Partition


# ----------------------------------------------------------------------
# formula syntax
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Tt:
    """The formula ``tt`` satisfied by every state."""

    def __str__(self) -> str:
        return "tt"


@dataclass(frozen=True)
class ExtensionIs:
    """Atom asserting the state's extension set equals ``extension``."""

    extension: frozenset[str]

    def __str__(self) -> str:
        inner = ", ".join(sorted(self.extension))
        return f"ext({{{inner}}})"


@dataclass(frozen=True)
class Not:
    """Negation."""

    operand: "Formula"

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class And:
    """Finite conjunction."""

    operands: tuple["Formula", ...]

    def __str__(self) -> str:
        if not self.operands:
            return "tt"
        return "(" + " ∧ ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Diamond:
    """The strong diamond ``<action> operand``: some ``action``-successor satisfies it."""

    action: str
    operand: "Formula"

    def __str__(self) -> str:
        return f"<{self.action}>({self.operand})"


@dataclass(frozen=True)
class WeakDiamond:
    """The weak diamond ``<<action>> operand`` over the weak transition ``=>^action``.

    ``action`` may be the empty string, in which case the modality quantifies
    over ``=>^epsilon`` (tau-reachability).
    """

    action: str
    operand: "Formula"

    def __str__(self) -> str:
        label = self.action if self.action else "ε"
        return f"<<{label}>>({self.operand})"


Formula = Union[Tt, ExtensionIs, Not, And, Diamond, WeakDiamond]


def modal_depth(formula: Formula) -> int:
    """The nesting depth of modalities, matching the ``k`` of ``approx_k``/``simeq_k``."""
    if isinstance(formula, (Tt, ExtensionIs)):
        return 0
    if isinstance(formula, Not):
        return modal_depth(formula.operand)
    if isinstance(formula, And):
        return max((modal_depth(op) for op in formula.operands), default=0)
    return 1 + modal_depth(formula.operand)


# ----------------------------------------------------------------------
# satisfaction
# ----------------------------------------------------------------------
def satisfies(
    fsp: FSP, state: str, formula: Formula, view: WeakTransitionView | None = None
) -> bool:
    """Whether ``state`` satisfies ``formula`` in ``fsp``."""
    if isinstance(formula, Tt):
        return True
    if isinstance(formula, ExtensionIs):
        return fsp.extension(state) == formula.extension
    if isinstance(formula, Not):
        return not satisfies(fsp, state, formula.operand, view)
    if isinstance(formula, And):
        return all(satisfies(fsp, state, operand, view) for operand in formula.operands)
    if isinstance(formula, Diamond):
        return any(
            satisfies(fsp, successor, formula.operand, view)
            for successor in fsp.successors(state, formula.action)
        )
    if isinstance(formula, WeakDiamond):
        view = view if view is not None else WeakTransitionView(fsp)
        if formula.action:
            successors = view.weak_successors(state, formula.action)
        else:
            successors = view.epsilon_closure(state)
        return any(satisfies(fsp, successor, formula.operand, view) for successor in successors)
    raise TypeError(f"not an HML formula: {formula!r}")


# ----------------------------------------------------------------------
# distinguishing formulas
# ----------------------------------------------------------------------
def distinguishing_formula(fsp: FSP, first: str, second: str, weak: bool = False) -> Formula | None:
    """A formula satisfied by ``first`` but not by ``second``, or None.

    ``weak=False`` distinguishes with respect to strong equivalence (tau
    treated as a label), ``weak=True`` with respect to observational
    equivalence (weak diamonds).  Returns None when the states are equivalent
    in the chosen sense, in which case no HML formula can separate them.
    """
    levels = _refinement_levels(fsp, weak=weak)
    separation = None
    for index, partition in enumerate(levels):
        if not partition.same_block(first, second):
            separation = index
            break
    if separation is None:
        return None
    formula = _distinguish_at_level(fsp, first, second, separation, levels, weak)
    return formula


def _refinement_levels(fsp: FSP, weak: bool) -> list[Partition]:
    """The chain of partitions ``simeq_0, simeq_1, ...`` until it stabilises.

    For the strong case the refinement uses single strong transitions (tau as
    a label); for the weak case it uses single weak moves, i.e. the ``simeq_k``
    chain of Definition 2.2.2.
    """
    view = WeakTransitionView(fsp) if weak else None
    actions: list[str]
    if weak:
        actions = sorted(fsp.alphabet) + [""]
    else:
        actions = sorted(fsp.alphabet) + ([TAU] if fsp.has_tau() else [])

    def successors(state: str, action: str) -> frozenset[str]:
        if weak:
            assert view is not None
            return (
                view.epsilon_closure(state)
                if action == ""
                else view.weak_successors(state, action)
            )
        return fsp.successors(state, action)

    levels = [Partition.from_key(fsp.states, key=fsp.extension)]
    while True:
        current = levels[-1]
        signatures = {}
        for state in fsp.states:
            signature = set()
            for action in actions:
                for target in successors(state, action):
                    signature.add((action, current.block_id_of(target)))
            signatures[state] = frozenset(signature)
        next_partition = Partition(list(_split_groups(current, signatures)))
        levels.append(next_partition)
        if len(next_partition) == len(current):
            return levels


def _split_groups(partition: Partition, signatures: dict[str, frozenset]) -> list[set[str]]:
    groups: list[set[str]] = []
    for block in partition:
        by_signature: dict[frozenset, set[str]] = {}
        for state in block:
            by_signature.setdefault(signatures[state], set()).add(state)
        groups.extend(by_signature.values())
    return groups


def _distinguish_at_level(
    fsp: FSP,
    first: str,
    second: str,
    level: int,
    levels: list[Partition],
    weak: bool,
) -> Formula:
    """Build a formula of modal depth ``level`` separating the two states."""
    if level == 0:
        return ExtensionIs(fsp.extension(first))
    previous = levels[level - 1]
    view = WeakTransitionView(fsp) if weak else None
    if weak:
        actions = sorted(fsp.alphabet) + [""]
    else:
        actions = sorted(fsp.alphabet) + ([TAU] if fsp.has_tau() else [])

    def successors(state: str, action: str) -> frozenset[str]:
        if weak:
            assert view is not None
            return (
                view.epsilon_closure(state)
                if action == ""
                else view.weak_successors(state, action)
            )
        return fsp.successors(state, action)

    def diamond(action: str, operand: Formula) -> Formula:
        return WeakDiamond(action, operand) if weak else Diamond(action, operand)

    # Try to find a move of `first` that `second` cannot match up to the
    # previous level; if none exists the witness lies on `second`'s side and
    # the distinguishing formula is negated.
    for swap in (False, True):
        left, right = (second, first) if swap else (first, second)
        for action in actions:
            for target in successors(left, action):
                mismatched = [
                    candidate
                    for candidate in successors(right, action)
                    if previous.same_block(target, candidate)
                ]
                if mismatched:
                    continue
                conjuncts = []
                for candidate in successors(right, action):
                    sub_level = _separation_level(levels, target, candidate)
                    sub = _distinguish_at_level(fsp, target, candidate, sub_level, levels, weak)
                    conjuncts.append(sub)
                formula: Formula = diamond(action, And(tuple(conjuncts)) if conjuncts else Tt())
                return Not(formula) if swap else formula
    # The two states are not separated at this level after all (should not
    # happen when the caller picked the true separation level).
    raise AssertionError("states are not distinguishable at the requested level")


def _separation_level(levels: list[Partition], first: str, second: str) -> int:
    for index, partition in enumerate(levels):
        if not partition.same_block(first, second):
            return index
    raise AssertionError("states are equivalent; no separation level exists")
