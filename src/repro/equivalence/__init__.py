"""The equivalence checkers: strong, observational, k-observational, language, failure."""

from repro.equivalence.failure import (
    failure_distinguishing_string,
    failure_equivalent,
    failure_equivalent_processes,
    failures_upto,
    maximal_refusals,
    tree_failure_equivalent,
)
from repro.equivalence.hml import (
    And,
    Diamond,
    ExtensionIs,
    Not,
    Tt,
    WeakDiamond,
    distinguishing_formula,
    modal_depth,
    satisfies,
)
from repro.equivalence.kobs import (
    k_limited_equivalent,
    k_limited_partition,
    k_observational_equivalent,
    k_observational_equivalent_processes,
    k_observational_partition,
    separation_level,
)
from repro.equivalence.language import (
    is_universal,
    language_distinguishing_word,
    language_equivalent,
    language_equivalent_processes,
    language_included,
)
from repro.equivalence.minimize import minimize_observational, minimize_strong, quotient
from repro.equivalence.observational import (
    limited_observational_partition_reference,
    observational_partition,
    observationally_equivalent,
    observationally_equivalent_processes,
)
from repro.equivalence.relations import (
    is_strong_bisimulation,
    is_weak_bisimulation,
    largest_strong_bisimulation,
    largest_weak_bisimulation,
    relation_from_partition,
)
from repro.equivalence.simulation import (
    is_simulation,
    similar,
    similar_processes,
    simulates,
    simulation_preorder,
)
from repro.equivalence.strong import (
    strong_bisimulation_partition,
    strongly_equivalent,
    strongly_equivalent_processes,
)

__all__ = [
    "And",
    "Diamond",
    "ExtensionIs",
    "Not",
    "Tt",
    "WeakDiamond",
    "distinguishing_formula",
    "failure_distinguishing_string",
    "failure_equivalent",
    "failure_equivalent_processes",
    "failures_upto",
    "is_strong_bisimulation",
    "is_universal",
    "is_weak_bisimulation",
    "k_limited_equivalent",
    "k_limited_partition",
    "k_observational_equivalent",
    "k_observational_equivalent_processes",
    "k_observational_partition",
    "language_distinguishing_word",
    "language_equivalent",
    "language_equivalent_processes",
    "language_included",
    "largest_strong_bisimulation",
    "largest_weak_bisimulation",
    "limited_observational_partition_reference",
    "maximal_refusals",
    "minimize_observational",
    "minimize_strong",
    "modal_depth",
    "observational_partition",
    "observationally_equivalent",
    "observationally_equivalent_processes",
    "quotient",
    "is_simulation",
    "relation_from_partition",
    "satisfies",
    "separation_level",
    "similar",
    "similar_processes",
    "simulates",
    "simulation_preorder",
    "strong_bisimulation_partition",
    "strongly_equivalent",
    "strongly_equivalent_processes",
    "tree_failure_equivalent",
]
