"""Language (NFA) equivalence of FSP states -- the classical baseline.

Proposition 2.2.3(b) identifies ``approx_1`` on the restricted model with
classical language equivalence ``L(p) = L(q)``, and Proposition 2.2.4 shows
that on the deterministic model *every* equivalence of the paper collapses to
it.  This module exposes the language view of an FSP state: the weak-transition
NFA rooted at that state, language equivalence/inclusion/universality
decisions, and distinguishing words used as counterexamples.

All functions accept general FSPs; tau-transitions are treated as epsilon
moves, so ``L(p)`` is the set of *observable* strings that can reach an
accepting state, matching the paper's use of ``=>^s``.

Two automaton views are provided.  :func:`language_nfa` is the literal one
(tau-arcs become epsilon-arcs of the NFA); it is lazy -- O(m) arcs -- and is
what the one-shot deciders below use, since their subset constructions only
ever touch the reachable macro-states.  :func:`weak_language_nfa` is the
kernel-backed one: the arcs are the weak transitions read off a
:class:`~repro.core.weak.WeakKernel` and acceptance is lifted through the
tau-closure, so the automaton is *epsilon-free*.  Materialising those arcs
costs the full ``Theta(|Delta_hat|)`` saturation, which only pays when many
automata over the same process share one view -- the ``approx_k`` machinery
(:mod:`repro.equivalence.kobs`) builds one NFA per state/block pair and is
exactly that consumer.  The two views accept the same language.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.automata.dfa import DFA, determinize
from repro.automata.equivalence import (
    nfa_distinguishing_word,
    nfa_equivalent,
    nfa_included,
    nfa_universal,
    nfa_universality_counterexample,
)
from repro.automata.minimize import hopcroft_minimize
from repro.automata.nfa import NFA
from repro.core.derivatives import WeakTransitionView
from repro.core.errors import InvalidProcessError
from repro.core.fsp import EPSILON, FSP, TAU


def language_nfa(fsp: FSP, start: str | None = None, accepting: Iterable[str] | None = None) -> NFA:
    """The NFA accepting ``L(start)`` (acceptance by the standard-model extension).

    Parameters
    ----------
    fsp:
        The process.
    start:
        The state to root the automaton at; defaults to the process start
        state.
    accepting:
        Override of the accepting set (used by the ``approx_k`` machinery to
        accept at an arbitrary block).
    """
    root = fsp.start if start is None else start
    accept = frozenset(accepting) if accepting is not None else fsp.accepting_states()
    transitions = [
        (src, None if action == TAU else action, dst) for src, action, dst in fsp.transitions
    ]
    return NFA(
        states=fsp.states,
        start=root,
        alphabet=fsp.alphabet,
        transitions=transitions,
        accepting=accept,
    )


def weak_language_nfa(
    fsp: FSP,
    start: str | None = None,
    accepting: Iterable[str] | None = None,
    view: WeakTransitionView | None = None,
) -> NFA:
    """The *epsilon-free* NFA for ``L(start)``, built on the weak kernel.

    The arcs are the weak transitions ``p =>^a q`` (read off the tau-SCC +
    bitset engine of :mod:`repro.core.weak`) and a state accepts when its
    tau-closure meets the accepting set, so no epsilon moves remain.  The
    language is exactly that of :func:`language_nfa`; subset constructions on
    this view skip all epsilon-closure bookkeeping.

    Pass an existing ``view`` to share one interned kernel across many
    automata over the same process (the ``approx_k`` machinery builds one NFA
    per state/block pair and reuses the cached weak arc set every time).

    Raises
    ------
    InvalidProcessError
        If the alphabet contains the :data:`~repro.core.fsp.EPSILON` marker:
        the weak language view is defined over observable actions, and on an
        already-saturated process the kernel's reserved reading of EPSILON
        (``=>^epsilon``, i.e. the tau-closure) and its reading as an ordinary
        letter would silently disagree.  This mirrors the collision check of
        ``saturate`` that guarded the pre-kernel ``approx_k`` route.
    """
    if EPSILON in fsp.alphabet:
        raise InvalidProcessError(
            f"the weak language view is undefined over the reserved marker {EPSILON!r}; "
            "pass the unsaturated process instead"
        )
    view = view if view is not None else WeakTransitionView(fsp)
    kernel = view.kernel
    root = fsp.start if start is None else start
    accept_base = frozenset(accepting) if accepting is not None else fsp.accepting_states()
    accept_bits = 0
    for state in accept_base:
        accept_bits |= 1 << kernel.state_index(state)
    names = kernel.lts.state_names
    lifted = frozenset(name for i, name in enumerate(names) if kernel.closure_bits(i) & accept_bits)
    return NFA(
        states=fsp.states,
        start=root,
        alphabet=fsp.alphabet,
        transitions=kernel.weak_arc_triples(),
        accepting=lifted,
    )


def language_dfa(fsp: FSP, start: str | None = None, max_states: int | None = None) -> DFA:
    """The minimal DFA for ``L(start)`` (subset construction + Hopcroft)."""
    return hopcroft_minimize(determinize(language_nfa(fsp, start), max_states=max_states))


def language_equivalent(fsp: FSP, first: str, second: str, max_states: int | None = None) -> bool:
    """Decide ``L(first) = L(second)`` for two states of the same FSP.

    On the restricted model this is exactly ``approx_1`` (Proposition
    2.2.3(b)); the decision determinises both automata and is exponential in
    the worst case, matching the PSPACE-completeness of the problem.
    """
    left = language_nfa(fsp, first)
    right = language_nfa(fsp, second)
    return nfa_equivalent(left, right, max_states=max_states)


def language_equivalent_processes(first: FSP, second: FSP, max_states: int | None = None) -> bool:
    """Decide ``L(p0) = L(q0)`` for the start states of two FSPs.

    A thin shim over the engine facade (:mod:`repro.engine`): with the
    default unbounded search, each process's minimal DFA is computed once and
    cached, so repeated checks against the same process skip the subset
    construction; a ``max_states`` bound runs the classic NFA product search.
    """
    from repro.engine import default_engine

    return default_engine().check(
        first, second, "language", witness=False, max_states=max_states
    ).equivalent


def language_distinguishing_word(
    fsp: FSP, first: str, second: str, max_states: int | None = None
) -> tuple[str, ...] | None:
    """A word in exactly one of ``L(first)``, ``L(second)``, or None when equal."""
    return nfa_distinguishing_word(
        language_nfa(fsp, first), language_nfa(fsp, second), max_states=max_states
    )


def language_included(fsp: FSP, first: str, second: str, max_states: int | None = None) -> bool:
    """Decide ``L(first)`` is a subset of ``L(second)``."""
    return nfa_included(language_nfa(fsp, first), language_nfa(fsp, second), max_states=max_states)


def is_universal(fsp: FSP, start: str | None = None, max_states: int | None = None) -> bool:
    """Decide ``L(start) = Sigma*`` -- the problem the hardness reductions start from."""
    return nfa_universal(language_nfa(fsp, start), max_states=max_states)


def universality_counterexample(
    fsp: FSP, start: str | None = None, max_states: int | None = None
) -> tuple[str, ...] | None:
    """A shortest observable string not in ``L(start)``, or None when universal."""
    return nfa_universality_counterexample(language_nfa(fsp, start), max_states=max_states)


def accepted_strings_upto(
    fsp: FSP, length: int, start: str | None = None
) -> frozenset[tuple[str, ...]]:
    """All accepted observable strings up to the given length (exhaustive; for tests)."""
    return language_nfa(fsp, start).language_upto(length)


def traces_upto(fsp: FSP, length: int, start: str | None = None) -> frozenset[tuple[str, ...]]:
    """All observable traces (strings with *some* derivative) up to ``length``.

    For restricted processes traces and accepted strings coincide because
    every state is accepting; for standard processes they differ and give the
    classical trace preorder used in the discussion of Section 2.2.
    """
    nfa = language_nfa(fsp, start, accepting=fsp.states)
    return nfa.language_upto(length)
