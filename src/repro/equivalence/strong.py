"""Strong (observational) equivalence -- Section 3 / Theorem 3.1.

Strong equivalence ``~`` is observational equivalence for observable (tau-free)
FSPs; Milner characterises it as the largest strong bisimulation.  Lemma 3.1
reduces deciding it to the generalized partitioning problem: states are the
elements, the initial partition groups states with equal extension sets, and
there is one function per action mapping a state to its successor set.  The
coarsest stable refinement is exactly the partition induced by ``~``.

The functions below expose the partition, the pairwise decision, a quotient
(minimisation) and a counterexample explanation via distinguishing
Hennessy-Milner formulas (delegated to :mod:`repro.equivalence.hml`).

Processes containing tau-transitions are accepted as well: tau is then treated
as an ordinary action label, which yields the notion modern tools call strong
bisimilarity.  Callers that want the paper's precondition enforced can pass
``require_observable=True``.

The reduction interns the process straight into the integer-indexed
:class:`~repro.core.lts.LTS` kernel (states and actions as dense ints,
transitions as CSR arrays), so every partition query below runs at kernel
speed regardless of the solver chosen.
"""

from __future__ import annotations

from repro.core.classify import ModelClass, require
from repro.core.fsp import FSP
from repro.partition.generalized import GeneralizedPartitioningInstance, Solver, solve
from repro.partition.partition import Partition


def strong_bisimulation_partition(
    fsp: FSP,
    method: Solver | str = Solver.PAIGE_TARJAN,
    require_observable: bool = False,
    backend: str = "python",
) -> Partition:
    """The partition of the state set into strong-equivalence classes.

    Parameters
    ----------
    fsp:
        The process whose states are to be partitioned.
    method:
        Which generalized-partitioning solver to use (they agree on the
        result; see Section 3).
    require_observable:
        Enforce the paper's precondition that the process has no
        tau-transitions.  When False (the default) tau is treated as an
        ordinary action.
    backend:
        ``"python"`` for the sequential worklist solvers (the oracles) or
        ``"vector"`` for the numpy whole-array kernel
        (:mod:`repro.partition.vectorized`); both compute the same partition.
    """
    if require_observable:
        require(fsp, ModelClass.OBSERVABLE, context="strong equivalence")
    instance = GeneralizedPartitioningInstance.from_fsp(fsp, include_tau=True)
    return solve(instance, method=method, backend=backend)


def strongly_equivalent(
    fsp: FSP,
    first: str,
    second: str,
    method: Solver | str = Solver.PAIGE_TARJAN,
    require_observable: bool = False,
    backend: str = "python",
) -> bool:
    """Decide ``first ~ second`` for two states of the same FSP."""
    partition = strong_bisimulation_partition(
        fsp, method=method, require_observable=require_observable, backend=backend
    )
    return partition.same_block(first, second)


def strongly_equivalent_processes(
    first: FSP,
    second: FSP,
    method: Solver | str = Solver.PAIGE_TARJAN,
    require_observable: bool = False,
) -> bool:
    """Decide strong equivalence of the start states of two FSPs.

    The two processes must share ``Sigma`` and ``V`` (use
    :meth:`~repro.core.fsp.FSP.with_alphabet` to align them).  This is a thin
    shim over the engine facade (:mod:`repro.engine`): repeated calls against
    the same processes reuse the cached kernels, quotients and verdicts; use
    :meth:`repro.engine.Engine.check` directly for stats and witnesses.
    """
    from repro.engine import default_engine

    return default_engine().check(
        first,
        second,
        "strong",
        witness=False,
        method=method,
        require_observable=require_observable,
    ).equivalent


def strong_equivalence_classes(
    fsp: FSP, method: Solver | str = Solver.PAIGE_TARJAN, backend: str = "python"
) -> frozenset[frozenset[str]]:
    """The set of strong-equivalence classes of the process's states."""
    return strong_bisimulation_partition(fsp, method=method, backend=backend).as_frozen()
