"""Explicit bisimulation relations and fixed-point checks.

Definition 2.2.5 of the paper introduces ``Lambda``-fixed-points: binary
relations ``R`` on states such that related states have equal extensions and
matching ``s``-derivatives for every string ``s`` in ``Lambda``, up to ``R``.
For observable processes a ``Sigma``-fixed-point is Milner's *strong
bisimulation*; strong equivalence is the largest one (Proposition 2.2.2).
Analogously a ``(Sigma u {epsilon})``-fixed-point over the weak transition
relation is a *weak bisimulation* and observational equivalence is the largest
one.

This module lets callers work with explicit relations: check whether a given
set of pairs is a (strong or weak) bisimulation, close a relation under
symmetry/reflexivity, extract the relation induced by a partition, and verify
the fixed-point properties that Proposition 2.2.1 asserts.  The checkers are
deliberately straightforward (they follow the definitions) because their main
job is to certify the answers of the optimised partition-refinement
algorithms in the test suite.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.derivatives import WeakTransitionView
from repro.core.fsp import EPSILON, FSP, TAU
from repro.partition.partition import Partition

Pair = tuple[str, str]


def symmetric_closure(pairs: Iterable[Pair]) -> frozenset[Pair]:
    """The symmetric closure of a set of state pairs."""
    out = set()
    for first, second in pairs:
        out.add((first, second))
        out.add((second, first))
    return frozenset(out)


def reflexive_closure(pairs: Iterable[Pair], states: Iterable[str]) -> frozenset[Pair]:
    """Add the identity pairs over ``states``."""
    return frozenset(pairs) | {(state, state) for state in states}


def relation_from_partition(partition: Partition) -> frozenset[Pair]:
    """The equivalence relation (as a set of pairs) induced by a partition."""
    pairs: set[Pair] = set()
    for block in partition:
        for first in block:
            for second in block:
                pairs.add((first, second))
    return frozenset(pairs)


def partition_from_relation(states: Iterable[str], pairs: Iterable[Pair]) -> Partition:
    """The partition induced by an equivalence relation given as pairs.

    The relation is closed reflexively and symmetrically first; transitivity
    is obtained by union-find-style merging.
    """
    states = list(states)
    parent = {state: state for state in states}

    def find(state: str) -> str:
        while parent[state] != state:
            parent[state] = parent[parent[state]]
            state = parent[state]
        return state

    for first, second in pairs:
        if first in parent and second in parent:
            parent[find(first)] = find(second)
    groups: dict[str, set[str]] = {}
    for state in states:
        groups.setdefault(find(state), set()).add(state)
    return Partition(groups.values())


def is_strong_bisimulation(fsp: FSP, pairs: Iterable[Pair], tau_as_action: bool = True) -> bool:
    """Whether ``pairs`` (symmetrically closed) is a strong bisimulation on ``fsp``.

    The transfer condition follows Definition 2.2.5 with ``Lambda = Sigma``
    (plus tau as a label when ``tau_as_action``): related states must have
    equal extensions, and every single-action move of one must be matched by
    an equally-labelled move of the other into a related state.
    """
    relation = symmetric_closure(pairs)
    related: dict[str, set[str]] = {}
    for first, second in relation:
        related.setdefault(first, set()).add(second)
    actions = set(fsp.alphabet)
    if tau_as_action:
        actions.add(TAU)
    for first, second in relation:
        if fsp.extension(first) != fsp.extension(second):
            return False
        for action in actions:
            for target in fsp.successors(first, action):
                matches = fsp.successors(second, action)
                if not any(candidate in related.get(target, set()) for candidate in matches):
                    return False
    return True


def is_weak_bisimulation(fsp: FSP, pairs: Iterable[Pair]) -> bool:
    """Whether ``pairs`` is a weak bisimulation (a ``(Sigma u {eps})``-fixed-point).

    This is the fixed-point notion of Proposition 2.2.2: related states have
    equal extensions, and every weak move ``p =>^a p'`` (for ``a`` in
    ``Sigma u {epsilon}``) is matched by a weak move of the partner into a
    related state.
    """
    relation = symmetric_closure(pairs)
    related: dict[str, set[str]] = {}
    for first, second in relation:
        related.setdefault(first, set()).add(second)
    view = WeakTransitionView(fsp)
    actions = list(fsp.alphabet) + [EPSILON]
    for first, second in relation:
        if fsp.extension(first) != fsp.extension(second):
            return False
        for action in actions:
            for target in view.weak_successors(first, action):
                matches = view.weak_successors(second, action)
                if not any(candidate in related.get(target, set()) for candidate in matches):
                    return False
    return True


def largest_strong_bisimulation(fsp: FSP) -> frozenset[Pair]:
    """The largest strong bisimulation on the states of ``fsp`` as a pair set.

    Computed from the strong-equivalence partition; by Proposition 2.2.2 this
    relation is itself a bisimulation and contains every other one.
    """
    from repro.equivalence.strong import strong_bisimulation_partition

    return relation_from_partition(strong_bisimulation_partition(fsp))


def largest_weak_bisimulation(fsp: FSP) -> frozenset[Pair]:
    """The largest weak bisimulation (observational equivalence) as a pair set."""
    from repro.equivalence.observational import observational_partition

    return relation_from_partition(observational_partition(fsp))
