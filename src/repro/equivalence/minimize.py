"""Quotient (minimisation) of processes by equivalence partitions.

Partition refinement does not only answer yes/no equivalence questions; the
computed coarsest partition immediately yields the *minimal* process obtained
by collapsing each equivalence class to a single state.  This is the
behaviour-preserving state minimisation that makes the partition-refinement
approach the workhorse of practical verification tools, and it is what the
``minimization_pipeline`` example demonstrates.

Two quotients are provided:

* :func:`minimize_strong` collapses strong-equivalence classes; the result is
  strongly equivalent to the input (state by state).
* :func:`minimize_observational` collapses observational-equivalence classes;
  the result is observationally equivalent to the input.  The quotient keeps
  the original (strong) transitions between class representatives, which is
  sound because observational equivalence is coarser than strong equivalence.

Both partitions are computed on the integer-indexed LTS kernel: strong
equivalence via the Lemma 3.1 reduction in
:mod:`repro.partition.generalized`, observational equivalence via the
weak-transition engine (``FSP -> LTS -> saturated LTS ->
RefinablePartition``, :func:`repro.core.weak.saturate_lts`).  Only the final
quotient construction works on the string-named FSP view.
"""

from __future__ import annotations

from repro.core.fsp import FSP
from repro.equivalence.observational import observational_partition
from repro.equivalence.strong import strong_bisimulation_partition
from repro.partition.generalized import Solver
from repro.partition.partition import Partition


def quotient(fsp: FSP, partition: Partition, drop_unreachable: bool = True) -> FSP:
    """Collapse a process along an equivalence partition of its states.

    Each block becomes a single state named after its lexicographically
    smallest member (wrapped in brackets); a transition ``[p] --a--> [q]``
    exists when some member of ``[p]`` has an ``a``-transition to some member
    of ``[q]``.  Extensions are taken from the representative (all members of
    a block produced by the library's equivalences share their extension set).
    """
    representative: dict[str, str] = {}
    for block in partition:
        name = f"[{min(block)}]"
        for state in block:
            representative[state] = name

    transitions = {
        (representative[src], action, representative[dst])
        for src, action, dst in fsp.transitions
    }
    extensions = {(representative[state], var) for state, var in fsp.extensions}
    quotiented = FSP(
        states=set(representative.values()),
        start=representative[fsp.start],
        alphabet=fsp.alphabet,
        transitions=transitions,
        variables=fsp.variables,
        extensions=extensions,
    )
    return quotiented.restrict_to_reachable() if drop_unreachable else quotiented


def minimize_strong(
    fsp: FSP, method: Solver | str = Solver.PAIGE_TARJAN, backend: str = "python"
) -> FSP:
    """The quotient of a process by strong equivalence.

    ``backend`` selects the partition engine: the sequential Python worklist
    solvers, or (``"vector"``) the vectorized numpy kernel.
    """
    return quotient(
        fsp, strong_bisimulation_partition(fsp, method=method, backend=backend)
    )


def minimize_observational(
    fsp: FSP, method: Solver | str = Solver.PAIGE_TARJAN, backend: str = "python"
) -> FSP:
    """The quotient of a process by observational equivalence.

    With ``backend="vector"`` both the tau-closure saturation and the
    refinement run on the numpy kernel (see
    :func:`repro.equivalence.observational.observational_partition`).
    """
    return quotient(fsp, observational_partition(fsp, method=method, backend=backend))


def reduction_ratio(original: FSP, minimized: FSP) -> float:
    """State-count reduction achieved by a quotient, as a fraction in [0, 1]."""
    if original.num_states == 0:  # pragma: no cover - FSPs are never empty
        return 0.0
    return 1.0 - (minimized.num_states / original.num_states)
