"""Simulation preorders and similarity -- the one-sided cousins of bisimulation.

The paper's equivalences are all symmetric; the wider equivalence spectrum
that grew out of it (and that modern toolsets expose next to bisimilarity)
also contains the *simulation preorder*: ``p`` is simulated by ``q`` when every
move of ``p`` can be matched by ``q`` -- but not necessarily vice versa.
Mutual similarity is strictly coarser than bisimilarity (the classic witness
being the committed versus uncommitted choice), which makes it a useful
diagnostic between language equivalence and bisimilarity.

The module implements the strong and weak (tau-absorbing) simulation
preorders by greatest-fixed-point iteration over state pairs, plus
``similar``/``similar_processes`` for mutual similarity.  The implementation
is quadratic in the number of state pairs per iteration, which is perfectly
adequate at the process sizes this library targets; it intentionally mirrors
the fixed-point definitions rather than reusing partition refinement (which
cannot express preorders).
"""

from __future__ import annotations

from repro.core.classify import require_same_signature
from repro.core.derivatives import WeakTransitionView
from repro.core.fsp import EPSILON, FSP, TAU

Pair = tuple[str, str]


def _strong_moves(fsp: FSP, state: str) -> list[tuple[str, frozenset[str]]]:
    actions = set(fsp.enabled_actions(state))
    return [(action, fsp.successors(state, action)) for action in actions]


def simulation_preorder(fsp: FSP, weak: bool = False) -> frozenset[Pair]:
    """The largest (strong or weak) simulation relation on the states of ``fsp``.

    A pair ``(p, q)`` belongs to the result when ``q`` simulates ``p``:
    ``E(p) == E(q)`` and every (weak, if ``weak=True``) move of ``p`` is
    matched by an equally-labelled (weak) move of ``q`` into a pair that again
    belongs to the relation.  Extensions are compared for equality, matching
    the paper's convention that behavioural comparisons respect extensions.
    """
    view = WeakTransitionView(fsp) if weak else None

    def moves(state: str) -> list[tuple[str, frozenset[str]]]:
        if not weak:
            return _strong_moves(fsp, state)
        assert view is not None
        result = [(EPSILON, view.epsilon_closure(state))]
        for action in fsp.alphabet:
            successors = view.weak_successors(state, action)
            if successors:
                result.append((action, successors))
        return result

    def matches(state: str, action: str) -> frozenset[str]:
        if not weak:
            return fsp.successors(state, action)
        assert view is not None
        return (
            view.epsilon_closure(state)
            if action == EPSILON
            else view.weak_successors(state, action)
        )

    relation: set[Pair] = {
        (p, q)
        for p in fsp.states
        for q in fsp.states
        if fsp.extension(p) == fsp.extension(q)
    }
    changed = True
    while changed:
        changed = False
        for p, q in list(relation):
            for action, targets in moves(p):
                q_targets = matches(q, action)
                for target in targets:
                    if not any((target, candidate) in relation for candidate in q_targets):
                        relation.discard((p, q))
                        changed = True
                        break
                if (p, q) not in relation:
                    break
    return frozenset(relation)


def simulates(fsp: FSP, first: str, second: str, weak: bool = False) -> bool:
    """Whether ``first`` simulates ``second`` (every move of ``second`` is matched by ``first``)."""
    return (second, first) in simulation_preorder(fsp, weak=weak)


def similar(fsp: FSP, first: str, second: str, weak: bool = False) -> bool:
    """Mutual similarity of two states (each simulates the other)."""
    relation = simulation_preorder(fsp, weak=weak)
    return (first, second) in relation and (second, first) in relation


def similar_processes(first: FSP, second: FSP, weak: bool = False) -> bool:
    """Mutual similarity of the start states of two processes."""
    require_same_signature(first, second)
    combined = first.disjoint_union(second)
    return similar(combined, "L:" + first.start, "R:" + second.start, weak=weak)


def is_simulation(fsp: FSP, pairs: frozenset[Pair] | set[Pair], weak: bool = False) -> bool:
    """Whether an explicit relation is a (strong or weak) simulation on ``fsp``.

    Unlike :func:`simulation_preorder` this checks a caller-supplied relation,
    which is how the test suite certifies the computed preorder.
    """
    relation = set(pairs)
    view = WeakTransitionView(fsp) if weak else None
    actions = list(fsp.alphabet) + ([EPSILON] if weak else ([TAU] if fsp.has_tau() else []))

    def successors(state: str, action: str) -> frozenset[str]:
        if not weak:
            return fsp.successors(state, action)
        assert view is not None
        return (
            view.epsilon_closure(state)
            if action == EPSILON
            else view.weak_successors(state, action)
        )

    for p, q in relation:
        if fsp.extension(p) != fsp.extension(q):
            return False
        for action in actions:
            q_targets = successors(q, action)
            for target in successors(p, action):
                if not any((target, candidate) in relation for candidate in q_targets):
                    return False
    return True
