"""Failure semantics and failure equivalence -- Section 5 / Theorem 5.1.

For a state ``p`` of a restricted FSP the paper (following Brookes, Hoare &
Roscoe) defines

    ``failures(p) = {(s, Z) | s in Sigma*, Z subset of Sigma,
                      exists p' with p =>^s p' and no z in Z with p' =>^z}``

and calls two states *failure equivalent* when their failure sets coincide.
Theorem 5.1 shows the decision problem is PSPACE-complete already for
restricted observable processes over two actions (and co-NP-complete in the
r.o.u. model), so any exact algorithm is expected to be exponential in the
worst case.  The checker below walks the synchronised subset construction of
the two weak-transition automata and compares, at every reachable pair of
macro-states, the canonical *refusal information* (the maximal refusal sets);
its worst case is exponential, but on tree-like and deterministic processes it
is polynomial, which covers the tractable special cases the paper mentions
(finite trees, Smolka 1984).

The module also exposes bounded enumeration of failure pairs (for display and
exhaustive testing) and a purpose-built polynomial fast path for finite trees.

All weak-transition queries (tau-closures, weak successor sets, weak
initials) go through :class:`~repro.core.derivatives.WeakTransitionView`,
which since the weak-transition engine landed answers from the tau-SCC +
bitset kernel of :mod:`repro.core.weak` rather than per-state BFS dicts.
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Iterable

from repro.core.classify import ModelClass, require, require_same_signature
from repro.core.derivatives import WeakTransitionView
from repro.core.errors import StateSpaceLimitError
from repro.core.fsp import FSP

FailurePair = tuple[tuple[str, ...], frozenset[str]]


# ----------------------------------------------------------------------
# refusal bookkeeping
# ----------------------------------------------------------------------
def refusal_sets(
    fsp: FSP, state: str, view: WeakTransitionView | None = None
) -> frozenset[frozenset[str]]:
    """All refusal sets of a single state: subsets of ``Sigma`` it cannot weakly perform."""
    view = view if view is not None else WeakTransitionView(fsp)
    refusable = fsp.alphabet - view.weak_initials(state)
    return frozenset(
        frozenset(combo)
        for size in range(len(refusable) + 1)
        for combo in itertools.combinations(sorted(refusable), size)
    )


def maximal_refusals(
    fsp: FSP, states: Iterable[str], view: WeakTransitionView | None = None
) -> frozenset[frozenset[str]]:
    """The maximal refusal sets offered by a set of ``s``-derivatives.

    For a macro-state ``M`` (the set of ``s``-derivatives of some state) the
    failure pairs with first component ``s`` are exactly the pairs ``(s, Z)``
    with ``Z`` included in ``Sigma \\ weak_initials(p')`` for some ``p'`` in
    ``M``.  Two macro-states contribute the same failure pairs iff their sets
    of *maximal* refusals coincide, which is the canonical form compared by
    the equivalence checker.
    """
    view = view if view is not None else WeakTransitionView(fsp)
    candidates = {fsp.alphabet - view.weak_initials(state) for state in states}
    maximal = {
        refusal
        for refusal in candidates
        if not any(refusal < other for other in candidates)
    }
    return frozenset(maximal)


# ----------------------------------------------------------------------
# bounded enumeration (used by tests and the examples)
# ----------------------------------------------------------------------
def failures_upto(fsp: FSP, state: str, max_length: int) -> frozenset[FailurePair]:
    """All failure pairs ``(s, Z)`` with ``|s| <= max_length``.

    Exponential in ``max_length`` and in ``|Sigma|`` (every subset of a
    refusable set is enumerated); intended for small processes and exhaustive
    cross-checks such as the Section 2.1 finite-tree example.
    """
    require(fsp, ModelClass.RESTRICTED, context="failures are defined on the restricted model")
    view = WeakTransitionView(fsp)
    result: set[FailurePair] = set()
    frontier: deque[tuple[tuple[str, ...], frozenset[str]]] = deque(
        [((), view.epsilon_closure(state))]
    )
    seen: set[tuple[tuple[str, ...], frozenset[str]]] = set()
    while frontier:
        string, macro = frontier.popleft()
        if not macro:
            continue
        for derivative in macro:
            refusable = fsp.alphabet - view.weak_initials(derivative)
            for size in range(len(refusable) + 1):
                for combo in itertools.combinations(sorted(refusable), size):
                    result.add((string, frozenset(combo)))
        if len(string) >= max_length:
            continue
        for action in sorted(fsp.alphabet):
            nxt = view.weak_successors_of_set(macro, action)
            key = (string + (action,), nxt)
            if nxt and key not in seen:
                seen.add(key)
                frontier.append(key)
    return frozenset(result)


# ----------------------------------------------------------------------
# the equivalence decision
# ----------------------------------------------------------------------
def failure_equivalent(
    fsp: FSP,
    first: str,
    second: str,
    max_macro_states: int | None = None,
) -> bool:
    """Decide failure equivalence of two states of the same restricted FSP."""
    return failure_distinguishing_string(fsp, first, second, max_macro_states) is None


def failure_distinguishing_string(
    fsp: FSP,
    first: str,
    second: str,
    max_macro_states: int | None = None,
) -> tuple[str, ...] | None:
    """A string ``s`` witnessing a failure difference, or None when equivalent.

    The witness is a string for which the two states offer different refusal
    information (including the case where only one of them has an
    ``s``-derivative at all).  The search explores the synchronised subset
    construction breadth-first, so the witness returned is one of minimal
    length.

    Raises
    ------
    StateSpaceLimitError
        If more than ``max_macro_states`` pairs of macro-states are explored.
    """
    require(fsp, ModelClass.RESTRICTED, context="failure equivalence")
    view = WeakTransitionView(fsp)
    start = (view.epsilon_closure(first), view.epsilon_closure(second))
    queue: deque[tuple[frozenset[str], frozenset[str], tuple[str, ...]]] = deque(
        [(start[0], start[1], ())]
    )
    seen = {start}
    while queue:
        left, right, string = queue.popleft()
        if bool(left) != bool(right):
            # One state has an s-derivative (hence at least the failure (s, {}))
            # and the other has none.
            return string
        if not left:
            continue
        if maximal_refusals(fsp, left, view) != maximal_refusals(fsp, right, view):
            return string
        for action in sorted(fsp.alphabet):
            next_left = view.weak_successors_of_set(left, action)
            next_right = view.weak_successors_of_set(right, action)
            if not next_left and not next_right:
                continue
            key = (next_left, next_right)
            if key not in seen:
                seen.add(key)
                if max_macro_states is not None and len(seen) > max_macro_states:
                    raise StateSpaceLimitError(
                        f"failure-equivalence search exceeded {max_macro_states} macro-state pairs"
                    )
                queue.append((next_left, next_right, string + (action,)))
    return None


def failure_equivalent_processes(
    first: FSP, second: FSP, max_macro_states: int | None = None
) -> bool:
    """Decide failure equivalence of the start states of two restricted FSPs.

    A thin shim over the engine facade (:mod:`repro.engine`): with the
    default unbounded search, the subset construction runs on the cached
    observational quotients (observational equivalence refines failure
    equivalence, so the quotients have the same failure sets); a
    ``max_macro_states`` bound runs on the original state spaces so the
    bound keeps its meaning.
    """
    from repro.engine import default_engine

    return default_engine().check(
        first, second, "failure", witness=False, max_macro_states=max_macro_states
    ).equivalent


# ----------------------------------------------------------------------
# the finite-tree fast path (Smolka 1984)
# ----------------------------------------------------------------------
def tree_failure_signature(
    fsp: FSP, state: str | None = None
) -> frozenset[tuple[tuple[str, ...], frozenset[str]]]:
    """Canonical failure signature of a finite-tree process.

    For finite trees the set of strings with a derivative is finite (at most
    one string per node), so the whole failure set has a finite canonical
    representation: the set of pairs ``(s, R)`` with ``R`` a *maximal* refusal
    at some ``s``-derivative.  Two finite-tree states are failure equivalent
    iff their signatures are equal; computing the signature is polynomial in
    the size of the tree, which is the tractable case identified by
    Smolka (1984).
    """
    require(fsp, ModelClass.FINITE_TREE, context="tree failure signature")
    view = WeakTransitionView(fsp)
    root = fsp.start if state is None else state
    signature: set[tuple[tuple[str, ...], frozenset[str]]] = set()
    frontier: deque[tuple[tuple[str, ...], frozenset[str]]] = deque(
        [((), view.epsilon_closure(root))]
    )
    while frontier:
        string, macro = frontier.popleft()
        if not macro:
            continue
        for refusal in maximal_refusals(fsp, macro, view):
            signature.add((string, refusal))
        for action in sorted(fsp.alphabet):
            nxt = view.weak_successors_of_set(macro, action)
            if nxt:
                frontier.append((string + (action,), nxt))
    return frozenset(signature)


def tree_failure_equivalent(first: FSP, second: FSP) -> bool:
    """Failure equivalence of two finite-tree processes via canonical signatures."""
    require_same_signature(first, second)
    return tree_failure_signature(first) == tree_failure_signature(second)
