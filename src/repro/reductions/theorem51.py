"""The reductions of Theorem 5.1: hardness of failure equivalence.

Theorem 5.1 shows that failure equivalence of restricted processes is
PSPACE-complete (already for the restricted observable model over two
actions) and co-NP-complete for the r.o.u. model.  Both hardness proofs are
constructive transformations, implemented here:

* :func:`theorem51_transform` -- the main reduction.  Given a restricted
  observable process ``p``, add a fresh state ``p_dead`` (no outgoing
  transitions) reachable from **every** state by **every** action, keeping all
  states accepting.  For the transformed processes
  ``L(p) = L(q)  iff  p' failure-equivalent q'``; this transfers the
  PSPACE-hardness of restricted-observable language equivalence (Lemma 4.2) to
  failure equivalence.

* :func:`rou_transform` -- the unary variant.  Starting from an s.o.u. process
  whose accept states are exactly its dead states, add to the start state an
  ``a``-transition to a fresh state with an ``a``-self-loop and make every
  state accepting; then ``L(p) = L(q)  iff  p' failure-equivalent q'``, giving
  co-NP-hardness in the r.o.u. model.
"""

from __future__ import annotations

from repro.core.classify import ModelClass, require
from repro.core.errors import ModelClassError
from repro.core.fsp import ACCEPT, FSP

#: Name of the dead sink added by the main reduction.
DEAD_STATE = "p_dead"
#: Name of the looping state added by the r.o.u. reduction.
LOOP_STATE = "p_loop"


def theorem51_transform(fsp: FSP) -> FSP:
    """The ``p -> p'`` construction of Theorem 5.1.

    * a fresh state ``p_dead`` with no outgoing transitions is added;
    * every original state gets a transition to ``p_dead`` for **every**
      action of the alphabet;
    * all states (including ``p_dead``) are accepting.

    The construction makes every refusal set available after every trace, so
    the only failure information left is the trace language itself (plus its
    one-step extensions into ``p_dead``); hence
    ``L(p) = L(q)  iff  p' = q'`` (failure equivalence).
    """
    require(fsp, ModelClass.RESTRICTED_OBSERVABLE, context="Theorem 5.1 reduction")
    dead = DEAD_STATE
    while dead in fsp.states:
        dead += "'"
    states = set(fsp.states) | {dead}
    transitions = set(fsp.transitions)
    for state in fsp.states:
        for action in fsp.alphabet:
            transitions.add((state, action, dead))
    return FSP(
        states=states,
        start=fsp.start,
        alphabet=fsp.alphabet,
        transitions=transitions,
        variables=[ACCEPT],
        extensions=[(state, ACCEPT) for state in states],
    )


def rou_transform(fsp: FSP) -> FSP:
    """The unary ``p -> p'`` construction used for the co-NP-hardness part.

    Expects a standard observable unary process whose accept states are
    exactly its dead states (obtainable with
    :func:`repro.reductions.theorem41c.accepting_to_dead`).  Adds to the start
    state an ``a``-transition to a fresh state carrying an ``a``-self-loop and
    marks every state accepting.  The failures of the result are
    ``{(s, {}) | s in a*} u {(s, {a}) | s in L(p)}``, so two transformed
    processes are failure equivalent iff the original languages coincide.
    """
    if fsp.alphabet != frozenset({"a"}):
        raise ModelClassError("the r.o.u. reduction is defined over the single action 'a'")
    require(fsp, ModelClass.STANDARD_OBSERVABLE, context="Theorem 5.1 r.o.u. reduction")
    for state in fsp.states:
        is_dead = not fsp.enabled_actions(state)
        if fsp.is_accepting(state) != is_dead:
            raise ModelClassError(
                "the r.o.u. reduction expects accept states to coincide with dead states; "
                "apply repro.reductions.theorem41c.accepting_to_dead first"
            )
    loop = LOOP_STATE
    while loop in fsp.states:
        loop += "'"
    states = set(fsp.states) | {loop}
    transitions = set(fsp.transitions) | {(fsp.start, "a", loop), (loop, "a", loop)}
    return FSP(
        states=states,
        start=fsp.start,
        alphabet={"a"},
        transitions=transitions,
        variables=[ACCEPT],
        extensions=[(state, ACCEPT) for state in states],
    )
