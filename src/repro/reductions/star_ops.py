"""Star-expression style operations lifted to whole processes.

Section 4 freely uses star-expression notation for restricted observable
processes: ``p u q`` is the process whose start state copies the initial moves
of ``p`` and ``q``, and ``a . p`` prefixes ``p`` with a single ``a``-move
(Definition 2.3.1 applied with arbitrary processes in place of representative
FSPs).  The reductions of Theorems 4.1(b), 4.1(c) and Lemma 4.1 are phrased in
exactly this notation, so the library provides the two constructions as
process-level combinators.

Both constructions keep the operands' states (renamed apart) and add fresh
states only for the new roots, so the size grows by O(1) states and by the
out-degree of the operand roots -- the property the inductive hardness
reduction of Theorem 4.1(b) relies on to stay polynomial.
"""

from __future__ import annotations

from repro.core.classify import require_same_signature
from repro.core.fsp import ACCEPT, FSP


def fsp_union(first: FSP, second: FSP, start_name: str = "u") -> FSP:
    """The process ``first u second`` of Definition 2.3.1.

    A fresh start state receives a copy of every outgoing transition of both
    operands' start states and the union of their extensions; the operands are
    kept (renamed with ``L:`` / ``R:`` prefixes) so their own states remain
    addressable.
    """
    require_same_signature(first, second)
    left = first.rename_states(prefix="L:")
    right = second.rename_states(prefix="R:")
    states = set(left.states) | set(right.states) | {start_name}
    transitions = set(left.transitions) | set(right.transitions)
    for action, target in left.transitions_from(left.start):
        transitions.add((start_name, action, target))
    for action, target in right.transitions_from(right.start):
        transitions.add((start_name, action, target))
    extensions = set(left.extensions) | set(right.extensions)
    for variable in left.extension(left.start) | right.extension(right.start):
        extensions.add((start_name, variable))
    return FSP(
        states=states,
        start=start_name,
        alphabet=first.alphabet | second.alphabet,
        transitions=transitions,
        variables=first.variables | second.variables,
        extensions=extensions,
    )


def fsp_prefix(
    action: str, process: FSP, start_name: str = "pfx", accepting_start: bool = True
) -> FSP:
    """The process ``action . process``: one fresh start with a single move into the operand.

    In the restricted model (the setting of the Section 4 reductions) every
    state is accepting, so the fresh start is marked accepting by default;
    pass ``accepting_start=False`` for the standard-model reading in which the
    prefix state accepts nothing.
    """
    inner = process.rename_states(prefix="P:")
    states = set(inner.states) | {start_name}
    transitions = set(inner.transitions) | {(start_name, action, inner.start)}
    extensions = set(inner.extensions)
    if accepting_start:
        extensions.add((start_name, ACCEPT))
    return FSP(
        states=states,
        start=start_name,
        alphabet=process.alphabet | {action},
        transitions=transitions,
        variables=process.variables | {ACCEPT},
        extensions=extensions,
    )
