"""Universality and the trivial NFA (Fig. 5d, closing remark of Section 4).

The classical universality problem ``L(p) = Sigma*`` can be phrased in the
paper's vocabulary as ``p approx_1 q*`` where ``q*`` is the trivial NFA of
Fig. 5d (one accepting state with a self-loop per action); this phrasing is
PSPACE-complete.  The paper closes Section 4 by observing that, in contrast,
``p approx_2 q*`` is easy: it holds iff every state reachable from ``p`` has
an outgoing (weak) transition for every symbol of ``Sigma``.  Intuitively,
level 2 already sees the branching structure, and the only way to match the
trivial NFA's single always-able state is to never reach a state that refuses
anything.

This module implements both sides of that contrast for restricted processes:
the (expensive) ``approx_1`` comparison against ``q*`` and the (linear-time)
structural characterisation of ``approx_2 q*``, which the tests cross-check
against the generic decision procedure (experiment E11).
"""

from __future__ import annotations

from repro.core.classify import ModelClass, require
from repro.core.derivatives import WeakTransitionView
from repro.core.fsp import FSP, TAU
from repro.core.paper_figures import trivial_nfa
from repro.equivalence.kobs import k_observational_equivalent_processes
from repro.equivalence.language import is_universal


def approx1_equals_trivial(fsp: FSP, max_states: int | None = None) -> bool:
    """Decide ``p0 approx_1 q*`` -- i.e. universality -- by language comparison.

    This is the PSPACE-complete side of the contrast; the decision
    determinises the process.
    """
    require(fsp, ModelClass.RESTRICTED, context="comparison against the trivial NFA")
    return is_universal(fsp, max_states=max_states)


def approx2_equals_trivial_characterisation(fsp: FSP) -> bool:
    """The linear-time characterisation of ``p0 approx_2 q*``.

    Every state weakly reachable from the start must be able to (weakly)
    perform every action of ``Sigma``.  Stated for restricted processes, where
    extensions cannot interfere with the comparison.
    """
    require(fsp, ModelClass.RESTRICTED, context="approx_2 comparison against the trivial NFA")
    view = WeakTransitionView(fsp)
    for state in fsp.reachable_states():
        if view.weak_initials(state) != fsp.alphabet:
            return False
    return True


def approx2_equals_trivial_generic(fsp: FSP, max_subset_states: int | None = None) -> bool:
    """Decide ``p0 approx_2 q*`` with the generic ``approx_k`` procedure (for cross-checks)."""
    require(fsp, ModelClass.RESTRICTED, context="approx_2 comparison against the trivial NFA")
    reference = trivial_nfa(fsp.alphabet)
    return k_observational_equivalent_processes(
        fsp, reference.with_alphabet(fsp.alphabet), 2, max_subset_states=max_subset_states
    )


def refusal_witness(fsp: FSP) -> tuple[str, frozenset[str]] | None:
    """A reachable state and the non-empty set of actions it cannot weakly perform.

    Returns None when no such state exists (i.e. when the characterisation of
    ``approx_2 q*`` holds).  Used by examples to explain *why* a process falls
    short of the trivial NFA.
    """
    view = WeakTransitionView(fsp)
    for state in sorted(fsp.reachable_states()):
        missing = fsp.alphabet - view.weak_initials(state)
        if missing:
            return state, frozenset(missing)
    return None


def has_tau_cycle(fsp: FSP) -> bool:
    """Whether the process contains a cycle of tau-transitions.

    Not needed for any equivalence decision; exposed because divergence
    (infinite unobservable chatter) is the classical caveat when interpreting
    observational equivalence, and the examples flag it.
    """
    visiting: set[str] = set()
    finished: set[str] = set()

    def visit(state: str) -> bool:
        visiting.add(state)
        for target in fsp.successors(state, TAU):
            if target in visiting:
                return True
            if target not in finished and visit(target):
                return True
        visiting.discard(state)
        finished.add(state)
        return False

    return any(visit(state) for state in fsp.states if state not in finished)
