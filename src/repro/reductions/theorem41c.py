"""The r.o.u. reduction of Theorem 4.1(c) (Fig. 5b/5c): co-NP-hardness of ``approx_2``.

In the restricted observable unary (r.o.u.) model, ``approx_1`` is decidable
in linear time (prefix-closed unary languages are either ``a*`` or a finite
initial segment), yet ``approx_k`` for ``k >= 2`` is co-NP-complete.  The
hardness proof reduces from the co-NP-complete problem ``L(p) = {a}+`` for
standard observable unary (s.o.u.) processes without dead states:

1. transform ``p`` into ``p'`` such that a state of ``p'`` is accepting iff it
   is dead, preserving the language (Fig. 5c; :func:`accepting_to_dead`);
2. make every state of ``p'`` accepting, obtaining the r.o.u. state ``q``
   (:func:`make_restricted`);
3. then ``L(p) = {a}+``  iff  ``q approx_2 chaos``, where *chaos* is the
   two-state r.o.u. process of Fig. 5b.

The characterisation of ``q approx_2 chaos`` used by the proof -- every
``s``-derivative set (``s`` in ``{a}+``) must contain both a dead state and a
state with language ``a*`` and nothing else at ``s = epsilon`` -- is also
implemented directly (:func:`chaos_characterisation`) so that the tests can
confirm it agrees with the generic ``approx_2`` decision procedure.
"""

from __future__ import annotations

from repro.core.classify import ModelClass, is_sou, require
from repro.core.errors import ModelClassError
from repro.core.fsp import ACCEPT, FSP
from repro.core.paper_figures import chaos
from repro.equivalence.kobs import k_observational_equivalent_processes


def accepting_to_dead(fsp: FSP) -> FSP:
    """The Fig. 5c transformation: accepting states become dead accepting copies.

    Every accept state ``p_f`` that is not dead is demoted to a non-accept
    state, and a fresh state ``p_new`` -- accepting and dead -- receives a
    copy of every transition into ``p_f``.  The language is preserved and in
    the result a state is accepting iff it is dead.  The transformation is
    stated (and used) for standard observable processes.
    """
    require(fsp, ModelClass.STANDARD_OBSERVABLE, context="Fig. 5c transformation")
    states = set(fsp.states)
    transitions = set(fsp.transitions)
    accepting = set(fsp.accepting_states())
    for accept_state in sorted(fsp.accepting_states()):
        if not fsp.enabled_actions(accept_state):
            continue  # already dead: keep as is
        accepting.discard(accept_state)
        new_state = f"{accept_state}_dead"
        while new_state in states:
            new_state += "'"
        states.add(new_state)
        accepting.add(new_state)
        for src, action, dst in fsp.transitions:
            if dst == accept_state:
                transitions.add((src, action, new_state))
    # A start state that was accepting keeps acceptance of the empty string
    # through its dead copy only if something reaches it; the classical
    # construction therefore assumes (as the paper's usage does) that the
    # relevant instances have non-accepting start states or languages within
    # {a}+, which is exactly the L(p) = {a}+ problem reduced from.
    return FSP(
        states=states,
        start=fsp.start,
        alphabet=fsp.alphabet,
        transitions=transitions,
        variables=[ACCEPT],
        extensions=[(state, ACCEPT) for state in accepting],
    )


def make_restricted(fsp: FSP) -> FSP:
    """Mark every state accepting, turning a standard process into a restricted one."""
    return FSP(
        states=fsp.states,
        start=fsp.start,
        alphabet=fsp.alphabet,
        transitions=fsp.transitions,
        variables=fsp.variables | {ACCEPT},
        extensions=set(fsp.extensions) | {(state, ACCEPT) for state in fsp.states},
    )


def theorem41c_transform(fsp: FSP) -> FSP:
    """The full reduction input ``q`` of Theorem 4.1(c) built from an s.o.u. process ``p``.

    Requires an s.o.u. process without dead states (the form the co-NP-hard
    ``L(p) = {a}+`` instances take); returns the r.o.u. process ``q`` such
    that ``L(p) = {a}+  iff  q approx_2 chaos``.
    """
    if not is_sou(fsp):
        raise ModelClassError("Theorem 4.1(c) expects a standard observable unary process")
    if any(not fsp.enabled_actions(state) for state in fsp.states):
        raise ModelClassError(
            "Theorem 4.1(c) expects a process without dead states; "
            "restrict to the live part first"
        )
    return make_restricted(accepting_to_dead(fsp))


def equivalent_to_chaos(fsp: FSP, k: int = 2, max_subset_states: int | None = None) -> bool:
    """Decide ``start(fsp) approx_k chaos`` (the right-hand side of the reduction)."""
    action = next(iter(fsp.alphabet)) if fsp.alphabet else "a"
    if action != "a":
        raise ModelClassError("the chaos gadget is defined over the action 'a'")
    return k_observational_equivalent_processes(
        fsp, chaos().with_alphabet(fsp.alphabet), k, max_subset_states=max_subset_states
    )


def chaos_characterisation(fsp: FSP, max_steps: int = 1 << 16) -> bool:
    """The explicit characterisation of ``q approx_2 chaos`` from the proof.

    The conditions (i)-(iii) used in the proof of Theorem 4.1(c) read, for a
    unary restricted process ``q``:

    * (i)  every ``s`` in ``{a}+`` has an ``s``-derivative with language
      ``{epsilon}`` (a *dead* state);
    * (ii) every ``s`` in ``{a}*`` has an ``s``-derivative with language
      ``a*`` (a state with an infinite ``a``-run);
    * (iii) those are the *only* kinds of ``s``-derivatives (and at
      ``s = epsilon`` only the ``a*`` kind occurs, matching chaos itself).

    Since the sequence of derivative macro-states of a unary process is
    eventually periodic, the conditions are checked by walking the subset
    construction until a macro-state repeats.  ``max_steps`` is a safety
    valve; the walk repeats after at most ``2^|K|`` steps.
    """
    from repro.core.derivatives import WeakTransitionView

    if fsp.alphabet != frozenset({"a"}):
        raise ModelClassError("the chaos characterisation is for unary processes over 'a'")
    view = WeakTransitionView(fsp)

    # States with an infinite a-run (language a*): greatest fixed point of
    # "has an a-successor with the property", computed by iterated removal.
    live = set(fsp.states)
    changed = True
    while changed:
        changed = False
        for state in list(live):
            if not (view.weak_successors(state, "a") & frozenset(live)):
                live.discard(state)
                changed = True

    def is_dead(state: str) -> bool:
        return not view.weak_successors(state, "a")

    start_macro = view.epsilon_closure(fsp.start)
    # At s = epsilon every derivative must be of the a* kind (condition iii
    # restricted to what chaos itself offers at epsilon).
    if not start_macro or not all(state in live for state in start_macro):
        return False

    seen: set[frozenset[str]] = set()
    current = start_macro
    for _ in range(max_steps):
        current = view.weak_successors_of_set(current, "a")
        if not current:
            return False  # some s in {a}+ has no derivative at all, violating (ii)
        if current in seen:
            return True
        seen.add(current)
        if not any(is_dead(state) for state in current):
            return False  # violates (i)
        if not any(state in live for state in current):
            return False  # violates (ii)
        if not all(is_dead(state) or state in live for state in current):
            return False  # violates (iii): a derivative with a finite, non-trivial language
    return True
