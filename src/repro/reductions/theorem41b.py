"""The inductive reduction of Theorem 4.1(b) (Fig. 5a): ``approx_k`` to ``approx_{k+1}``.

Theorem 4.1(b) proves that deciding ``approx_k`` is PSPACE-complete for every
fixed ``k >= 1`` in the restricted observable model.  The heart of the proof
is a reduction that lifts hardness from one level of the chain to the next:
given two restricted observable states ``p`` and ``q``, construct

    ``p' = a . (p u q)``            ``q' = (a . p) u (a . q)``

using the star-expression combinators of :mod:`repro.reductions.star_ops`.
Then (using Lemma 4.1, which relates ``p approx_k q`` to
``p u q approx_k p`` and ``p u q approx_k q``):

    ``p approx_k q   iff   p' approx_{k+1} q'``.

Starting from the PSPACE-hardness of ``approx_1`` (Lemma 4.2) and applying the
reduction ``k - 1`` times yields hardness of every fixed level -- and since
the construction uses only a single action symbol ``a``, the same chain also
carries the co-NP-hardness of the r.o.u. case (Theorem 4.1(c)).

The functions below build the two processes of one reduction step, iterate the
step, and construct separating families (pairs that are ``approx_k`` but not
``approx_{k+1}``-equivalent) used by the tests and benchmarks.
"""

from __future__ import annotations

from repro.core.classify import ModelClass, require, require_same_signature
from repro.core.fsp import FSP
from repro.core.paper_figures import fig2_language_pair
from repro.reductions.star_ops import fsp_prefix, fsp_union


def theorem41b_step(first: FSP, second: FSP, action: str = "a") -> tuple[FSP, FSP]:
    """One application of the Fig. 5a reduction.

    Parameters
    ----------
    first, second:
        Restricted observable processes ``p`` and ``q`` over the same
        signature.
    action:
        The single action symbol used by the gadget (``a`` in the paper).

    Returns
    -------
    tuple
        The pair ``(p', q')`` with ``p' = a.(p u q)`` and
        ``q' = (a.p) u (a.q)``; both are again restricted observable
        processes, so the construction can be iterated.
    """
    require(first, ModelClass.RESTRICTED_OBSERVABLE, context="Theorem 4.1(b) reduction")
    require(second, ModelClass.RESTRICTED_OBSERVABLE, context="Theorem 4.1(b) reduction")
    require_same_signature(first, second)
    union = fsp_union(first, second)
    p_prime = fsp_prefix(action, union, start_name="p'")
    q_prime = fsp_union(
        fsp_prefix(action, first, start_name="ap"),
        fsp_prefix(action, second, start_name="aq"),
        start_name="q'",
    )
    # The two sides must agree on Sigma even when the operands never use `action`.
    alphabet = p_prime.alphabet | q_prime.alphabet
    return p_prime.with_alphabet(alphabet), q_prime.with_alphabet(alphabet)


def theorem41b_iterate(first: FSP, second: FSP, times: int, action: str = "a") -> tuple[FSP, FSP]:
    """Apply the reduction ``times`` times.

    If the inputs satisfy ``p approx_k q  xor  p approx_{k+1} q`` at some base
    level ``k``, the outputs satisfy the same at level ``k + times``.
    """
    current = (first, second)
    for _ in range(times):
        current = theorem41b_step(current[0], current[1], action=action)
    return current


def separating_pair(level: int) -> tuple[FSP, FSP]:
    """A pair of restricted observable processes that are ``approx_level`` equivalent
    but not ``approx_{level+1}`` equivalent.

    The base pair (level 1) is the Fig. 2 example: two r.o.u. processes with
    the same language that already differ at level 2; applying the Theorem
    4.1(b) reduction ``level - 1`` times shifts the separation up the chain.
    Only defined for ``level >= 1`` (at level 0 any two accepting states are
    equivalent).
    """
    if level < 1:
        raise ValueError("separating pairs exist for level >= 1")
    base_first, base_second = fig2_language_pair()
    return theorem41b_iterate(base_first, base_second, level - 1)


def union_characterisation_holds(fsp_first: FSP, fsp_second: FSP, k: int) -> bool:
    """Check Lemma 4.1 on a concrete pair: ``p approx_k q`` iff
    ``p u q approx_k p`` and ``p u q approx_k q``.

    Used by the property-based tests of experiment E15.  Both operands must be
    restricted and observable (the lemma's setting).
    """
    from repro.equivalence.kobs import k_observational_equivalent_processes

    require(fsp_first, ModelClass.RESTRICTED_OBSERVABLE, context="Lemma 4.1")
    require(fsp_second, ModelClass.RESTRICTED_OBSERVABLE, context="Lemma 4.1")
    require_same_signature(fsp_first, fsp_second)
    union = fsp_union(fsp_first, fsp_second)
    alphabet = union.alphabet
    left = k_observational_equivalent_processes(
        fsp_first.with_alphabet(alphabet), fsp_second.with_alphabet(alphabet), k
    )
    right = k_observational_equivalent_processes(
        union, fsp_first.with_alphabet(alphabet), k
    ) and k_observational_equivalent_processes(union, fsp_second.with_alphabet(alphabet), k)
    return left == right
