"""The hardness reductions of Sections 4 and 5 as executable constructions."""

from repro.reductions.lemma42 import (
    decide_universality_via_lemma42,
    lemma42_transform,
    normalize_for_lemma42,
)
from repro.reductions.star_ops import fsp_prefix, fsp_union
from repro.reductions.theorem41b import (
    separating_pair,
    theorem41b_iterate,
    theorem41b_step,
    union_characterisation_holds,
)
from repro.reductions.theorem41c import (
    accepting_to_dead,
    chaos_characterisation,
    equivalent_to_chaos,
    make_restricted,
    theorem41c_transform,
)
from repro.reductions.theorem51 import rou_transform, theorem51_transform
from repro.reductions.universality import (
    approx1_equals_trivial,
    approx2_equals_trivial_characterisation,
    approx2_equals_trivial_generic,
    refusal_witness,
)

__all__ = [
    "accepting_to_dead",
    "approx1_equals_trivial",
    "approx2_equals_trivial_characterisation",
    "approx2_equals_trivial_generic",
    "chaos_characterisation",
    "decide_universality_via_lemma42",
    "equivalent_to_chaos",
    "fsp_prefix",
    "fsp_union",
    "lemma42_transform",
    "make_restricted",
    "normalize_for_lemma42",
    "refusal_witness",
    "rou_transform",
    "separating_pair",
    "theorem41b_iterate",
    "theorem41b_step",
    "theorem41c_transform",
    "theorem51_transform",
    "union_characterisation_holds",
]
