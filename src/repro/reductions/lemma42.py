"""The reduction of Lemma 4.2 (Fig. 4): universality to restricted-observable ``approx_1``.

Lemma 4.2 shows that deciding ``p approx_1 q`` is PSPACE-complete already for
restricted observable FSPs.  Hardness is by reduction from the universality
problem ``L(p) = Sigma*`` for standard observable FSPs over ``Sigma = {a, b}``
in which every state has both an ``a``- and a ``b``-transition:

* every accept state ``p_f`` gets an ``a``-transition to a new trap state
  ``p_trap`` (which loops on both actions);
* every original transition ``p --sigma--> q`` is re-routed through a fresh
  intermediate state ``p_sigma``: ``p --b--> p_sigma --sigma--> q``;
* every state of the result is accepting (the result is restricted and
  observable).

The key property proved in the lemma is ``L(p0) = Sigma*  iff  L(p0') = Sigma*``,
and since restricted-observable ``approx_1`` is language equivalence
(Proposition 2.2.3(b)), comparing ``p0'`` with the trivially universal process
(:func:`repro.core.paper_figures.trivial_nfa`) decides universality of the
original automaton.

:func:`normalize_for_lemma42` implements the "simple reduction whose details we
do not present": eliminating tau-moves and completing missing transitions with
a non-accepting sink, which preserves the language and establishes the
precondition that both actions leave every state.
"""

from __future__ import annotations

from repro.core.classify import ModelClass, require
from repro.core.errors import ModelClassError
from repro.core.fsp import ACCEPT, FSP, TAU, FSPBuilder
from repro.core.paper_figures import trivial_nfa
from repro.equivalence.language import language_equivalent_processes

#: Name of the trap state introduced by the reduction.
TRAP_STATE = "p_trap"
#: Name of the rejecting sink introduced by :func:`normalize_for_lemma42`.
SINK_STATE = "p_sink"


def normalize_for_lemma42(fsp: FSP) -> FSP:
    """Make a standard FSP over ``{a, b}`` observable and total without changing its language.

    The preprocessing assumed by Lemma 4.2: tau-moves are eliminated by the
    usual epsilon-closure construction (a state becomes accepting when its
    closure contains an accepting state, and inherits the observable moves of
    its closure), and missing transitions are directed to a fresh
    non-accepting sink that loops on both actions.  Adding transitions to a
    rejecting sink never adds accepted strings, so ``L`` is preserved.
    """
    require(fsp, ModelClass.STANDARD, context="Lemma 4.2 normalisation")
    if fsp.alphabet != frozenset({"a", "b"}):
        raise ModelClassError(
            "Lemma 4.2 is stated for the two-action alphabet {a, b}; "
            f"got {sorted(fsp.alphabet)}"
        )
    from repro.core.derivatives import tau_closure

    closure = tau_closure(fsp)
    builder = FSPBuilder(alphabet={"a", "b"})
    for state in fsp.states:
        builder.add_state(state)
        if any(fsp.is_accepting(other) for other in closure[state]):
            builder.mark_accepting(state)
        for action in ("a", "b"):
            targets = set()
            for member in closure[state]:
                targets |= fsp.successors(member, action)
            if targets:
                for target in targets:
                    builder.add_transition(state, action, target)
            else:
                builder.add_transition(state, action, SINK_STATE)
    builder.add_transition(SINK_STATE, "a", SINK_STATE)
    builder.add_transition(SINK_STATE, "b", SINK_STATE)
    return builder.build(start=fsp.start)


def lemma42_transform(fsp: FSP) -> FSP:
    """The transformation ``M -> M'`` of Fig. 4.

    Expects a standard observable FSP over ``{a, b}`` in which every state has
    both actions enabled (use :func:`normalize_for_lemma42` first); produces a
    restricted observable FSP ``M'`` with
    ``L(p0) != Sigma*  iff  L(p0') != Sigma*``.
    """
    require(fsp, ModelClass.STANDARD_OBSERVABLE, context="Lemma 4.2 transformation")
    if fsp.alphabet != frozenset({"a", "b"}):
        raise ModelClassError("Lemma 4.2 requires the alphabet {a, b}")
    for state in fsp.states:
        if fsp.enabled_actions(state) != frozenset({"a", "b"}):
            raise ModelClassError(
                f"state {state!r} does not have both actions enabled; "
                "run normalize_for_lemma42 first"
            )

    states: set[str] = set(fsp.states) | {TRAP_STATE}
    transitions: set[tuple[str, str, str]] = set()
    # (i) accept states move to the trap on `a`
    for accept_state in fsp.accepting_states():
        transitions.add((accept_state, "a", TRAP_STATE))
    # (ii) original transitions are re-routed through intermediate states
    for index, (src, action, dst) in enumerate(sorted(fsp.transitions)):
        if action == TAU:  # pragma: no cover - excluded by the observability check
            continue
        intermediate = f"m_{index}"
        states.add(intermediate)
        transitions.add((src, "b", intermediate))
        transitions.add((intermediate, action, dst))
    # (iii) the trap loops on both actions
    transitions.add((TRAP_STATE, "a", TRAP_STATE))
    transitions.add((TRAP_STATE, "b", TRAP_STATE))

    return FSP(
        states=states,
        start=fsp.start,
        alphabet={"a", "b"},
        transitions=transitions,
        variables=[ACCEPT],
        extensions=[(state, ACCEPT) for state in states],
    )


def decide_universality_via_lemma42(fsp: FSP, max_states: int | None = None) -> bool:
    """Decide ``L(p0) = Sigma*`` by running the Lemma 4.2 reduction end to end.

    The input is normalised, transformed, and the result is compared (as a
    restricted observable process, i.e. via ``approx_1`` = language
    equivalence) against the trivially universal process over ``{a, b}``.
    Exists to make the reduction executable and testable; the direct check in
    :func:`repro.equivalence.language.is_universal` is of course simpler.
    """
    normalized = normalize_for_lemma42(fsp)
    transformed = lemma42_transform(normalized)
    universal = trivial_nfa({"a", "b"})
    return language_equivalent_processes(
        transformed, universal.with_alphabet(transformed.alphabet), max_states=max_states
    )
