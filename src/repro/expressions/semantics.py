"""Representative-FSP semantics of star expressions (Definition 2.3.1, Fig. 3).

The semantics of a star expression ``r`` is the class of observable, standard
FSPs whose start states are strongly equivalent to the start state of the
*representative* FSP of ``r``, constructed inductively:

* ``0``        -- a single non-accepting state with no transitions;
* ``a``        -- two states ``p --a--> q`` with only ``q`` accepting;
* ``r1 u r2``  -- a fresh start state that copies the outgoing transitions and
  the acceptance of both operands' start states;
* ``r1 . r2``  -- the accepting states of ``r1`` acquire copies of the
  outgoing transitions of ``r2``'s start state; acceptance is taken from
  ``r2`` (an accepting state of ``r1`` stays accepting exactly when ``r2``'s
  start state is accepting, so that the represented language is
  ``L(r1).L(r2)``);
* ``r1*``      -- a fresh accepting start state copying ``r1``'s start moves,
  and every accepting state of ``r1`` additionally copies ``r1``'s start
  moves (closing the loop).

The construction mirrors the classical NFA construction for regular
expressions but deliberately introduces **no tau/epsilon moves**, because the
semantics is a *strong*-equivalence class and must therefore be represented by
an observable process.  Lemma 2.3.1: the representative FSP of an expression
of length ``n`` has ``O(n)`` states and ``O(n^2)`` transitions and is built in
``O(n^2)`` time -- the benchmark ``bench_star_expressions.py`` (experiment E4)
measures exactly these quantities.

Note on the concatenation case: the journal text displays the extension set of
``r1 . r2`` as ``E2`` only; read literally that would make the representative
of ``a . b*`` reject the string ``a`` and break the correspondence with the
regular-expression reading that Section 2.3 builds on (and that Lemma 4.2's
use of expressions like ``a . p`` relies on).  We therefore keep accepting
states of ``r1`` accepting when ``r2``'s start state is accepting, which is
the standard epsilon-free concatenation and preserves the denoted language;
``tests/expressions/test_semantics.py`` cross-checks the construction against
an independent Thompson-style language semantics.
"""

from __future__ import annotations

import itertools

from repro.core.errors import ExpressionError
from repro.core.fsp import ACCEPT, FSP
from repro.expressions.syntax import (
    ActionExpr,
    ConcatExpr,
    EmptyExpr,
    StarExpr,
    StarExpression,
    UnionExpr,
    actions_of,
)


class _Construction:
    """Mutable state for the inductive construction (fresh-name supply)."""

    def __init__(self, alphabet: frozenset[str]) -> None:
        self.alphabet = alphabet
        self._counter = itertools.count()

    def fresh(self) -> str:
        return f"s{next(self._counter)}"

    # ------------------------------------------------------------------
    # each case returns (states, start, transitions, accepting)
    # ------------------------------------------------------------------
    def build(
        self, expression: StarExpression
    ) -> tuple[set[str], str, set[tuple[str, str, str]], set[str]]:
        if isinstance(expression, EmptyExpr):
            start = self.fresh()
            return {start}, start, set(), set()
        if isinstance(expression, ActionExpr):
            start, end = self.fresh(), self.fresh()
            return {start, end}, start, {(start, expression.action, end)}, {end}
        if isinstance(expression, UnionExpr):
            return self._union(expression)
        if isinstance(expression, ConcatExpr):
            return self._concat(expression)
        if isinstance(expression, StarExpr):
            return self._star(expression)
        raise ExpressionError(f"not a star expression: {expression!r}")

    def _union(
        self, expression: UnionExpr
    ) -> tuple[set[str], str, set[tuple[str, str, str]], set[str]]:
        states1, start1, trans1, accept1 = self.build(expression.left)
        states2, start2, trans2, accept2 = self.build(expression.right)
        start = self.fresh()
        states = states1 | states2 | {start}
        transitions = set(trans1) | set(trans2)
        for src, action, dst in trans1:
            if src == start1:
                transitions.add((start, action, dst))
        for src, action, dst in trans2:
            if src == start2:
                transitions.add((start, action, dst))
        accepting = set(accept1) | set(accept2)
        if start1 in accept1 or start2 in accept2:
            accepting.add(start)
        return states, start, transitions, accepting

    def _concat(
        self, expression: ConcatExpr
    ) -> tuple[set[str], str, set[tuple[str, str, str]], set[str]]:
        states1, start1, trans1, accept1 = self.build(expression.left)
        states2, start2, trans2, accept2 = self.build(expression.right)
        states = states1 | states2
        transitions = set(trans1) | set(trans2)
        start2_moves = [(action, dst) for src, action, dst in trans2 if src == start2]
        for accepting_state in accept1:
            for action, dst in start2_moves:
                transitions.add((accepting_state, action, dst))
        accepting = set(accept2)
        if start2 in accept2:
            accepting |= set(accept1)
        return states, start1, transitions, accepting

    def _star(
        self, expression: StarExpr
    ) -> tuple[set[str], str, set[tuple[str, str, str]], set[str]]:
        states1, start1, trans1, accept1 = self.build(expression.operand)
        start = self.fresh()
        states = states1 | {start}
        transitions = set(trans1)
        start1_moves = [(action, dst) for src, action, dst in trans1 if src == start1]
        for action, dst in start1_moves:
            transitions.add((start, action, dst))
        for accepting_state in accept1:
            for action, dst in start1_moves:
                transitions.add((accepting_state, action, dst))
        accepting = set(accept1) | {start}
        return states, start, transitions, accepting


def representative_fsp(
    expression: StarExpression,
    alphabet: frozenset[str] | set[str] | None = None,
    prune_unreachable: bool = False,
) -> FSP:
    """The representative FSP of a star expression.

    Parameters
    ----------
    expression:
        The star expression.
    alphabet:
        The ambient alphabet ``Sigma``; defaults to the actions occurring in
        the expression.  Supplying a larger alphabet matters for equivalence
        checks between expressions over different action sets.
    prune_unreachable:
        The literal construction of Definition 2.3.1 keeps the operand start
        states even when the new start state of a union/star makes them
        unreachable.  Passing True drops unreachable states, which never
        changes the strong-equivalence class of the start state.

    Returns
    -------
    FSP
        An observable, standard FSP (Lemma 2.3.1) whose start state represents
        the expression's semantics.
    """
    sigma = frozenset(alphabet) if alphabet is not None else actions_of(expression)
    construction = _Construction(sigma)
    states, start, transitions, accepting = construction.build(expression)
    process = FSP(
        states=states,
        start=start,
        alphabet=sigma | actions_of(expression),
        transitions=transitions,
        variables=[ACCEPT],
        extensions=[(state, ACCEPT) for state in accepting],
    )
    return process.restrict_to_reachable() if prune_unreachable else process


def construction_size(expression: StarExpression) -> tuple[int, int]:
    """The ``(states, transitions)`` size of the representative FSP.

    Lemma 2.3.1 bounds these by ``O(n)`` and ``O(n^2)`` respectively in the
    length ``n`` of the expression; experiment E4 plots the measured values
    against those bounds.
    """
    process = representative_fsp(expression)
    return process.num_states, process.num_transitions
