"""Concrete syntax and recursive-descent parser for star expressions.

Grammar (standard regular-expression syntax)::

    expression := term ('+' term)*
    term       := factor (('.' factor) | factor)*      # '.' or juxtaposition
    factor     := atom '*'*
    atom       := '0' | identifier | '(' expression ')'

``identifier`` is ``[A-Za-z_][A-Za-z0-9_]*`` and names an action; ``0`` is the
empty expression.  ``+`` may also be written ``|`` or ``u`` is *not* accepted
(it would be ambiguous with an action name); whitespace is ignored.

Example
-------
>>> from repro.expressions.parser import parse
>>> str(parse("a.(b + c)*"))
'(a.((b + c))*)'
"""

from __future__ import annotations

import re

from repro.core.errors import ExpressionError
from repro.expressions.syntax import (
    ActionExpr,
    ConcatExpr,
    EmptyExpr,
    StarExpr,
    StarExpression,
    UnionExpr,
)

_TOKEN_RE = re.compile(r"\s*(?:(?P<empty>0)|(?P<name>[A-Za-z_][A-Za-z0-9_]*)|(?P<op>[+|.*()]))")


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ExpressionError(f"unexpected character at position {position}: {remainder[0]!r}")
        position = match.end()
        if match.group("empty"):
            tokens.append(("empty", "0"))
        elif match.group("name"):
            tokens.append(("name", match.group("name")))
        else:
            op = match.group("op")
            tokens.append(("union" if op in "+|" else op, op))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> tuple[str, str] | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _advance(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ExpressionError(f"unexpected end of expression in {self._source!r}")
        self._index += 1
        return token

    def parse(self) -> StarExpression:
        expression = self._expression()
        if self._peek() is not None:
            kind, value = self._peek()  # type: ignore[misc]
            raise ExpressionError(f"unexpected token {value!r} in {self._source!r}")
        return expression

    def _expression(self) -> StarExpression:
        node = self._term()
        while self._peek() is not None and self._peek()[0] == "union":  # type: ignore[index]
            self._advance()
            node = UnionExpr(node, self._term())
        return node

    def _term(self) -> StarExpression:
        node = self._factor()
        while True:
            token = self._peek()
            if token is None:
                return node
            kind, _value = token
            if kind == ".":
                self._advance()
                node = ConcatExpr(node, self._factor())
            elif kind in ("empty", "name", "("):
                node = ConcatExpr(node, self._factor())
            else:
                return node

    def _factor(self) -> StarExpression:
        node = self._atom()
        while self._peek() is not None and self._peek()[0] == "*":  # type: ignore[index]
            self._advance()
            node = StarExpr(node)
        return node

    def _atom(self) -> StarExpression:
        kind, value = self._advance()
        if kind == "empty":
            return EmptyExpr()
        if kind == "name":
            return ActionExpr(value)
        if kind == "(":
            node = self._expression()
            closing = self._advance()
            if closing[0] != ")":
                raise ExpressionError(f"expected ')' in {self._source!r}")
            return node
        raise ExpressionError(f"unexpected token {value!r} in {self._source!r}")


def parse(text: str) -> StarExpression:
    """Parse the concrete syntax into a :class:`StarExpression` AST."""
    tokens = _tokenize(text)
    if not tokens:
        raise ExpressionError("empty expression text")
    return _Parser(tokens, text).parse()
