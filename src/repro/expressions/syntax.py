"""Abstract syntax of star expressions (Definition 2.3.1).

Star expressions are syntactically the regular expressions over an action
alphabet: the constant ``empty`` (the empty expression, written ``0`` in the
concrete syntax), single actions, union, concatenation and Kleene star.  The
*semantics* differ: a regular expression denotes a set of strings, whereas a
star expression denotes the strong-equivalence class of its representative FSP
(see :mod:`repro.expressions.semantics`).

The AST nodes are immutable dataclasses; convenience operators are provided so
tests and examples can build expressions fluently::

    (a | b) >> c.star()     # (a u b) . c*

where ``a = Action("a")`` and so on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.errors import ExpressionError


class _Base:
    """Shared operator sugar for star-expression nodes."""

    def __or__(self, other: "StarExpression") -> "UnionExpr":
        return UnionExpr(self, other)  # type: ignore[arg-type]

    def __rshift__(self, other: "StarExpression") -> "ConcatExpr":
        return ConcatExpr(self, other)  # type: ignore[arg-type]

    def star(self) -> "StarExpr":
        return StarExpr(self)  # type: ignore[arg-type]


@dataclass(frozen=True)
class EmptyExpr(_Base):
    """The empty star expression ``0`` (denoting the deadlocked, non-accepting process)."""

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True)
class ActionExpr(_Base):
    """A single action ``a``."""

    action: str

    def __post_init__(self) -> None:
        if not self.action or not all(ch.isalnum() or ch == "_" for ch in self.action):
            raise ExpressionError(f"invalid action name {self.action!r}")
        if self.action == "0":
            raise ExpressionError("'0' is reserved for the empty expression")

    def __str__(self) -> str:
        return self.action


@dataclass(frozen=True)
class UnionExpr(_Base):
    """Union (the ``+`` / ``u`` of the paper)."""

    left: "StarExpression"
    right: "StarExpression"

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class ConcatExpr(_Base):
    """Concatenation (the ``.`` of the paper)."""

    left: "StarExpression"
    right: "StarExpression"

    def __str__(self) -> str:
        return f"({self.left}.{self.right})"


@dataclass(frozen=True)
class StarExpr(_Base):
    """Kleene star."""

    operand: "StarExpression"

    def __str__(self) -> str:
        return f"({self.operand})*"


StarExpression = Union[EmptyExpr, ActionExpr, UnionExpr, ConcatExpr, StarExpr]


def actions_of(expression: StarExpression) -> frozenset[str]:
    """The set of action symbols appearing in the expression."""
    if isinstance(expression, EmptyExpr):
        return frozenset()
    if isinstance(expression, ActionExpr):
        return frozenset({expression.action})
    if isinstance(expression, (UnionExpr, ConcatExpr)):
        return actions_of(expression.left) | actions_of(expression.right)
    if isinstance(expression, StarExpr):
        return actions_of(expression.operand)
    raise ExpressionError(f"not a star expression: {expression!r}")


def length_of(expression: StarExpression) -> int:
    """The *length* of the expression in the sense of Lemma 2.3.1.

    The lemma measures the number of symbols of the expression string; we
    count one for every constant, action occurrence and operator, which is the
    same quantity up to parentheses.
    """
    if isinstance(expression, (EmptyExpr, ActionExpr)):
        return 1
    if isinstance(expression, (UnionExpr, ConcatExpr)):
        return 1 + length_of(expression.left) + length_of(expression.right)
    if isinstance(expression, StarExpr):
        return 1 + length_of(expression.operand)
    raise ExpressionError(f"not a star expression: {expression!r}")


def subexpressions(expression: StarExpression) -> list[StarExpression]:
    """All subexpressions in post-order (the expression itself last)."""
    if isinstance(expression, (EmptyExpr, ActionExpr)):
        return [expression]
    if isinstance(expression, (UnionExpr, ConcatExpr)):
        return subexpressions(expression.left) + subexpressions(expression.right) + [expression]
    if isinstance(expression, StarExpr):
        return subexpressions(expression.operand) + [expression]
    raise ExpressionError(f"not a star expression: {expression!r}")
