"""Algebraic identities of star expressions (Section 2.3, item (3)).

The paper points out the two significant identities that regular expressions
satisfy but star expressions (under strong equivalence of representative
FSPs) do not:

* right distributivity of concatenation over union:
  ``r.(s u t) = r.s u r.t``;
* annihilation by the empty expression: ``r.0 = 0``.

This module makes those claims executable: :func:`identity_report` evaluates a
catalogue of classical identities under both semantics (strong equivalence of
representative FSPs versus classical language equivalence) on concrete
instantiations, and :func:`distributivity_counterexample` /
:func:`annihilation_counterexample` return the canonical witnesses.
Experiment E16 regenerates the resulting table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expressions.ccs_equivalence import ccs_equivalent, language_ccs_equivalent
from repro.expressions.parser import parse
from repro.expressions.syntax import StarExpression


@dataclass(frozen=True)
class IdentityVerdict:
    """Outcome of evaluating one identity instance under both semantics."""

    name: str
    left: str
    right: str
    holds_in_ccs: bool
    holds_in_language: bool


#: Catalogue of identity *instances*: (name, left expression, right expression).
#: The instances for laws that hold are representative smoke tests, not proofs;
#: the two failing laws are exactly the ones Section 2.3 singles out.
IDENTITY_INSTANCES: tuple[tuple[str, str, str], ...] = (
    ("union commutativity", "a + b", "b + a"),
    ("union associativity", "(a + b) + c", "a + (b + c)"),
    ("union idempotence", "a + a", "a"),
    ("concat associativity", "(a.b).c", "a.(b.c)"),
    ("left distributivity", "(a + b).c", "a.c + b.c"),
    ("right distributivity", "a.(b + c)", "a.b + a.c"),
    ("annihilation r.0 = 0", "a.0", "0"),
    ("unfold r* = r.r* + 0*", "a*", "a.(a*) + 0*"),
)


def distributivity_counterexample() -> tuple[StarExpression, StarExpression]:
    """The canonical witness that ``r.(s u t) = r.s u r.t`` fails under CCS semantics.

    With ``r = a``, ``s = b``, ``t = c``: the representative of ``a.(b + c)``
    commits to the choice between ``b`` and ``c`` only *after* the ``a``,
    whereas ``a.b + a.c`` resolves it *at* the ``a`` -- the two start states
    are language equivalent but not strongly equivalent.
    """
    return parse("a.(b + c)"), parse("a.b + a.c")


def annihilation_counterexample() -> tuple[StarExpression, StarExpression]:
    """The canonical witness that ``r.0 = 0`` fails under CCS semantics.

    ``a.0`` can perform an ``a`` (into a deadlocked, non-accepting state)
    whereas ``0`` can perform nothing, so the two are not strongly
    equivalent although both denote the empty language.
    """
    return parse("a.0"), parse("0")


def evaluate_identity(name: str, left: str, right: str) -> IdentityVerdict:
    """Evaluate one identity instance under both semantics."""
    return IdentityVerdict(
        name=name,
        left=left,
        right=right,
        holds_in_ccs=ccs_equivalent(left, right),
        holds_in_language=language_ccs_equivalent(left, right),
    )


def identity_report() -> list[IdentityVerdict]:
    """Evaluate the whole identity catalogue (experiment E16)."""
    return [evaluate_identity(name, left, right) for name, left, right in IDENTITY_INSTANCES]


def identity_table() -> str:
    """Render the identity report as a text table (used by the benchmark harness)."""
    rows = identity_report()
    header = f"{'identity':<28} {'CCS (strong)':<14} {'language':<10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row.name:<28} {str(row.holds_in_ccs):<14} {str(row.holds_in_language):<10}")
    return "\n".join(lines)
