"""Classical (language) semantics of the same expression syntax.

Section 2.3 stresses that star expressions are *syntactically* regular
expressions with a different semantics.  To make the contrast executable the
library also gives the expressions their classical reading: the language they
denote, realised by a Thompson-style construction with epsilon moves.  The
test suite uses it to check that the representative FSP of
:mod:`repro.expressions.semantics` accepts exactly the denoted language, and
the ``axioms`` module uses it to show which identities hold under which
semantics (experiment E16).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.automata.equivalence import nfa_equivalent
from repro.automata.nfa import NFA
from repro.core.errors import ExpressionError
from repro.expressions.syntax import (
    ActionExpr,
    ConcatExpr,
    EmptyExpr,
    StarExpr,
    StarExpression,
    UnionExpr,
    actions_of,
)


class _Thompson:
    """Thompson construction producing an NFA with epsilon moves."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def fresh(self) -> str:
        return f"t{next(self._counter)}"

    def build(
        self, expression: StarExpression
    ) -> tuple[set[str], str, str, set[tuple[str, str | None, str]]]:
        """Return ``(states, start, accept, transitions)`` with a single accept state."""
        if isinstance(expression, EmptyExpr):
            start, accept = self.fresh(), self.fresh()
            return {start, accept}, start, accept, set()
        if isinstance(expression, ActionExpr):
            start, accept = self.fresh(), self.fresh()
            return {start, accept}, start, accept, {(start, expression.action, accept)}
        if isinstance(expression, UnionExpr):
            s1, start1, acc1, t1 = self.build(expression.left)
            s2, start2, acc2, t2 = self.build(expression.right)
            start, accept = self.fresh(), self.fresh()
            transitions = t1 | t2 | {
                (start, None, start1),
                (start, None, start2),
                (acc1, None, accept),
                (acc2, None, accept),
            }
            return s1 | s2 | {start, accept}, start, accept, transitions
        if isinstance(expression, ConcatExpr):
            s1, start1, acc1, t1 = self.build(expression.left)
            s2, start2, acc2, t2 = self.build(expression.right)
            transitions = t1 | t2 | {(acc1, None, start2)}
            return s1 | s2, start1, acc2, transitions
        if isinstance(expression, StarExpr):
            s1, start1, acc1, t1 = self.build(expression.operand)
            start, accept = self.fresh(), self.fresh()
            transitions = t1 | {
                (start, None, start1),
                (start, None, accept),
                (acc1, None, start1),
                (acc1, None, accept),
            }
            return s1 | {start, accept}, start, accept, transitions
        raise ExpressionError(f"not a star expression: {expression!r}")


def language_nfa(
    expression: StarExpression, alphabet: frozenset[str] | set[str] | None = None
) -> NFA:
    """The Thompson NFA accepting the classical language of the expression."""
    sigma = frozenset(alphabet) if alphabet is not None else actions_of(expression)
    states, start, accept, transitions = _Thompson().build(expression)
    return NFA(
        states=states,
        start=start,
        alphabet=sigma | actions_of(expression),
        transitions=transitions,
        accepting={accept},
    )


def denotes(expression: StarExpression, word: Sequence[str]) -> bool:
    """Membership of ``word`` in the classical language of the expression."""
    return language_nfa(expression).accepts(word)


def language_upto(expression: StarExpression, max_length: int) -> frozenset[tuple[str, ...]]:
    """All words of length at most ``max_length`` in the classical language."""
    return language_nfa(expression).language_upto(max_length)


def regular_equivalent(
    first: StarExpression,
    second: StarExpression,
    alphabet: frozenset[str] | set[str] | None = None,
    max_states: int | None = None,
) -> bool:
    """Classical language equivalence of two expressions.

    This is the PSPACE-complete regular-expression equivalence problem of
    Stockmeyer & Meyer (1973); the library decides it by determinisation and
    it serves as the baseline the paper's CCS-equivalence problem refines.
    """
    sigma = frozenset(alphabet) if alphabet is not None else actions_of(first) | actions_of(second)
    return nfa_equivalent(
        language_nfa(first, sigma), language_nfa(second, sigma), max_states=max_states
    )
