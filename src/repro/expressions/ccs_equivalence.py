"""The CCS equivalence problem for star expressions (Section 2.3).

    "Given two CCS expressions, do they have the same semantics?"

For star expressions the semantics is the strong-equivalence class of the
representative FSP's start state, so the problem reduces (Lemma 2.3.1 +
Theorem 3.1) to building the two representative FSPs -- quadratic in the
expression length -- and testing their start states for strong equivalence in
``O(m log n)`` time.  The module also offers the analogous decisions under
observational, failure and classical language equivalence, so that the
examples can show how the choice of equivalence notion changes which
identities hold.

Every function here is a thin shim over
:meth:`repro.engine.Engine.check_expressions` on the shared default engine:
the expression is parsed, the representative FSPs are built over the joint
alphabet, and the notion registry decides (failure semantics reads the
representatives as restricted processes; language equivalence answers
directly from the regular-expression procedure).  Use the engine entry point
directly for structured verdicts with witnesses.
"""

from __future__ import annotations

from repro.expressions.syntax import StarExpression


def _check(first: StarExpression | str, second: StarExpression | str, notion: str) -> bool:
    from repro.engine import default_engine

    return default_engine().check_expressions(first, second, notion, witness=False).equivalent


def ccs_equivalent(first: StarExpression | str, second: StarExpression | str) -> bool:
    """The CCS equivalence problem: equality of star-expression semantics.

    Decided as strong equivalence of the representative FSPs' start states
    (Definition 2.3.1 fixes strong equivalence as the notion that makes the
    semantics independent of the representative chosen).
    """
    return _check(first, second, "strong")


def observationally_ccs_equivalent(
    first: StarExpression | str, second: StarExpression | str
) -> bool:
    """Equality of star-expression semantics under observational equivalence.

    For observable representative FSPs this coincides with
    :func:`ccs_equivalent`; it is exposed separately because the general CCS
    expressions of Milner (1984) allow tau and then the two notions differ.
    """
    return _check(first, second, "observational")


def failure_ccs_equivalent(first: StarExpression | str, second: StarExpression | str) -> bool:
    """Equality of star-expression semantics under failure equivalence.

    Failure equivalence is defined on the restricted model, so the
    representative FSPs are compared after marking every state accepting --
    the standard move the paper itself makes when it reads star expressions as
    restricted processes in the reductions of Section 4 (the failure notion's
    expression hook applies it).
    """
    return _check(first, second, "failure")


def language_ccs_equivalent(first: StarExpression | str, second: StarExpression | str) -> bool:
    """Classical regular-language equivalence of the two expressions (the baseline)."""
    return _check(first, second, "language")
