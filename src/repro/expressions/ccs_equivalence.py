"""The CCS equivalence problem for star expressions (Section 2.3).

    "Given two CCS expressions, do they have the same semantics?"

For star expressions the semantics is the strong-equivalence class of the
representative FSP's start state, so the problem reduces (Lemma 2.3.1 +
Theorem 3.1) to building the two representative FSPs -- quadratic in the
expression length -- and testing their start states for strong equivalence in
``O(m log n)`` time.  The module also offers the analogous decisions under
observational, failure and classical language equivalence, so that the
examples can show how the choice of equivalence notion changes which
identities hold.
"""

from __future__ import annotations

from repro.core.fsp import FSP
from repro.equivalence.failure import failure_equivalent_processes
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent_processes
from repro.expressions.parser import parse
from repro.expressions.regular import regular_equivalent
from repro.expressions.semantics import representative_fsp
from repro.expressions.syntax import StarExpression, actions_of


def _as_expression(value: StarExpression | str) -> StarExpression:
    return parse(value) if isinstance(value, str) else value


def _aligned_representatives(
    first: StarExpression | str, second: StarExpression | str
) -> tuple[FSP, FSP]:
    left = _as_expression(first)
    right = _as_expression(second)
    alphabet = actions_of(left) | actions_of(right)
    return (
        representative_fsp(left, alphabet=alphabet),
        representative_fsp(right, alphabet=alphabet),
    )


def ccs_equivalent(first: StarExpression | str, second: StarExpression | str) -> bool:
    """The CCS equivalence problem: equality of star-expression semantics.

    Decided as strong equivalence of the representative FSPs' start states
    (Definition 2.3.1 fixes strong equivalence as the notion that makes the
    semantics independent of the representative chosen).
    """
    left, right = _aligned_representatives(first, second)
    return strongly_equivalent_processes(left, right)


def observationally_ccs_equivalent(
    first: StarExpression | str, second: StarExpression | str
) -> bool:
    """Equality of star-expression semantics under observational equivalence.

    For observable representative FSPs this coincides with
    :func:`ccs_equivalent`; it is exposed separately because the general CCS
    expressions of Milner (1984) allow tau and then the two notions differ.
    """
    left, right = _aligned_representatives(first, second)
    return observationally_equivalent_processes(left, right)


def failure_ccs_equivalent(first: StarExpression | str, second: StarExpression | str) -> bool:
    """Equality of star-expression semantics under failure equivalence.

    Failure equivalence is defined on the restricted model, so the
    representative FSPs are compared after marking every state accepting --
    the standard move the paper itself makes when it reads star expressions as
    restricted processes in the reductions of Section 4.
    """
    left, right = _aligned_representatives(first, second)
    return failure_equivalent_processes(_make_restricted(left), _make_restricted(right))


def language_ccs_equivalent(first: StarExpression | str, second: StarExpression | str) -> bool:
    """Classical regular-language equivalence of the two expressions (the baseline)."""
    left = _as_expression(first)
    right = _as_expression(second)
    return regular_equivalent(left, right)


def _make_restricted(fsp: FSP) -> FSP:
    """Return the same process with every state accepting (the restricted view)."""
    return FSP(
        states=fsp.states,
        start=fsp.start,
        alphabet=fsp.alphabet,
        transitions=fsp.transitions,
        variables=fsp.variables | {"x"},
        extensions=set(fsp.extensions) | {(state, "x") for state in fsp.states},
    )
