"""Star expressions: syntax, representative-FSP semantics, CCS equivalence, identities."""

from repro.expressions.axioms import (
    IdentityVerdict,
    annihilation_counterexample,
    distributivity_counterexample,
    evaluate_identity,
    identity_report,
    identity_table,
)
from repro.expressions.ccs_equivalence import (
    ccs_equivalent,
    failure_ccs_equivalent,
    language_ccs_equivalent,
    observationally_ccs_equivalent,
)
from repro.expressions.parser import parse
from repro.expressions.regular import denotes, language_upto, regular_equivalent
from repro.expressions.semantics import construction_size, representative_fsp
from repro.expressions.syntax import (
    ActionExpr,
    ConcatExpr,
    EmptyExpr,
    StarExpr,
    StarExpression,
    UnionExpr,
    actions_of,
    length_of,
)

__all__ = [
    "ActionExpr",
    "ConcatExpr",
    "EmptyExpr",
    "IdentityVerdict",
    "StarExpr",
    "StarExpression",
    "UnionExpr",
    "actions_of",
    "annihilation_counterexample",
    "ccs_equivalent",
    "construction_size",
    "denotes",
    "distributivity_counterexample",
    "evaluate_identity",
    "failure_ccs_equivalent",
    "identity_report",
    "identity_table",
    "language_ccs_equivalent",
    "language_upto",
    "length_of",
    "observationally_ccs_equivalent",
    "parse",
    "regular_equivalent",
    "representative_fsp",
]
