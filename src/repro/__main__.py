"""Module entry point so that ``python -m repro`` dispatches to the CLI.

Every subcommand of :mod:`repro.cli` is reachable this way, including the
long-running service (``python -m repro serve``) and its client
(``python -m repro client ...``).
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
