"""Role-based protocol models compiled to ``SystemSpec`` composition trees.

A :class:`ProtocolSpec` describes a message-passing protocol the way the
distributed-computing literature does -- as a set of *roles* (validator,
coordinator, client, ...), each a parameterised state machine over typed
actions -- and compiles it, via :meth:`ProtocolSpec.instantiate`, into the
:mod:`repro.explore.system` composition trees the Kanellakis-Smolka checkers
already understand.  Nothing downstream is protocol-aware: an instantiated
protocol is an ordinary ``RestrictSpec(ProductSpec("ccs", ...))`` tree of
:class:`~repro.explore.system.LeafSpec` nodes, so it composes with
``build_implicit``, ``check_on_the_fly``, ``minimize_compositionally`` and the
fault rewrites of :mod:`repro.protocols.faults` with no special cases.

The compilation rules:

* :class:`Send`/:class:`Recv` become the CCS co-action pair ``chan!``/``chan``
  and every channel that has both a sender and a receiver among the compiled
  leaves is restricted at the root, so handshakes appear as ``tau``.
* :class:`Broadcast` expands into a fixed ascending chain of sends, one per
  peer instance, through fresh intermediate states.
* :class:`Local` stays observable and :class:`Internal` compiles to ``tau``.
* A :class:`Quorum` becomes an explicit *counting synchroniser* leaf: a
  threshold ``q`` (e.g. ``n - f``, the classical ``n >= 2f+1`` majority)
  expands into ``q + 1`` counting states per stage that any sender's message
  advances, with self-loops absorbing stragglers from completed stages, and
  an observable ``fire`` action once the final stage fills.  Quorum
  predicates are thereby turned into synchronisation *structure*, which is
  what lets restriction + observational equivalence reason about them.

Per-instance machines are produced by a callable receiving a
:class:`RoleContext` (index, ``n``, ``f``, per-role counts, ring neighbours),
so one role definition yields ``count`` concrete leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Union

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP, TAU, FSPBuilder
from repro.explore.system import LeafSpec, ProductSpec, RestrictSpec, SystemSpec

__all__ = [
    "Broadcast",
    "Internal",
    "Local",
    "Machine",
    "ProtocolSpec",
    "Quorum",
    "Recv",
    "Role",
    "RoleContext",
    "Send",
    "role_label",
]


# ----------------------------------------------------------------------
# Typed actions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Send:
    """Send on ``channel`` (compiles to the CCS output co-action ``channel!``)."""

    channel: str


@dataclass(frozen=True)
class Recv:
    """Receive on ``channel`` (compiles to the CCS input action ``channel``)."""

    channel: str


@dataclass(frozen=True)
class Broadcast:
    """Send to every instance of role ``to``, in ascending index order.

    ``channel`` is a template over ``{peer}`` (e.g. ``"prepare{peer}"``); the
    broadcast expands to one :class:`Send` per peer instance, chained through
    fresh intermediate states.  When broadcasting to the sender's own role,
    ``skip_self`` (default true) omits the sender's own index.
    """

    channel: str
    to: str
    skip_self: bool = True


@dataclass(frozen=True)
class Local:
    """An observable local action (stays in the composed alphabet)."""

    action: str


@dataclass(frozen=True)
class Internal:
    """An internal step (compiles to ``tau``)."""


Action = Union[Send, Recv, Broadcast, Local, Internal]


# ----------------------------------------------------------------------
# Roles and their per-instance machines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoleContext:
    """Everything a role's machine factory may depend on for one instance."""

    role: str
    index: int
    n: int
    f: int
    counts: Mapping[str, int]

    @property
    def count(self) -> int:
        """How many instances of this role exist."""
        return self.counts[self.role]

    @property
    def succ(self) -> int:
        """The next index around this role's ring."""
        return (self.index + 1) % self.count

    @property
    def pred(self) -> int:
        """The previous index around this role's ring."""
        return (self.index - 1) % self.count

    def peers(self, role: str | None = None) -> range:
        """All instance indices of ``role`` (this role when omitted)."""
        return range(self.counts[self.role if role is None else role])


@dataclass(frozen=True)
class Machine:
    """One concrete state machine: a start state plus typed transitions."""

    start: str
    transitions: tuple[tuple[str, Action, str], ...]

    def __init__(self, start: str, transitions: Iterable[tuple[str, Action, str]]):
        object.__setattr__(self, "start", str(start))
        object.__setattr__(self, "transitions", tuple(transitions))


Count = Union[int, str, Callable[[int, int], int]]


@dataclass(frozen=True)
class Role:
    """A parameterised role: ``machine(ctx)`` yields one machine per instance.

    ``count`` is the number of instances: an ``int``, the string ``"n"``
    (one per validator), or a callable ``(n, f) -> int``.
    """

    name: str
    machine: Callable[[RoleContext], Machine]
    count: Count = "n"


@dataclass(frozen=True)
class Quorum:
    """A staged quorum counter over messages from one sender role.

    ``stages`` is a sequence of ``(channel_template, threshold)`` pairs; the
    template ranges over ``{sender}`` and the threshold is an ``int`` or a
    callable ``(n, f) -> int`` (e.g. ``lambda n, f: n - f``).  The compiled
    leaf counts stage 0's messages up to its threshold, then stage 1's, and
    so on; messages from already-completed stages are absorbed by self-loops
    (stragglers must never block), and once the last stage fills the counter
    emits the observable ``fire`` action and absorbs everything thereafter.
    """

    name: str
    senders: str
    stages: tuple[tuple[str, Union[int, Callable[[int, int], int]]], ...]
    fire: str

    def __init__(self, name, senders, stages, fire):
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "senders", str(senders))
        object.__setattr__(self, "stages", tuple((str(c), t) for c, t in stages))
        object.__setattr__(self, "fire", str(fire))


def role_label(role: str, index: int) -> str:
    """The leaf label of instance ``index`` of ``role`` (fault-injection key)."""
    return f"{role}{index}"


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _check_channel(channel: str) -> str:
    if not channel or channel == TAU or channel.endswith("!"):
        raise InvalidProcessError(
            f"invalid channel name {channel!r}: channels are bare names; "
            "direction comes from Send/Recv"
        )
    return channel


def _compile_machine(ctx: RoleContext, machine: Machine, channels: set[str]) -> FSP:
    """Compile one role instance's typed machine into an FSP leaf.

    Every channel a :class:`Send`/:class:`Recv`/:class:`Broadcast` touches is
    recorded in ``channels`` -- the set restricted at the root, so unmatched
    receives block (nobody sends) instead of leaking into the observable
    alphabet.  :class:`Local` actions are deliberately *not* recorded.
    """
    builder = FSPBuilder()
    builder.add_state(machine.start)
    for t_index, (src, action, dst) in enumerate(machine.transitions):
        if isinstance(action, Send):
            channels.add(_check_channel(action.channel))
            builder.add_transition(src, action.channel + "!", dst)
        elif isinstance(action, Recv):
            channels.add(_check_channel(action.channel))
            builder.add_transition(src, action.channel, dst)
        elif isinstance(action, Local):
            builder.add_transition(src, action.action, dst)
        elif isinstance(action, Internal):
            builder.add_transition(src, TAU, dst)
        elif isinstance(action, Broadcast):
            if action.to not in ctx.counts:
                raise InvalidProcessError(
                    f"role {ctx.role!r} broadcasts to unknown role {action.to!r}"
                )
            peers = [
                j
                for j in ctx.peers(action.to)
                if not (action.skip_self and action.to == ctx.role and j == ctx.index)
            ]
            if not peers:
                builder.add_transition(src, TAU, dst)
            else:
                prev = src
                for pos, peer in enumerate(peers):
                    channel = _check_channel(action.channel.format(peer=peer))
                    channels.add(channel)
                    nxt = dst if pos == len(peers) - 1 else f"{src}#{t_index}.{pos}"
                    builder.add_transition(prev, channel + "!", nxt)
                    prev = nxt
        else:
            raise InvalidProcessError(
                f"unknown action type {type(action).__name__} in role {ctx.role!r}"
            )
    builder.mark_all_accepting()
    return builder.build(start=machine.start)


def _resolve_threshold(threshold, n: int, f: int, sender_count: int, name: str) -> int:
    value = threshold(n, f) if callable(threshold) else int(threshold)
    if not 0 < value <= sender_count:
        raise InvalidProcessError(
            f"quorum {name!r} threshold {value} must lie in 1..{sender_count} "
            f"(sender count) at n={n}, f={f}"
        )
    return value


def _compile_quorum(
    quorum: Quorum, n: int, f: int, counts: Mapping[str, int], channels: set[str]
) -> FSP:
    """Expand a quorum predicate into an explicit counting synchroniser."""
    if quorum.senders not in counts:
        raise InvalidProcessError(
            f"quorum {quorum.name!r} counts messages from unknown role {quorum.senders!r}"
        )
    sender_count = counts[quorum.senders]
    stages: list[tuple[tuple[str, ...], int]] = []
    for template, threshold in quorum.stages:
        stage_channels = tuple(
            _check_channel(template.format(sender=j)) for j in range(sender_count)
        )
        channels.update(stage_channels)
        stages.append(
            (
                stage_channels,
                _resolve_threshold(threshold, n, f, sender_count, quorum.name),
            )
        )
    if not stages:
        raise InvalidProcessError(f"quorum {quorum.name!r} has no stages")

    builder = FSPBuilder()
    absorbed: list[str] = []  # channels of completed stages, never blocking
    for stage_index, (stage_channels, threshold) in enumerate(stages):
        last_stage = stage_index == len(stages) - 1
        for k in range(threshold):
            state = f"s{stage_index}_{k}"
            if k + 1 < threshold:
                nxt = f"s{stage_index}_{k + 1}"
            elif last_stage:
                nxt = "full"
            else:
                nxt = f"s{stage_index + 1}_0"
            for channel in stage_channels:
                builder.add_transition(state, channel, nxt)
            for channel in absorbed:
                builder.add_transition(state, channel, state)
        absorbed.extend(stage_channels)
    builder.add_transition("full", quorum.fire, "fired")
    for state in ("full", "fired"):
        for channel in absorbed:
            builder.add_transition(state, channel, state)
    builder.mark_all_accepting()
    return builder.build(start="s0_0")


def _fold_ccs(specs: list[SystemSpec]) -> SystemSpec:
    tree = specs[0]
    for spec in specs[1:]:
        tree = ProductSpec("ccs", tree, spec)
    return tree


# ----------------------------------------------------------------------
# The protocol model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProtocolSpec:
    """A protocol as roles + quorum predicates, instantiable at any ``(n, f)``.

    ``symmetric_roles`` / ``ring_roles`` declare symmetry the *author* knows
    the protocol has: instances of a symmetric role are fully
    interchangeable (their channels are all restricted and every counter
    treats senders anonymously -- the counting-synchroniser shape), while
    instances of a ring role are symmetric only under rotation.
    :meth:`instantiate` turns the declarations into the leaf-position
    annotations :mod:`repro.explore.reduce` consumes; they are promises,
    re-checkable with ``SymmetryReducer(..., validate=True)``, not inferred
    facts.  Note a broadcast *breaks* full-permutation symmetry -- it sends
    in a fixed ascending peer order, so permuting the peers changes which
    mid-broadcast states exist (two-phase commit is deliberately *not*
    declared symmetric).
    """

    name: str
    roles: tuple[Role, ...]
    quorums: tuple[Quorum, ...] = ()
    description: str = ""
    symmetric_roles: tuple[str, ...] = ()
    ring_roles: tuple[str, ...] = ()

    def __init__(
        self,
        name,
        roles,
        quorums=(),
        description="",
        symmetric_roles=(),
        ring_roles=(),
    ):
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "roles", tuple(roles))
        object.__setattr__(self, "quorums", tuple(quorums))
        object.__setattr__(self, "description", str(description))
        object.__setattr__(self, "symmetric_roles", tuple(symmetric_roles))
        object.__setattr__(self, "ring_roles", tuple(ring_roles))
        known = {role.name for role in self.roles}
        for declared in (*self.symmetric_roles, *self.ring_roles):
            if declared not in known:
                raise InvalidProcessError(
                    f"symmetry declared for unknown role {declared!r}"
                )

    def counts(self, n: int, f: int = 0) -> dict[str, int]:
        """Resolve every role's instance count at ``(n, f)``."""
        resolved: dict[str, int] = {}
        for role in self.roles:
            if role.name in resolved:
                raise InvalidProcessError(f"duplicate role name {role.name!r}")
            if callable(role.count):
                count = role.count(n, f)
            elif role.count == "n":
                count = n
            else:
                count = int(role.count)
            if count < 1:
                raise InvalidProcessError(
                    f"role {role.name!r} resolves to count {count} at n={n}, f={f}"
                )
            resolved[role.name] = count
        return resolved

    def _compiled(self, n: int, f: int) -> tuple[list[LeafSpec], frozenset[str]]:
        if n < 1:
            raise InvalidProcessError(f"need at least one validator, got n={n}")
        if f < 0:
            raise InvalidProcessError(f"fault budget must be non-negative, got f={f}")
        counts = self.counts(n, f)
        channels: set[str] = set()
        compiled: list[LeafSpec] = []
        for role in self.roles:
            for index in range(counts[role.name]):
                ctx = RoleContext(role.name, index, n, f, counts)
                fsp = _compile_machine(ctx, role.machine(ctx), channels)
                compiled.append(LeafSpec(fsp, label=role_label(role.name, index)))
        for quorum in self.quorums:
            compiled.append(
                LeafSpec(
                    _compile_quorum(quorum, n, f, counts, channels), label=quorum.name
                )
            )
        return compiled, frozenset(channels)

    def leaves(self, n: int, f: int = 0) -> list[LeafSpec]:
        """All compiled component leaves: role instances, then quorum counters."""
        return self._compiled(n, f)[0]

    def channels(self, n: int, f: int = 0) -> frozenset[str]:
        """Every channel some compiled transition sends or receives on."""
        return self._compiled(n, f)[1]

    def instantiate(self, n: int, f: int = 0) -> SystemSpec:
        """Compile to a ``SystemSpec``: CCS-compose all leaves, restrict channels.

        *Every* channel touched by a ``Send``/``Recv``/``Broadcast`` or quorum
        stage is restricted at the root: matched send/receive pairs
        synchronise into ``tau``, unmatched ones block (a receive nobody
        serves cannot happen), and only :class:`Local` actions and quorum
        ``fire`` actions remain observable.
        """
        compiled, channels = self._compiled(n, f)
        tree = _fold_ccs(list(compiled))
        root = RestrictSpec(tree, channels) if channels else tree
        self._annotate(root, n, f)
        return root

    def _annotate(self, root: SystemSpec, n: int, f: int) -> None:
        """Translate declared role symmetries into leaf-position annotations.

        Leaf order mirrors :meth:`_compiled`: role instances in declaration
        order, then quorum counters -- so each role's instances occupy one
        contiguous block of flat positions.
        """
        from repro.explore.reduce import (
            FullPermutationSymmetry,
            RotationSymmetry,
            annotate_symmetry,
        )

        counts = self.counts(n, f)
        offsets: dict[str, int] = {}
        position = 0
        for role in self.roles:
            offsets[role.name] = position
            position += counts[role.name]
        symmetries = []
        for name in self.symmetric_roles:
            span = tuple(range(offsets[name], offsets[name] + counts[name]))
            if len(span) > 1:
                symmetries.append(FullPermutationSymmetry((span,)))
        for name in self.ring_roles:
            span = tuple(range(offsets[name], offsets[name] + counts[name]))
            if len(span) > 1:
                symmetries.append(RotationSymmetry((span,)))
        if symmetries:
            annotate_symmetry(root, *symmetries)
