"""The protocol scenario library, in :mod:`repro.generators.families` style.

Each builder returns a :class:`Scenario`: a protocol sized by validator
count, its instantiated implementation, an abstract known-good spec (what an
outside observer should see), a known-faulty mutant, and the ordered crash
slots a fault-tolerance sweep applies.  Four classics:

* :func:`two_phase_commit` -- coordinator + ``n`` participants, prepare/yes/
  commit rounds looping forever; the observable behaviour is an endless
  ``commit`` stream.  Crashing the coordinator wedges every participant: the
  canonical reachable-deadlock demo.
* :func:`quorum_voting` -- PoDCon-shaped one-shot consensus: ``n`` validators
  push vote/prepare/commit rounds through a staged quorum counter with
  threshold ``n - f`` (majority when ``n = 2f + 1``), which fires the
  observable ``decide``.  Tolerates ``f`` crashed validators, breaks at
  ``f + 1``; a Byzantine "fake" validator can forge the quorum back.
* :func:`ring_election` -- Chang-Roberts-style maximum-finding on a ring over
  value-indexed channels; announces ``leader<n-1>``.  The mutant's top
  station forwards the *smaller* id, electing the wrong leader.
* :func:`token_passing` -- the self-stabilising token ring: stations serve
  round-robin and absorb duplicate tokens; the protocols-frontend rendering
  of :func:`repro.generators.families.token_ring_system`.

Scenarios are addressable by name through :data:`SCENARIOS` /
:func:`build_scenario`, and as JSON documents (CLI scenario files and
service operands) through :func:`scenario_from_document` /
:func:`system_from_document`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.core.errors import InvalidProcessError
from repro.core.fsp import from_transitions
from repro.explore.system import LeafSpec, SystemSpec
from repro.protocols.faults import Crash, Snag, apply_fault, apply_faults, fault_from_document
from repro.protocols.model import (
    Broadcast,
    Local,
    Machine,
    ProtocolSpec,
    Quorum,
    Recv,
    Role,
    Send,
)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "build_scenario",
    "quorum_voting",
    "ring_election",
    "scenario_from_document",
    "scenario_names",
    "system_from_document",
    "token_passing",
    "two_phase_commit",
]


@dataclass(frozen=True)
class Scenario:
    """A sized protocol instance bundled with its spec, mutant and fault slots."""

    name: str
    description: str
    protocol: ProtocolSpec
    n: int
    f: int
    spec: SystemSpec
    system: SystemSpec
    mutant: SystemSpec
    crash_slots: tuple[Crash, ...]


def _no_fault_budget(name: str, f: Union[int, None]) -> int:
    if f not in (None, 0):
        raise InvalidProcessError(f"{name} tolerates no crash faults (f must be 0)")
    return 0


def _spec_leaf(transitions, start) -> LeafSpec:
    return LeafSpec(
        from_transitions(transitions, start=start, all_accepting=True), label="spec"
    )


# ----------------------------------------------------------------------
# Two-phase commit
# ----------------------------------------------------------------------
def two_phase_commit(n: int = 3, f: Union[int, None] = None) -> Scenario:
    """Looping 2PC: coordinator broadcasts prepare, collects ``n`` yes votes,
    broadcasts commit, performs the observable ``commit`` and starts over."""
    if n < 1:
        raise InvalidProcessError(f"two_phase_commit needs n >= 1, got {n}")
    f = _no_fault_budget("two_phase_commit", f)

    def coordinator(ctx):
        transitions = [("gather", Broadcast("prepare{peer}", to="participant"), "count0")]
        for k in range(ctx.n):
            for j in range(ctx.n):
                transitions.append((f"count{k}", Recv(f"yes{j}"), f"count{k + 1}"))
        transitions.append(
            (f"count{ctx.n}", Broadcast("commit{peer}", to="participant"), "deciding")
        )
        transitions.append(("deciding", Local("commit"), "gather"))
        return Machine("gather", transitions)

    def participant(ctx):
        i = ctx.index
        return Machine(
            "idle",
            [
                ("idle", Recv(f"prepare{i}"), "voting"),
                ("voting", Send(f"yes{i}"), "ready"),
                ("ready", Recv(f"commit{i}"), "idle"),
            ],
        )

    protocol = ProtocolSpec(
        name="two_phase_commit",
        roles=(
            Role("coordinator", coordinator, count=1),
            Role("participant", participant, count="n"),
        ),
        description="coordinator + n participants; observable commit stream",
    )
    system = protocol.instantiate(n, f)
    return Scenario(
        name="two_phase_commit",
        description=protocol.description,
        protocol=protocol,
        n=n,
        f=f,
        spec=_spec_leaf([("committing", "commit", "committing")], start="committing"),
        system=system,
        mutant=apply_fault(system, Snag("participant", 0, at="ready", action="defect0")),
        crash_slots=(Crash("coordinator", 0),),
    )


# ----------------------------------------------------------------------
# Quorum voting (PoDCon-shaped)
# ----------------------------------------------------------------------
def quorum_voting(n: int = 5, f: Union[int, None] = None) -> Scenario:
    """One-shot quorum consensus: vote/prepare/commit rounds, threshold ``n - f``.

    ``n >= 2f + 1`` is enforced, so any two quorums of size ``n - f``
    intersect in at least one validator -- the classical quorum-intersection
    assumption, here *executable*: with ``f + 1`` crashes the counter wedges
    below threshold and the observable ``decide`` becomes unreachable.
    """
    if f is None:
        f = (n - 1) // 2
    if n < 1 or f < 0 or n < 2 * f + 1:
        raise InvalidProcessError(
            f"quorum_voting needs n >= 2f + 1 with f >= 0, got n={n}, f={f}"
        )

    def validator(ctx):
        i = ctx.index
        return Machine(
            "vote",
            [
                ("vote", Send(f"vote{i}"), "prepare"),
                ("prepare", Send(f"prepare{i}"), "commit"),
                ("commit", Send(f"commit{i}"), "done"),
            ],
        )

    threshold = n - f
    protocol = ProtocolSpec(
        name="quorum_voting",
        roles=(Role("validator", validator, count="n"),),
        quorums=(
            Quorum(
                "tally",
                senders="validator",
                stages=(
                    ("vote{sender}", threshold),
                    ("prepare{sender}", threshold),
                    ("commit{sender}", threshold),
                ),
                fire="decide",
            ),
        ),
        description=f"n validators, staged quorum counter with threshold n - f = {threshold}",
        # The counter receives any sender's channel without tracking identity
        # and every vote/prepare/commit channel is restricted, so validators
        # are fully interchangeable -- the symmetry the n=25 bench exploits.
        symmetric_roles=("validator",),
    )
    system = protocol.instantiate(n, f)
    return Scenario(
        name="quorum_voting",
        description=protocol.description,
        protocol=protocol,
        n=n,
        f=f,
        spec=_spec_leaf([("pending", "decide", "decided")], start="pending"),
        system=system,
        mutant=apply_fault(system, Snag("tally", None, at="fired", action="decide")),
        crash_slots=tuple(Crash("validator", i) for i in range(f + 1)),
    )


# ----------------------------------------------------------------------
# Ring leader election
# ----------------------------------------------------------------------
def ring_election(n: int = 4, f: Union[int, None] = None, *, selfless_top: bool = False) -> Scenario:
    """Maximum-finding on a unidirectional ring (Chang-Roberts flavour).

    Station 0 injects its own id; station ``i`` forwards ``max(value, i)``
    on value-indexed channels ``msg<dest>_<value>``; when the token returns
    to station 0 it announces the observable ``leader<value>`` -- always
    ``leader<n-1>``.  With ``selfless_top`` (the mutant), the top station
    forwards the incoming value unchanged, electing ``n - 2``.
    """
    if n < 2:
        raise InvalidProcessError(f"ring_election needs n >= 2, got {n}")
    f = _no_fault_budget("ring_election", f)

    def station(ctx):
        i, count = ctx.index, ctx.count
        if i == 0:
            transitions = [("inject", Send("msg1_0"), "await")]
            for value in range(count):
                transitions.append(("await", Recv(f"msg0_{value}"), f"got{value}"))
                transitions.append((f"got{value}", Local(f"leader{value}"), "done"))
            return Machine("inject", transitions)
        transitions = []
        for value in range(count):
            forwarded = value if (selfless_top and i == count - 1) else max(value, i)
            transitions.append(("relay", Recv(f"msg{i}_{value}"), f"fwd{value}"))
            transitions.append(
                (f"fwd{value}", Send(f"msg{ctx.succ}_{forwarded}"), "relay")
            )
        return Machine("relay", transitions)

    protocol = ProtocolSpec(
        name="ring_election",
        roles=(Role("station", station, count="n"),),
        description="max-finding on a ring; announces leader<n-1>",
    )
    return Scenario(
        name="ring_election",
        description=protocol.description,
        protocol=protocol,
        n=n,
        f=f,
        spec=_spec_leaf([("running", f"leader{n - 1}", "elected")], start="running"),
        system=protocol.instantiate(n, f),
        mutant=ring_election(n, f, selfless_top=True).system
        if not selfless_top
        else protocol.instantiate(n, f),
        crash_slots=(Crash("station", 1, at="relay"),),
    )


# ----------------------------------------------------------------------
# Self-stabilising token passing
# ----------------------------------------------------------------------
def token_passing(n: int = 4, f: Union[int, None] = None) -> Scenario:
    """The token ring, protocols-frontend edition, with a stabilising rule.

    Station ``i`` waits for ``tok<i>``, performs the observable ``serve<i>``
    and passes the token on; a duplicate token arriving while the station
    already holds (or has just served) is silently absorbed, which is the
    self-stabilisation rule that makes the multi-token perturbation converge
    back to a single circulating token.
    """
    if n < 2:
        raise InvalidProcessError(f"token_passing needs n >= 2, got {n}")
    f = _no_fault_budget("token_passing", f)

    def station(ctx):
        i = ctx.index
        return Machine(
            "holding" if i == 0 else "wait",
            [
                ("wait", Recv(f"tok{i}"), "holding"),
                ("holding", Local(f"serve{i}"), "served"),
                ("served", Send(f"tok{ctx.succ}"), "wait"),
                ("holding", Recv(f"tok{i}"), "holding"),
                ("served", Recv(f"tok{i}"), "served"),
            ],
        )

    protocol = ProtocolSpec(
        name="token_passing",
        roles=(Role("station", station, count="n"),),
        description="self-stabilising token ring; observable round-robin serves",
        # Rotating the ring maps serve<i> to serve<i+1>: an automorphism that
        # permutes observable labels, so sound for stuck-state search only.
        ring_roles=("station",),
    )
    system = protocol.instantiate(n, f)
    spec_transitions = [
        (f"round{i}", f"serve{i}", f"round{(i + 1) % n}") for i in range(n)
    ]
    return Scenario(
        name="token_passing",
        description=protocol.description,
        protocol=protocol,
        n=n,
        f=f,
        spec=_spec_leaf(spec_transitions, start="round0"),
        system=system,
        mutant=apply_fault(system, Snag("station", 1, at="holding", action="fault1")),
        crash_slots=(Crash("station", 1, at="wait"),),
    )


# ----------------------------------------------------------------------
# Registry and JSON documents
# ----------------------------------------------------------------------
SCENARIOS: dict[str, Callable[..., Scenario]] = {
    "two_phase_commit": two_phase_commit,
    "quorum_voting": quorum_voting,
    "ring_election": ring_election,
    "token_passing": token_passing,
}


def scenario_names() -> tuple[str, ...]:
    """The library's scenario names, sorted."""
    return tuple(sorted(SCENARIOS))


def build_scenario(
    name: str, n: Union[int, None] = None, f: Union[int, None] = None
) -> Scenario:
    """Build a library scenario by name, optionally sized by ``n`` and ``f``."""
    if name not in SCENARIOS:
        raise InvalidProcessError(
            f"unknown scenario {name!r} (choose from {', '.join(scenario_names())})"
        )
    kwargs: dict = {}
    if n is not None:
        kwargs["n"] = int(n)
    if f is not None:
        kwargs["f"] = int(f)
    return SCENARIOS[name](**kwargs)


def scenario_from_document(document) -> Scenario:
    """Build a scenario from a JSON document (``"name"`` plus optional sizes).

    Accepts a bare scenario name or a mapping like
    ``{"name": "quorum_voting", "n": 5, "f": 2}``.
    """
    if isinstance(document, str):
        return build_scenario(document)
    if not isinstance(document, dict) or "name" not in document:
        raise InvalidProcessError(
            f"a scenario document is a name or a mapping with a 'name': {document!r}"
        )
    return build_scenario(
        str(document["name"]), document.get("n"), document.get("f")
    )


def system_from_document(document) -> SystemSpec:
    """Resolve a scenario document to one checkable ``SystemSpec``.

    On top of :func:`scenario_from_document` the document may pick a ``side``
    (``"implementation"`` -- the default -- ``"spec"`` or ``"mutant"``) and
    list ``faults`` (documents of :func:`repro.protocols.faults.fault_from_document`)
    applied to the chosen side in order.
    """
    scenario = scenario_from_document(document)
    side = "implementation"
    faults = ()
    if isinstance(document, dict):
        side = str(document.get("side", side))
        faults = tuple(
            fault_from_document(doc) for doc in document.get("faults", ())
        )
    sides = {
        "implementation": scenario.system,
        "spec": scenario.spec,
        "mutant": scenario.mutant,
    }
    if side not in sides:
        raise InvalidProcessError(
            f"unknown scenario side {side!r} (choose from {', '.join(sorted(sides))})"
        )
    return apply_faults(sides[side], faults)
