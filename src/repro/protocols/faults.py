"""Fault injection as ``SystemSpec`` tree rewrites.

Faults are data (frozen dataclasses) applied by :func:`apply_fault` as pure
rewrites of an instantiated protocol's composition tree, so any fault
composes with any scenario and the faulty system is checked by exactly the
same machinery as the clean one:

* :class:`Crash` deterministically fells one role instance at a *cut state*:
  the cut state's outgoing transitions are removed and replaced by a single
  ``tau`` into a fresh ``crashed`` state -- terminal for ``style="stop"``
  (the component contributes genuine deadlocks) or a ``tau`` self-loop for
  ``style="spin"`` (the ``snag`` idiom of
  :func:`repro.generators.families.with_snag`, contributing divergence).
* :class:`Omission` makes one restricted channel lossy: receivers are rewired
  to a delivery channel fed by an interposed medium leaf that may silently
  drop any message it carries.
* :class:`Byzantine` replaces a role instance with chaos: a one-state leaf
  that can always offer *every* action of the instance's alphabet, i.e. an
  unconstrained sender (and acceptor) over its interface.
* :class:`Snag` plants an observable self-loop on one state of one leaf --
  the mutant-building primitive of :mod:`repro.protocols.library`.

Crashes are deterministic on purpose: a crashed instance *cannot* take its
cut state's normal moves, so at ``f + 1`` crashes the spec admits traces the
implementation cannot match (and vice versa for spurious mutant behaviour),
which is what makes distinguishing traces replay-verifiable.  Crashed states
stay accepting -- fault visibility is a trace/deadlock phenomenon here, not
an extension mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.core.errors import InvalidProcessError
from repro.core.fsp import ACCEPT, FSP, TAU
from repro.explore.system import (
    HideSpec,
    LeafSpec,
    ProductSpec,
    RelabelSpec,
    RestrictSpec,
    SystemSpec,
)
from repro.generators.families import with_snag
from repro.protocols.model import role_label

__all__ = [
    "Byzantine",
    "Crash",
    "Fault",
    "Omission",
    "Snag",
    "apply_fault",
    "apply_faults",
    "chaos_leaf",
    "crash_leaf",
    "fault_from_document",
    "fault_to_document",
]


@dataclass(frozen=True)
class Crash:
    """Crash instance ``index`` of ``role`` at cut state ``at`` (start if None).

    ``index=None`` targets the leaf labelled exactly ``role`` -- the form used
    for singleton leaves such as quorum counters.
    """

    role: str
    index: Union[int, None]
    at: Union[str, None] = None
    style: str = "stop"


@dataclass(frozen=True)
class Omission:
    """Make the restricted ``channel`` lossy via an interposed dropping medium."""

    channel: str


@dataclass(frozen=True)
class Byzantine:
    """Replace instance ``index`` of ``role`` with chaos over its alphabet."""

    role: str
    index: Union[int, None]


@dataclass(frozen=True)
class Snag:
    """Plant an ``action`` self-loop on state ``at`` of instance ``index``."""

    role: str
    index: Union[int, None]
    at: str
    action: str = "snag"


def _target_label(fault) -> str:
    return fault.role if fault.index is None else role_label(fault.role, fault.index)


Fault = Union[Crash, Omission, Byzantine, Snag]


# ----------------------------------------------------------------------
# Leaf-level rewrites
# ----------------------------------------------------------------------
def crash_leaf(fsp: FSP, at: Union[str, None] = None, style: str = "stop") -> FSP:
    """The crash rewrite on one FSP: cut ``at`` over to a fresh crashed state."""
    cut = fsp.start if at is None else str(at)
    if cut not in fsp.states:
        raise InvalidProcessError(
            f"crash cut state {cut!r} is not a state (states: {sorted(fsp.states)})"
        )
    if style not in ("stop", "spin"):
        raise InvalidProcessError(f"unknown crash style {style!r} (want stop or spin)")
    crashed = "crashed"
    while crashed in fsp.states:
        crashed += "_"
    felled = FSP(
        states=set(fsp.states) | {crashed},
        start=fsp.start,
        alphabet=fsp.alphabet,
        transitions={t for t in fsp.transitions if t[0] != cut} | {(cut, TAU, crashed)},
        variables=fsp.variables,
        extensions=set(fsp.extensions) | {(crashed, v) for _, v in fsp.extensions},
    )
    if style == "spin":
        felled = with_snag(felled, crashed, TAU)
    return felled


def chaos_leaf(fsp: FSP) -> FSP:
    """The Byzantine rewrite: one state offering every action of the alphabet."""
    return FSP(
        states={"chaos"},
        start="chaos",
        alphabet=fsp.alphabet,
        transitions={("chaos", action, "chaos") for action in fsp.alphabet},
        variables=fsp.variables,
        extensions={("chaos", v) for _, v in fsp.extensions} or {("chaos", ACCEPT)},
    )


# ----------------------------------------------------------------------
# Tree rewrites
# ----------------------------------------------------------------------
def _rewrite_leaf(
    spec: SystemSpec, label: str, rewrite: Callable[[FSP], FSP]
) -> tuple[SystemSpec, bool]:
    """Rewrite the unique leaf with ``label``; returns (new tree, found)."""
    if isinstance(spec, LeafSpec):
        if spec.label == label:
            return LeafSpec(rewrite(spec.fsp), label=spec.label), True
        return spec, False
    if isinstance(spec, ProductSpec):
        left, found = _rewrite_leaf(spec.left, label, rewrite)
        if found:
            return ProductSpec(spec.op, left, spec.right, spec.extension_mode), True
        right, found = _rewrite_leaf(spec.right, label, rewrite)
        return ProductSpec(spec.op, spec.left, right, spec.extension_mode), found
    if isinstance(spec, RestrictSpec):
        inner, found = _rewrite_leaf(spec.of, label, rewrite)
        return RestrictSpec(inner, spec.channels), found
    if isinstance(spec, HideSpec):
        inner, found = _rewrite_leaf(spec.of, label, rewrite)
        return HideSpec(inner, spec.channels), found
    if isinstance(spec, RelabelSpec):
        inner, found = _rewrite_leaf(spec.of, label, rewrite)
        return RelabelSpec(inner, spec.mapping), found
    return spec, False


def _rewrite_named_leaf(spec: SystemSpec, label: str, rewrite) -> SystemSpec:
    rewritten, found = _rewrite_leaf(spec, label, rewrite)
    if not found:
        raise InvalidProcessError(
            f"no leaf labelled {label!r} in the system spec -- fault targets name "
            "role instances as '<role><index>'"
        )
    return rewritten


def _rewrite_all_leaves(spec: SystemSpec, rewrite: Callable[[FSP], FSP]) -> SystemSpec:
    if isinstance(spec, LeafSpec):
        return LeafSpec(rewrite(spec.fsp), label=spec.label)
    if isinstance(spec, ProductSpec):
        return ProductSpec(
            spec.op,
            _rewrite_all_leaves(spec.left, rewrite),
            _rewrite_all_leaves(spec.right, rewrite),
            spec.extension_mode,
        )
    if isinstance(spec, RestrictSpec):
        return RestrictSpec(_rewrite_all_leaves(spec.of, rewrite), spec.channels)
    if isinstance(spec, HideSpec):
        return HideSpec(_rewrite_all_leaves(spec.of, rewrite), spec.channels)
    if isinstance(spec, RelabelSpec):
        return RelabelSpec(_rewrite_all_leaves(spec.of, rewrite), spec.mapping)
    return spec


def _lossy_medium(channel: str, delivered: str) -> FSP:
    """A one-message channel that may silently drop what it carries."""
    return FSP(
        states={"empty", "carrying"},
        start="empty",
        alphabet={channel, delivered + "!"},
        transitions={
            ("empty", channel, "carrying"),
            ("carrying", delivered + "!", "empty"),
            ("carrying", TAU, "empty"),
        },
        extensions={("empty", ACCEPT), ("carrying", ACCEPT)},
    )


def _apply_omission(spec: SystemSpec, fault: Omission) -> SystemSpec:
    if not isinstance(spec, RestrictSpec) or fault.channel not in spec.channels:
        raise InvalidProcessError(
            f"omission needs channel {fault.channel!r} restricted at the root of "
            "the system spec (only synchronised channels can be lossy)"
        )
    channel = fault.channel
    delivered = channel + "_dlv"

    def reroute(fsp: FSP) -> FSP:
        if channel not in fsp.alphabet:
            return fsp
        return FSP(
            states=fsp.states,
            start=fsp.start,
            alphabet=(set(fsp.alphabet) - {channel}) | {delivered},
            transitions={
                (src, delivered if act == channel else act, dst)
                for src, act, dst in fsp.transitions
            },
            variables=fsp.variables,
            extensions=fsp.extensions,
        )

    inner = _rewrite_all_leaves(spec.of, reroute)
    composed = ProductSpec("ccs", inner, LeafSpec(_lossy_medium(channel, delivered),
                                                  label=f"lossy({channel})"))
    return RestrictSpec(composed, frozenset(spec.channels) | {delivered})


def apply_fault(spec: SystemSpec, fault: Fault) -> SystemSpec:
    """Apply one fault to an instantiated system, returning the rewritten tree."""
    if isinstance(fault, Crash):
        return _rewrite_named_leaf(
            spec,
            _target_label(fault),
            lambda fsp: crash_leaf(fsp, at=fault.at, style=fault.style),
        )
    if isinstance(fault, Byzantine):
        return _rewrite_named_leaf(spec, _target_label(fault), chaos_leaf)
    if isinstance(fault, Snag):
        return _rewrite_named_leaf(
            spec,
            _target_label(fault),
            lambda fsp: with_snag(fsp, fault.at, fault.action),
        )
    if isinstance(fault, Omission):
        return _apply_omission(spec, fault)
    raise InvalidProcessError(f"unknown fault type {type(fault).__name__}")


def apply_faults(spec: SystemSpec, faults) -> SystemSpec:
    """Apply a sequence of faults left to right."""
    for fault in faults:
        spec = apply_fault(spec, fault)
    return spec


# ----------------------------------------------------------------------
# JSON documents (CLI scenario files / service operands)
# ----------------------------------------------------------------------
_KINDS = {"crash": Crash, "omission": Omission, "byzantine": Byzantine, "snag": Snag}


def fault_to_document(fault: Fault) -> dict:
    """Render a fault as its JSON document."""
    def with_index(doc: dict) -> dict:
        if fault.index is not None:
            doc["index"] = fault.index
        return doc

    if isinstance(fault, Crash):
        doc = with_index({"kind": "crash", "role": fault.role})
        if fault.at is not None:
            doc["at"] = fault.at
        if fault.style != "stop":
            doc["style"] = fault.style
        return doc
    if isinstance(fault, Omission):
        return {"kind": "omission", "channel": fault.channel}
    if isinstance(fault, Byzantine):
        return with_index({"kind": "byzantine", "role": fault.role})
    if isinstance(fault, Snag):
        return with_index(
            {"kind": "snag", "role": fault.role, "at": fault.at, "action": fault.action}
        )
    raise InvalidProcessError(f"unknown fault type {type(fault).__name__}")


def fault_from_document(document: dict) -> Fault:
    """Parse a fault document (the inverse of :func:`fault_to_document`)."""
    if not isinstance(document, dict) or "kind" not in document:
        raise InvalidProcessError(f"a fault document needs a 'kind': {document!r}")
    kind = document["kind"]
    if kind not in _KINDS:
        raise InvalidProcessError(
            f"unknown fault kind {kind!r} (want one of {sorted(_KINDS)})"
        )
    fields = {k: v for k, v in document.items() if k != "kind"}

    def index_of(value):
        return None if value is None else int(value)

    try:
        if kind == "crash":
            return Crash(
                role=str(fields.pop("role")),
                index=index_of(fields.pop("index", None)),
                at=fields.pop("at", None),
                style=str(fields.pop("style", "stop")),
            )
        if kind == "omission":
            return Omission(channel=str(fields.pop("channel")))
        if kind == "byzantine":
            return Byzantine(
                role=str(fields.pop("role")), index=index_of(fields.pop("index", None))
            )
        return Snag(
            role=str(fields.pop("role")),
            index=index_of(fields.pop("index", None)),
            at=str(fields.pop("at")),
            action=str(fields.pop("action", "snag")),
        )
    except KeyError as missing:
        raise InvalidProcessError(
            f"fault document for kind {kind!r} is missing field {missing}"
        ) from None
