"""The protocol checking harness: conformance, stuck states, tolerance sweeps.

Three verbs, all routed through the existing Section 6 machinery:

* :func:`check_conformance` -- spec-vs-implementation observational (or
  strong) equivalence via the engine's on-the-fly checker.  On failure the
  verdict carries a replay-verified distinguishing trace
  (:class:`~repro.engine.verdict.TraceWitness`) whenever verification
  succeeds, which for the deterministic crash faults of
  :mod:`repro.protocols.faults` is always.
* :func:`find_stuck` -- breadth-first reachability over the *lazy* product
  for deadlocks (states with no moves at all) and, when the exploration
  completes, livelocks (states that can never again reach an observable
  action).  The returned :class:`StuckReport` carries a shortest trace to
  the offending state, tau steps included.
* :func:`sweep_crashes` -- the fault-tolerance sweep: apply ``k`` crash
  faults from a scenario's declared fault slots for ``k = 0 .. f + 1`` and
  check conformance at each point, asserting equivalence up to ``f`` and
  inequivalence at ``f + 1`` -- both verdict polarities in one run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Union

from repro.core.fsp import TAU
from repro.explore.system import build_implicit

__all__ = [
    "StuckReport",
    "SweepPoint",
    "SweepResult",
    "check_conformance",
    "find_stuck",
    "sweep_crashes",
]


def _engine(engine=None):
    if engine is not None:
        return engine
    from repro.engine import default_engine

    return default_engine()


def check_conformance(
    spec,
    implementation,
    notion: str = "observational",
    *,
    engine=None,
    witness: bool = True,
    max_pairs: Union[int, None] = None,
):
    """Check ``implementation`` against ``spec`` on the fly; returns a Verdict.

    Both operands may be ``SystemSpec`` trees (the normal case), FSPs or
    implicit systems.  The verdict's ``details`` report the route and the
    number of product pairs visited; on inequivalence ``verdict.witness`` is
    a replay-verified distinguishing trace when verification succeeds.
    """
    return _engine(engine).check_on_the_fly(
        spec, implementation, notion, witness=witness, max_pairs=max_pairs
    )


# ----------------------------------------------------------------------
# Deadlock / stuck-state reachability
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StuckReport:
    """A reachable stuck state of the composed system.

    ``kind`` is ``"deadlock"`` (no moves at all) or ``"livelock"`` (moves
    exist but no observable action is ever reachable again); ``trace`` is a
    shortest action sequence from the start (``tau`` steps included) and
    ``state`` the offending product state's name.
    """

    kind: str
    state: str
    trace: tuple[str, ...]
    states_explored: int
    complete: bool


def find_stuck(
    system,
    *,
    limit: int = 50_000,
    livelocks: bool = True,
) -> Union[StuckReport, None]:
    """Breadth-first search of the lazy product for deadlocks and livelocks.

    Explores at most ``limit`` states of ``system`` (a ``SystemSpec``, FSP or
    implicit system) without ever materialising it.  Deadlocks -- states with
    no outgoing moves -- are reported even from a truncated exploration;
    livelock detection needs the full reachable set, so it only runs when the
    exploration completed within ``limit``.  Returns the stuck state closest
    to the start (deadlocks take precedence), or None.

    Note that for one-shot protocols orderly termination *is* a state with no
    moves: the interesting question is then whether the reported trace
    contains the protocol's observable outcome (e.g. ``decide``) or the
    system wedged before reaching it.
    """
    node = build_implicit(system)
    start = node.initial()
    parents: dict = {start: None}
    order = [start]
    successors: dict = {}
    complete = True
    queue = deque([start])
    while queue:
        state = queue.popleft()
        moves = tuple(node.successors(state))
        successors[state] = moves
        for action, target in moves:
            if target in parents:
                continue
            if len(parents) >= limit:
                complete = False
                continue
            parents[target] = (state, action)
            order.append(target)
            queue.append(target)

    def trace_to(state) -> tuple[str, ...]:
        actions: list[str] = []
        while parents[state] is not None:
            state, action = parents[state][0], parents[state][1]
            actions.append(action)
        return tuple(reversed(actions))

    def report(kind: str, state) -> StuckReport:
        return StuckReport(
            kind=kind,
            state=node.state_name(state),
            trace=trace_to(state),
            states_explored=len(parents),
            complete=complete,
        )

    for state in order:  # BFS order => first hit has a shortest trace
        if not successors[state]:
            return report("deadlock", state)
    if not (livelocks and complete):
        return None
    # Backward closure from states with an observable move: anything outside
    # it can only ever do tau again -- a livelock (the exploration being
    # complete, "outside" is exact, not an artefact of truncation).
    reverse: dict = {state: [] for state in order}
    live = deque()
    alive = set()
    for state in order:
        for action, target in successors[state]:
            reverse[target].append(state)
        if any(action != TAU for action, _ in successors[state]):
            alive.add(state)
            live.append(state)
    while live:
        state = live.popleft()
        for predecessor in reverse[state]:
            if predecessor not in alive:
                alive.add(predecessor)
                live.append(predecessor)
    for state in order:
        if state not in alive:
            return report("livelock", state)
    return None


# ----------------------------------------------------------------------
# Fault-tolerance sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One sweep cell: conformance after ``faults`` crash faults."""

    faults: int
    equivalent: bool
    pairs_visited: int
    trace: Union[tuple[str, ...], None]
    trace_verified: bool


@dataclass(frozen=True)
class SweepResult:
    """A fault-tolerance sweep over ``k = 0 .. max_faults`` crash faults."""

    scenario: str
    tolerance: int
    points: tuple[SweepPoint, ...]

    @property
    def breaks_at(self) -> Union[int, None]:
        """The smallest fault count at which conformance fails, if any."""
        for point in self.points:
            if not point.equivalent:
                return point.faults
        return None

    @property
    def confirmed(self) -> bool:
        """True iff equivalence holds through ``tolerance`` faults and the
        sweep either stopped there or broke at exactly ``tolerance + 1``."""
        for point in self.points:
            expected = point.faults <= self.tolerance
            if point.equivalent != expected:
                return False
        return True


def sweep_crashes(
    scenario,
    *,
    max_faults: Union[int, None] = None,
    notion: str = "observational",
    engine=None,
    max_pairs: Union[int, None] = None,
) -> SweepResult:
    """Sweep crash faults over a library scenario's declared fault slots.

    ``scenario`` is a :class:`repro.protocols.library.Scenario`.  For each
    ``k`` up to ``max_faults`` (default ``scenario.f + 1``) the first ``k``
    of ``scenario.crash_slots`` are applied to the good implementation and
    conformance against the spec is checked on the fly.  The result
    :attr:`~SweepResult.confirmed` iff the protocol tolerates its declared
    ``f`` faults and no more.
    """
    from repro.protocols.faults import apply_faults

    if max_faults is None:
        max_faults = scenario.f + 1
    if max_faults > len(scenario.crash_slots):
        raise ValueError(
            f"scenario {scenario.name!r} declares {len(scenario.crash_slots)} "
            f"fault slots but the sweep wants {max_faults}"
        )
    points = []
    for k in range(max_faults + 1):
        implementation = apply_faults(scenario.system, scenario.crash_slots[:k])
        verdict = check_conformance(
            scenario.spec,
            implementation,
            notion,
            engine=engine,
            witness=True,
            max_pairs=max_pairs,
        )
        details = verdict.stats.details
        trace = details.get("trace")
        points.append(
            SweepPoint(
                faults=k,
                equivalent=verdict.equivalent,
                pairs_visited=details.get("pairs_visited", 0),
                trace=tuple(trace) if trace is not None else None,
                trace_verified=bool(details.get("trace_verified", False)),
            )
        )
    return SweepResult(
        scenario=scenario.name, tolerance=scenario.f, points=tuple(points)
    )
