"""The protocol checking harness: conformance, stuck states, tolerance sweeps.

Three verbs, all routed through the existing Section 6 machinery:

* :func:`check_conformance` -- spec-vs-implementation observational (or
  strong) equivalence via the engine's on-the-fly checker.  On failure the
  verdict carries a replay-verified distinguishing trace
  (:class:`~repro.engine.verdict.TraceWitness`) whenever verification
  succeeds, which for the deterministic crash faults of
  :mod:`repro.protocols.faults` is always.
* :func:`find_stuck` -- breadth-first reachability over the *lazy* product
  for deadlocks (states with no moves at all) and, when the exploration
  completes, livelocks (states that can never again reach an observable
  action).  The returned :class:`StuckReport` carries a shortest trace to
  the offending state, tau steps included.
* :func:`sweep_crashes` -- the fault-tolerance sweep: apply ``k`` crash
  faults from a scenario's declared fault slots for ``k = 0 .. f + 1`` and
  check conformance at each point, asserting equivalence up to ``f`` and
  inequivalence at ``f + 1`` -- both verdict polarities in one run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Union

from repro.core.fsp import TAU
from repro.explore.reduce import (
    Fingerprinter,
    normalize_frontier,
    normalize_reduction,
    prepare_operand,
)

__all__ = [
    "StuckReport",
    "SweepPoint",
    "SweepResult",
    "check_conformance",
    "find_stuck",
    "sweep_crashes",
]


def _engine(engine=None):
    if engine is not None:
        return engine
    from repro.engine import default_engine

    return default_engine()


def check_conformance(
    spec,
    implementation,
    notion: str = "observational",
    *,
    engine=None,
    witness: bool = True,
    max_pairs: Union[int, None] = None,
    reduction: str = "none",
    frontier: str = "exact",
):
    """Check ``implementation`` against ``spec`` on the fly; returns a Verdict.

    Both operands may be ``SystemSpec`` trees (the normal case), FSPs or
    implicit systems.  The verdict's ``details`` report the route and the
    number of product pairs visited; on inequivalence ``verdict.witness`` is
    a replay-verified distinguishing trace when verification succeeds.
    ``reduction`` / ``frontier`` select a sound state-space reduction and
    visited-set representation (see :mod:`repro.explore.reduce`).
    """
    return _engine(engine).check_on_the_fly(
        spec,
        implementation,
        notion,
        witness=witness,
        max_pairs=max_pairs,
        reduction=reduction,
        frontier=frontier,
    )


# ----------------------------------------------------------------------
# Deadlock / stuck-state reachability
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StuckReport:
    """A reachable stuck state of the composed system.

    ``kind`` is ``"deadlock"`` (no moves at all) or ``"livelock"`` (moves
    exist but no observable action is ever reachable again); ``trace`` is a
    shortest action sequence from the start (``tau`` steps included) and
    ``state`` the offending product state's name.
    """

    kind: str
    state: str
    trace: tuple[str, ...]
    states_explored: int
    complete: bool
    reduction: str = "none"


def find_stuck(
    system,
    *,
    limit: int = 50_000,
    livelocks: bool = True,
    reduction: str = "none",
    frontier: str = "compact",
) -> Union[StuckReport, None]:
    """Breadth-first search of the lazy product for deadlocks and livelocks.

    Explores at most ``limit`` states of ``system`` (a ``SystemSpec``, FSP or
    implicit system) without ever materialising it.  Deadlocks -- states with
    no outgoing moves -- are reported even from a truncated exploration;
    livelock detection needs the full reachable set, so it only runs when the
    exploration completed within ``limit``.  Returns the stuck state closest
    to the start (deadlocks take precedence), or None.

    ``reduction`` applies the state-space reductions of
    :mod:`repro.explore.reduce` -- this is a pure reachability search, so
    both confluence prioritisation and *any* declared symmetry (even
    index-permuting ones) preserve deadlock and livelock existence; under a
    non-label-preserving symmetry the reported state and trace are genuine
    modulo the symmetry (e.g. up to ring rotation of the indexed labels).
    The visited bookkeeping is hash-compacted by default
    (``frontier="compact"``): every per-state structure stores ~128-bit
    fingerprints instead of nested product states, so memory is bounded by
    ``limit`` small integers rather than ``limit`` deep tuples; the reported
    state is recovered by replaying the parent chain from the start, which
    doubles as the fingerprint-collision recheck.  ``frontier="exact"`` is
    the escape hatch that stores full states.

    Note that for one-shot protocols orderly termination *is* a state with no
    moves: the interesting question is then whether the reported trace
    contains the protocol's observable outcome (e.g. ``decide``) or the
    system wedged before reaching it.
    """
    mode = normalize_reduction(reduction)
    node = prepare_operand(system, mode, for_equivalence=False)
    compact = normalize_frontier(frontier) == "compact"
    fingerprint = Fingerprinter() if compact else None

    def key_of(state):
        return fingerprint(state) if compact else state

    start = node.initial()
    start_key = key_of(start)
    parents: dict = {start_key: None}
    order = [start_key]
    out_edges: dict = {}
    observable: set = set()
    first_deadlock = None
    complete = True
    queue = deque([start])
    while queue:
        state = queue.popleft()
        key = key_of(state)
        moves = tuple(node.successors(state))
        if not moves and first_deadlock is None:
            # Expansion follows discovery order, so the first empty state
            # seen here is the earliest in BFS order -- shortest trace.
            first_deadlock = (key, node.state_name(state))
        targets = []
        for action, target in moves:
            if action != TAU:
                observable.add(key)
            target_key = key_of(target)
            targets.append(target_key)
            if target_key in parents:
                continue
            if len(parents) >= limit:
                complete = False
                continue
            parents[target_key] = (key, action)
            order.append(target_key)
            queue.append(target)
        out_edges[key] = tuple(targets)

    def trace_to(key) -> tuple[str, ...]:
        actions: list[str] = []
        while parents[key] is not None:
            key, action = parents[key]
            actions.append(action)
        return tuple(reversed(actions))

    def state_name_of(key) -> str:
        # Recover the actual state behind a fingerprint by replaying the
        # parent chain from the start, matching action and fingerprint at
        # each step -- the collision recheck for compact frontiers.
        path: list = []  # (action, child_key) pairs, start -> key
        cursor = key
        while parents[cursor] is not None:
            parent_key, action = parents[cursor]
            path.append((action, cursor))
            cursor = parent_key
        path.reverse()
        state = start
        for action, child_key in path:
            for move_action, target in node.successors(state):
                if move_action == action and key_of(target) == child_key:
                    state = target
                    break
            else:
                raise RuntimeError(
                    "fingerprint replay failed to reconstruct the stuck state "
                    "(hash collision); re-run with frontier='exact'"
                )
        return node.state_name(state)

    def report(kind: str, key, name: Union[str, None] = None) -> StuckReport:
        return StuckReport(
            kind=kind,
            state=state_name_of(key) if name is None else name,
            trace=trace_to(key),
            states_explored=len(parents),
            complete=complete,
            reduction=mode,
        )

    if first_deadlock is not None:
        return report("deadlock", first_deadlock[0], first_deadlock[1])
    if not (livelocks and complete):
        return None
    # Backward closure from states with an observable move: anything outside
    # it can only ever do tau again -- a livelock (the exploration being
    # complete, "outside" is exact, not an artefact of truncation).
    reverse: dict = {key: [] for key in order}
    for key in order:
        for target_key in out_edges[key]:
            reverse[target_key].append(key)
    live = deque(observable)
    alive = set(observable)
    while live:
        key = live.popleft()
        for predecessor in reverse[key]:
            if predecessor not in alive:
                alive.add(predecessor)
                live.append(predecessor)
    for key in order:
        if key not in alive:
            return report("livelock", key)
    return None


# ----------------------------------------------------------------------
# Fault-tolerance sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One sweep cell: conformance after ``faults`` crash faults."""

    faults: int
    equivalent: bool
    pairs_visited: int
    trace: Union[tuple[str, ...], None]
    trace_verified: bool


@dataclass(frozen=True)
class SweepResult:
    """A fault-tolerance sweep over ``k = 0 .. max_faults`` crash faults."""

    scenario: str
    tolerance: int
    points: tuple[SweepPoint, ...]

    @property
    def breaks_at(self) -> Union[int, None]:
        """The smallest fault count at which conformance fails, if any."""
        for point in self.points:
            if not point.equivalent:
                return point.faults
        return None

    @property
    def confirmed(self) -> bool:
        """True iff equivalence holds through ``tolerance`` faults and the
        sweep either stopped there or broke at exactly ``tolerance + 1``."""
        for point in self.points:
            expected = point.faults <= self.tolerance
            if point.equivalent != expected:
                return False
        return True


def sweep_crashes(
    scenario,
    *,
    max_faults: Union[int, None] = None,
    notion: str = "observational",
    engine=None,
    max_pairs: Union[int, None] = None,
    reduction: str = "none",
    frontier: str = "exact",
) -> SweepResult:
    """Sweep crash faults over a library scenario's declared fault slots.

    ``scenario`` is a :class:`repro.protocols.library.Scenario`.  For each
    ``k`` up to ``max_faults`` (default ``scenario.f + 1``) the first ``k``
    of ``scenario.crash_slots`` are applied to the good implementation and
    conformance against the spec is checked on the fly.  The result
    :attr:`~SweepResult.confirmed` iff the protocol tolerates its declared
    ``f`` faults and no more.
    """
    from repro.protocols.faults import apply_faults

    if max_faults is None:
        max_faults = scenario.f + 1
    if max_faults > len(scenario.crash_slots):
        raise ValueError(
            f"scenario {scenario.name!r} declares {len(scenario.crash_slots)} "
            f"fault slots but the sweep wants {max_faults}"
        )
    points = []
    for k in range(max_faults + 1):
        implementation = apply_faults(scenario.system, scenario.crash_slots[:k])
        verdict = check_conformance(
            scenario.spec,
            implementation,
            notion,
            engine=engine,
            witness=True,
            max_pairs=max_pairs,
            reduction=reduction,
            frontier=frontier,
        )
        details = verdict.stats.details
        trace = details.get("trace")
        points.append(
            SweepPoint(
                faults=k,
                equivalent=verdict.equivalent,
                pairs_visited=details.get("pairs_visited", 0),
                trace=tuple(trace) if trace is not None else None,
                trace_verified=bool(details.get("trace_verified", False)),
            )
        )
    return SweepResult(
        scenario=scenario.name, tolerance=scenario.f, points=tuple(points)
    )
