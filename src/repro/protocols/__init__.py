"""Consensus-protocol frontend: role models compiled to checkable systems.

This package turns message-passing protocol descriptions -- roles as
parameterised state machines, quorum predicates as explicit counting
synchronisers, faults as composable tree rewrites -- into the
:mod:`repro.explore.system` composition trees that the library's
Kanellakis-Smolka checkers (partition refinement, observational equivalence,
on-the-fly products) already decide.  The layers:

* :mod:`repro.protocols.model` -- :class:`ProtocolSpec`, roles, typed
  send/recv/broadcast actions, quorums; ``instantiate(n, f)`` emits a
  ``SystemSpec``.
* :mod:`repro.protocols.faults` -- :class:`Crash`, :class:`Omission`,
  :class:`Byzantine`, :class:`Snag` applied by :func:`apply_fault` as pure
  spec-tree rewrites.
* :mod:`repro.protocols.check` -- spec-vs-implementation conformance on the
  fly, deadlock/livelock search over the lazy product, fault-tolerance
  sweeps.
* :mod:`repro.protocols.library` -- ready-made scenarios (two-phase commit,
  quorum voting, ring election, token passing), each with a known-good spec
  and a known-faulty mutant.

The canonical walkthrough -- two-phase commit conforms to its spec, the
mutant is caught with a verified trace, and a coordinator crash produces a
reachable deadlock:

>>> from repro.protocols import Crash, apply_fault, build_scenario
>>> from repro.protocols import check_conformance, find_stuck
>>> scenario = build_scenario("two_phase_commit", n=2)
>>> check_conformance(scenario.spec, scenario.system).equivalent
True
>>> verdict = check_conformance(scenario.spec, scenario.mutant)
>>> verdict.equivalent, verdict.witness is not None
(False, True)
>>> crashed = apply_fault(scenario.system, Crash("coordinator", 0))
>>> find_stuck(crashed).kind
'deadlock'
"""

from repro.protocols.check import (
    StuckReport,
    SweepPoint,
    SweepResult,
    check_conformance,
    find_stuck,
    sweep_crashes,
)
from repro.protocols.faults import (
    Byzantine,
    Crash,
    Fault,
    Omission,
    Snag,
    apply_fault,
    apply_faults,
    chaos_leaf,
    crash_leaf,
    fault_from_document,
    fault_to_document,
)
from repro.protocols.library import (
    SCENARIOS,
    Scenario,
    build_scenario,
    quorum_voting,
    ring_election,
    scenario_from_document,
    scenario_names,
    system_from_document,
    token_passing,
    two_phase_commit,
)
from repro.protocols.model import (
    Broadcast,
    Internal,
    Local,
    Machine,
    ProtocolSpec,
    Quorum,
    Recv,
    Role,
    RoleContext,
    Send,
    role_label,
)

__all__ = [
    "Broadcast",
    "Byzantine",
    "Crash",
    "Fault",
    "Internal",
    "Local",
    "Machine",
    "Omission",
    "ProtocolSpec",
    "Quorum",
    "Recv",
    "Role",
    "RoleContext",
    "SCENARIOS",
    "Scenario",
    "Send",
    "Snag",
    "StuckReport",
    "SweepPoint",
    "SweepResult",
    "apply_fault",
    "apply_faults",
    "build_scenario",
    "chaos_leaf",
    "check_conformance",
    "crash_leaf",
    "fault_from_document",
    "fault_to_document",
    "find_stuck",
    "quorum_voting",
    "ring_election",
    "role_label",
    "scenario_from_document",
    "scenario_names",
    "sweep_crashes",
    "system_from_document",
    "token_passing",
    "two_phase_commit",
]
