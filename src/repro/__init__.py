"""repro -- a reproduction of Kanellakis & Smolka's three problems of equivalence.

The library implements, end to end, the theory of *CCS Expressions, Finite
State Processes, and Three Problems of Equivalence* (Kanellakis & Smolka,
PODC 1983 / Information and Computation 1990):

* finite state processes and the full model hierarchy of the paper
  (:mod:`repro.core`);
* the generalized partitioning problem with the naive, Kanellakis-Smolka and
  Paige-Tarjan solvers (:mod:`repro.partition`);
* strong, observational, ``k``-observational, limited, language and failure
  equivalence, plus Hennessy-Milner distinguishing formulas and quotient
  minimisation (:mod:`repro.equivalence`);
* star expressions with their representative-FSP semantics and the CCS
  equivalence problem (:mod:`repro.expressions`);
* the hardness reductions of Sections 4 and 5 as executable constructions
  (:mod:`repro.reductions`);
* a CCS term calculus compiled to processes, classical automata algorithms,
  workload generators and serialisation utilities
  (:mod:`repro.ccs`, :mod:`repro.automata`, :mod:`repro.generators`,
  :mod:`repro.utils`);
* on-the-fly exploration of implicit and composed state spaces -- lazy
  Section 6 products, bounded materialisation, an early-exit equivalence
  checker and compositional minimisation (:mod:`repro.explore`).

The most common entry points are re-exported here so that::

    from repro import FSP, strongly_equivalent_processes, observationally_equivalent_processes

works without knowing the internal module layout.

Since the engine facade landed (:mod:`repro.engine`), the recommended entry
point for repeated queries is an :class:`Engine` (or the module-level
:func:`check` / :func:`check_many` on the shared default engine)::

    from repro import check

    verdict = check(p, q, "observational", witness=True)
    verdict.equivalent, verdict.witness, verdict.stats.seconds

The classic free functions remain available as thin shims over the same
engine, so existing callers keep working while sharing its caches.
"""

from repro.core.classify import ModelClass, classify
from repro.core.fsp import ACCEPT, EPSILON, FSP, TAU, FSPBuilder, from_transitions
from repro.engine import (
    BatchResult,
    Engine,
    Notion,
    Process,
    Verdict,
    Witness,
    available_notions,
    check,
    check_expressions,
    check_many,
    check_on_the_fly,
    default_engine,
    get_notion,
    register_notion,
)
from repro.equivalence.failure import (
    failure_equivalent,
    failure_equivalent_processes,
    failures_upto,
)
from repro.equivalence.hml import distinguishing_formula, satisfies
from repro.equivalence.kobs import (
    k_limited_equivalent,
    k_observational_equivalent,
    k_observational_equivalent_processes,
)
from repro.equivalence.language import language_equivalent, language_equivalent_processes
from repro.equivalence.minimize import minimize_observational, minimize_strong
from repro.equivalence.observational import (
    observational_partition,
    observationally_equivalent,
    observationally_equivalent_processes,
)
from repro.equivalence.strong import (
    strong_bisimulation_partition,
    strongly_equivalent,
    strongly_equivalent_processes,
)
from repro.expressions.ccs_equivalence import ccs_equivalent
from repro.expressions.parser import parse as parse_star_expression
from repro.expressions.semantics import representative_fsp
from repro.partition.generalized import GeneralizedPartitioningInstance, Solver, solve

__version__ = "1.9.0"

__all__ = [
    "ACCEPT",
    "BatchResult",
    "EPSILON",
    "Engine",
    "FSP",
    "FSPBuilder",
    "GeneralizedPartitioningInstance",
    "ModelClass",
    "Notion",
    "Process",
    "Solver",
    "TAU",
    "Verdict",
    "Witness",
    "available_notions",
    "ccs_equivalent",
    "check",
    "check_expressions",
    "check_many",
    "check_on_the_fly",
    "classify",
    "default_engine",
    "distinguishing_formula",
    "failure_equivalent",
    "failure_equivalent_processes",
    "failures_upto",
    "from_transitions",
    "get_notion",
    "k_limited_equivalent",
    "k_observational_equivalent",
    "k_observational_equivalent_processes",
    "language_equivalent",
    "language_equivalent_processes",
    "minimize_observational",
    "minimize_strong",
    "observational_partition",
    "observationally_equivalent",
    "observationally_equivalent_processes",
    "parse_star_expression",
    "register_notion",
    "representative_fsp",
    "satisfies",
    "solve",
    "strong_bisimulation_partition",
    "strongly_equivalent",
    "strongly_equivalent_processes",
    "__version__",
]
