"""Aldebaran (``.aut``) import/export.

The Aldebaran format is the lingua franca of LTS tooling (CADP, mCRL2,
ltsmin).  A file consists of a header::

    des (<initial-state>, <number-of-transitions>, <number-of-states>)

followed by one line per transition::

    (<from>, "<label>", <to>)

States are non-negative integers.  The format has no notion of accepting
states or extensions, so exporting a non-restricted process is lossy unless
``accepting_label`` is used: when set, an extra self-loop transition with that
label is emitted on every accepting state and recognised again on import.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP, TAU, FSPBuilder

#: Label conventionally used for the unobservable action in .aut files.
AUT_TAU_LABELS = frozenset({"tau", "i", "TAU"})

_TRANSITION_RE = re.compile(r'^\(\s*(\d+)\s*,\s*"?([^"]*?)"?\s*,\s*(\d+)\s*\)$')
_HEADER_RE = re.compile(r"^des\s*\(\s*(\d+)\s*,\s*(\d+)\s*,\s*(\d+)\s*\)$")


def dumps(fsp: FSP, accepting_label: str | None = None) -> str:
    """Serialise an FSP to the Aldebaran format.

    Parameters
    ----------
    fsp:
        The process to serialise.  State names are mapped to integers in
        sorted order with the start state first.
    accepting_label:
        When given, every accepting state receives a self-loop with this label
        so that acceptance information survives the round-trip.
    """
    ordered = [fsp.start] + sorted(fsp.states - {fsp.start})
    index = {state: i for i, state in enumerate(ordered)}
    lines = []
    for src, action, dst in sorted(fsp.transitions):
        label = "tau" if action == TAU else action
        lines.append(f'({index[src]}, "{label}", {index[dst]})')
    if accepting_label is not None:
        for state in sorted(fsp.accepting_states()):
            lines.append(f'({index[state]}, "{accepting_label}", {index[state]})')
    header = f"des (0, {len(lines)}, {len(ordered)})"
    return "\n".join([header, *lines]) + "\n"


def loads(text: str, accepting_label: str | None = None, all_accepting: bool = False) -> FSP:
    """Parse an Aldebaran file into an FSP.

    Parameters
    ----------
    text:
        The file contents.
    accepting_label:
        When given, self-loops with this label are interpreted as acceptance
        markers rather than transitions (the inverse of :func:`dumps`).
    all_accepting:
        Mark every state accepting (yielding a restricted process); useful
        when importing plain LTSs that carry no acceptance information.
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise InvalidProcessError("empty .aut document")
    header = _HEADER_RE.match(lines[0])
    if header is None:
        raise InvalidProcessError(f"malformed .aut header: {lines[0]!r}")
    initial, declared_transitions, declared_states = (int(g) for g in header.groups())
    builder = FSPBuilder()
    accepting: set[str] = set()
    seen_transitions = 0
    for line in lines[1:]:
        match = _TRANSITION_RE.match(line)
        if match is None:
            raise InvalidProcessError(f"malformed .aut transition: {line!r}")
        src, label, dst = match.group(1), match.group(2), match.group(3)
        seen_transitions += 1
        if accepting_label is not None and label == accepting_label and src == dst:
            accepting.add(src)
            builder.add_state(src)
            continue
        action = TAU if label in AUT_TAU_LABELS else label
        builder.add_transition(src, action, dst)
    if seen_transitions != declared_transitions:
        raise InvalidProcessError(
            f".aut header declares {declared_transitions} transitions, found {seen_transitions}"
        )
    for idx in range(declared_states):
        builder.add_state(str(idx))
    if all_accepting:
        builder.mark_all_accepting()
    else:
        builder.mark_accepting(*accepting)
    return builder.build(start=str(initial))


def dump(fsp: FSP, path: str | Path, accepting_label: str | None = None) -> None:
    """Write an FSP to ``path`` in Aldebaran format."""
    Path(path).write_text(dumps(fsp, accepting_label=accepting_label), encoding="utf-8")


def load(path: str | Path, accepting_label: str | None = None, all_accepting: bool = False) -> FSP:
    """Read an FSP from an Aldebaran file."""
    return loads(
        Path(path).read_text(encoding="utf-8"),
        accepting_label=accepting_label,
        all_accepting=all_accepting,
    )
