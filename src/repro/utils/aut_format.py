"""Aldebaran (``.aut``) import/export.

The Aldebaran format is the lingua franca of LTS tooling (CADP, mCRL2,
ltsmin).  A file consists of a header::

    des (<initial-state>, <number-of-transitions>, <number-of-states>)

followed by one line per transition::

    (<from>, "<label>", <to>)

States are non-negative integers.  The format has no notion of accepting
states or extensions, so exporting a non-restricted process is lossy unless
``accepting_label`` is used: when set, an extra self-loop transition with that
label is emitted on every accepting state and recognised again on import.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP, TAU, FSPBuilder

#: Label conventionally used for the unobservable action in .aut files.
AUT_TAU_LABELS = frozenset({"tau", "i", "TAU"})

_TRANSITION_RE = re.compile(r'^\(\s*(\d+)\s*,\s*"?([^"]*?)"?\s*,\s*(\d+)\s*\)$')
_HEADER_RE = re.compile(r"^des\s*\(\s*(\d+)\s*,\s*(\d+)\s*,\s*(\d+)\s*\)$")


def dumps(fsp: FSP, accepting_label: str | None = None) -> str:
    """Serialise an FSP to the Aldebaran format.

    Parameters
    ----------
    fsp:
        The process to serialise.  State names are mapped to integers in
        sorted order with the start state first.
    accepting_label:
        When given, every accepting state receives a self-loop with this label
        so that acceptance information survives the round-trip.
    """
    ordered = [fsp.start] + sorted(fsp.states - {fsp.start})
    index = {state: i for i, state in enumerate(ordered)}
    lines = []
    for src, action, dst in sorted(fsp.transitions):
        label = "tau" if action == TAU else action
        lines.append(f'({index[src]}, "{label}", {index[dst]})')
    if accepting_label is not None:
        for state in sorted(fsp.accepting_states()):
            lines.append(f'({index[state]}, "{accepting_label}", {index[state]})')
    header = f"des (0, {len(lines)}, {len(ordered)})"
    return "\n".join([header, *lines]) + "\n"


def loads(text: str, accepting_label: str | None = None, all_accepting: bool = False) -> FSP:
    """Parse an Aldebaran file into an FSP.

    Parameters
    ----------
    text:
        The file contents.
    accepting_label:
        When given, self-loops with this label are interpreted as acceptance
        markers rather than transitions (the inverse of :func:`dumps`).
    all_accepting:
        Mark every state accepting (yielding a restricted process); useful
        when importing plain LTSs that carry no acceptance information.
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        raise InvalidProcessError("empty .aut document")
    header = _HEADER_RE.match(lines[0])
    if header is None:
        raise InvalidProcessError(f"malformed .aut header: {lines[0]!r}")
    initial, declared_transitions, declared_states = (int(g) for g in header.groups())
    builder = FSPBuilder()
    accepting: set[str] = set()
    seen_transitions = 0
    for line in lines[1:]:
        match = _TRANSITION_RE.match(line)
        if match is None:
            raise InvalidProcessError(f"malformed .aut transition: {line!r}")
        src, label, dst = match.group(1), match.group(2), match.group(3)
        seen_transitions += 1
        if accepting_label is not None and label == accepting_label and src == dst:
            accepting.add(src)
            builder.add_state(src)
            continue
        action = TAU if label in AUT_TAU_LABELS else label
        builder.add_transition(src, action, dst)
    if seen_transitions != declared_transitions:
        raise InvalidProcessError(
            f".aut header declares {declared_transitions} transitions, found {seen_transitions}"
        )
    for idx in range(declared_states):
        builder.add_state(str(idx))
    if all_accepting:
        builder.mark_all_accepting()
    else:
        builder.mark_accepting(*accepting)
    return builder.build(start=str(initial))


def dump(fsp: FSP, path: str | Path, accepting_label: str | None = None) -> None:
    """Write an FSP to ``path`` in Aldebaran format."""
    Path(path).write_text(dumps(fsp, accepting_label=accepting_label), encoding="utf-8")


# ----------------------------------------------------------------------
# streaming CSR ingestion (the out-of-core path)
# ----------------------------------------------------------------------

#: number of transition lines parsed per chunk by :func:`load_csr`.
_CSR_CHUNK_LINES = 200_000


def _parse_transition_fast(line: str) -> tuple[int, str, int]:
    """Parse one ``(src, "label", dst)`` line without the regex machinery.

    The grammar is simple enough for ``str.split`` (~5x faster than the
    regex, which matters at ``10^6+`` lines); malformed lines fall back to
    the regex so error messages stay identical to :func:`loads`.
    """
    try:
        src_text, label, dst_text = line[1:-1].split(",", 2)
        label = label.strip()
        if label.startswith('"') and label.endswith('"') and len(label) >= 2:
            label = label[1:-1]
        return int(src_text), label, int(dst_text)
    except ValueError:
        match = _TRANSITION_RE.match(line)
        if match is None:
            raise InvalidProcessError(f"malformed .aut transition: {line!r}") from None
        return int(match.group(1)), match.group(2), int(match.group(3))


def load_csr(path: str | Path, mmap_dir: str | Path | None = None):
    """Stream an Aldebaran file straight into CSR edge arrays.

    This is the out-of-core ingestion path of the vectorized kernel: the
    file is parsed chunk by chunk and the edges land directly in numpy
    arrays -- no dict-of-frozensets FSP, no string state names, no
    per-transition Python objects retained.  With ``mmap_dir`` the arrays
    are :class:`~repro.utils.matrices.MmapCSR` memmaps on disk (two passes
    over the file: counting pass for the offsets, filling pass for the
    arcs), so an LTS bigger than RAM can be ingested and refined; without
    it a single in-memory pass builds a :class:`~repro.utils.matrices.CSRArrays`.

    Labels are interned to dense action ids in first-seen order;
    ``AUT_TAU_LABELS`` collapse to one tau action whose id is returned as
    ``tau_id`` (or ``-1``).  Returns ``(csr, action_names, tau_id)``.
    """
    from repro.utils.matrices import CSRArrays, MmapCSR, require_numpy

    np = require_numpy()
    path = Path(path)

    action_ids: dict[str, int] = {}
    action_names: list[str] = []

    def intern(label: str) -> int:
        if label in AUT_TAU_LABELS:
            label = "tau"
        action_id = action_ids.get(label)
        if action_id is None:
            action_id = len(action_names)
            action_ids[label] = action_id
            action_names.append(label)
        return action_id

    def chunks(handle):
        header = handle.readline()
        match = _HEADER_RE.match(header.strip())
        if match is None:
            raise InvalidProcessError(f"malformed .aut header: {header.strip()!r}")
        while True:
            lines = handle.readlines(_CSR_CHUNK_LINES * 24)
            if not lines:
                break
            rows = [
                _parse_transition_fast(stripped)
                for line in lines
                if (stripped := line.strip())
            ]
            if rows:
                yield (
                    np.array([row[0] for row in rows], dtype=np.int64),
                    np.array([intern(row[1]) for row in rows], dtype=np.int64),
                    np.array([row[2] for row in rows], dtype=np.int64),
                )

    with path.open("r", encoding="utf-8") as handle:
        header = _HEADER_RE.match(handle.readline().strip())
        if header is None:
            raise InvalidProcessError(f"malformed .aut header: {path.name}")
        initial, declared_transitions, declared_states = (int(g) for g in header.groups())

    n = declared_states
    if mmap_dir is None:
        src_parts, act_parts, dst_parts = [], [], []
        with path.open("r", encoding="utf-8") as handle:
            for src, act, dst in chunks(handle):
                src_parts.append(src)
                act_parts.append(act)
                dst_parts.append(dst)
        if src_parts:
            sources = np.concatenate(src_parts)
            actions = np.concatenate(act_parts)
            targets = np.concatenate(dst_parts)
        else:
            sources = actions = targets = np.zeros(0, dtype=np.int64)
        if len(sources) != declared_transitions:
            raise InvalidProcessError(
                f".aut header declares {declared_transitions} transitions, "
                f"found {len(sources)}"
            )
        if len(sources):
            n = max(n, int(sources.max()) + 1, int(targets.max()) + 1)
        n = max(n, initial + 1, 1)
        csr = CSRArrays.from_edges(
            n, max(len(action_names), 1), sources, actions, targets, start=initial
        )
    else:
        # Pass 1: count arcs per source (offsets) and intern the labels.
        n = max(n, initial + 1, 1)
        counts = np.zeros(n + 1, dtype=np.int64)
        seen = 0
        with path.open("r", encoding="utf-8") as handle:
            for src, act, dst in chunks(handle):
                seen += len(src)
                hi = int(max(src.max(), dst.max()))
                if hi >= n:
                    grown = np.zeros(hi + 2, dtype=np.int64)
                    grown[: len(counts)] = counts
                    counts = grown
                    n = hi + 1
                np.add.at(counts, src + 1, 1)
        if seen != declared_transitions:
            raise InvalidProcessError(
                f".aut header declares {declared_transitions} transitions, found {seen}"
            )
        store = MmapCSR.create(
            mmap_dir, n, max(len(action_names), 1), seen, start=initial
        )
        np.cumsum(counts[: n + 1], out=store.offsets)
        # Pass 2: scatter each chunk's arcs into its source slices.
        cursor = store.offsets[:-1].copy()
        with path.open("r", encoding="utf-8") as handle:
            for src, act, dst in chunks(handle):
                order = np.lexsort((dst, act, src))
                src, act, dst = src[order], act[order], dst[order]
                slots = _chunk_slots(np, cursor, src)
                store.actions[slots] = act
                store.targets[slots] = dst
        _sort_state_slices(np, store)
        store.flush()
        csr = store
    return csr, tuple(action_names), action_ids.get("tau", -1)


def _chunk_slots(np, cursor, src):
    """Per-arc destination slots for one sorted chunk, advancing ``cursor``.

    ``cursor[s]`` is the next free slot of state ``s``'s CSR slice; the chunk
    is sorted by source, so each state's arcs occupy consecutive slots:
    ``slot[i] = cursor[src[i]] + (rank of i within its source run)``.
    """
    counts = np.bincount(src, minlength=len(cursor))
    run_starts = np.ones(len(src), dtype=bool)
    run_starts[1:] = src[1:] != src[:-1]
    run_index = np.flatnonzero(run_starts)
    within = np.arange(len(src), dtype=np.int64) - np.repeat(
        run_index, np.diff(np.concatenate([run_index, [len(src)]]))
    )
    slots = cursor[src] + within
    cursor += counts
    return slots


def _sort_state_slices(np, store) -> None:
    """Restore the canonical per-state ``(action, target)`` sort order.

    Chunked scattering preserves source grouping but interleaves chunks
    within a state's slice; one global stable sort keyed by
    ``(source, action, target)`` fixes every slice at ``O(m log m)``.
    """
    m = len(store.targets)
    if m == 0:
        return
    sources = np.repeat(np.arange(store.n, dtype=np.int64), np.diff(store.offsets))
    order = np.lexsort((store.targets[:], store.actions[:], sources))
    store.actions[:] = store.actions[:][order]
    store.targets[:] = store.targets[:][order]


def load(path: str | Path, accepting_label: str | None = None, all_accepting: bool = False) -> FSP:
    """Read an FSP from an Aldebaran file."""
    return loads(
        Path(path).read_text(encoding="utf-8"),
        accepting_label=accepting_label,
        all_accepting=all_accepting,
    )
