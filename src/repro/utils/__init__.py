"""Utilities: matrix formulation of saturation, Aldebaran and JSON I/O, DOT export."""

from repro.utils import aut_format, dot, matrices, serialization

__all__ = ["aut_format", "dot", "matrices", "serialization"]
