"""Graphviz DOT export for finite state processes.

Rendering is not required by any algorithm; the export exists so that users of
the library can inspect counterexamples and the paper's constructions visually
(``dot -Tpng``), and so that the examples can emit figures.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.fsp import FSP, TAU


def _escape(label: str) -> str:
    return label.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(fsp: FSP, name: str = "fsp", rankdir: str = "LR") -> str:
    """Render an FSP as a DOT digraph.

    Accepting states (extension containing ``x``) are drawn with a double
    circle, mirroring automata conventions; other non-empty extensions are
    appended to the node label.  Tau-transitions are drawn dashed.
    """
    lines = [f"digraph {name} {{", f"  rankdir={rankdir};", "  node [shape=circle];"]
    lines.append(f'  __start [shape=point, label=""];')
    lines.append(f'  __start -> "{_escape(fsp.start)}";')
    for state in sorted(fsp.states):
        extension = sorted(fsp.extension(state))
        shape = "doublecircle" if fsp.is_accepting(state) else "circle"
        extras = [variable for variable in extension if variable != "x"]
        label = _escape(state)
        if extras:
            label = f"{label}\\n{{{', '.join(extras)}}}"
        lines.append(f'  "{_escape(state)}" [shape={shape}, label="{label}"];')
    for src, action, dst in sorted(fsp.transitions):
        style = ', style=dashed' if action == TAU else ""
        lines.append(f'  "{_escape(src)}" -> "{_escape(dst)}" [label="{_escape(action)}"{style}];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(fsp: FSP, path: str | Path, name: str = "fsp") -> None:
    """Write the DOT rendering of ``fsp`` to ``path``."""
    Path(path).write_text(to_dot(fsp, name=name), encoding="utf-8")
