"""Adjacency-matrix helpers used by the Theorem 4.1(a) saturation benchmark.

The paper's complexity analysis of observational equivalence expresses the
tau-closure and the weak transition relation through boolean matrix products
(``M_sigma_hat = M_epsilon . M_sigma . M_epsilon``) so that fast matrix
multiplication gives the ``n^2.376`` term of Theorem 4.1(a).  The library's
default implementation (:mod:`repro.core.derivatives`) uses graph traversal,
which is simpler and faster for the sparse processes we generate; this module
provides the matrix formulation so that the benchmark harness can reproduce
the construction exactly as described and cross-check the two.

``numpy`` is an optional dependency here: the functions fall back to pure
Python when it is unavailable.
"""

from __future__ import annotations

from collections.abc import Sequence

try:  # pragma: no cover - exercised implicitly depending on environment
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.fsp import FSP, TAU


def state_index(fsp: FSP) -> dict[str, int]:
    """A deterministic state -> row/column index mapping (sorted by name)."""
    return {state: idx for idx, state in enumerate(sorted(fsp.states))}


def adjacency_matrix(fsp: FSP, action: str) -> list[list[bool]]:
    """The boolean adjacency matrix ``M_action`` of the ``->^action`` relation."""
    index = state_index(fsp)
    size = len(index)
    matrix = [[False] * size for _ in range(size)]
    for src, act, dst in fsp.transitions:
        if act == action:
            matrix[index[src]][index[dst]] = True
    return matrix


def boolean_multiply(
    left: Sequence[Sequence[bool]], right: Sequence[Sequence[bool]]
) -> list[list[bool]]:
    """Boolean matrix product.  Uses numpy when available."""
    size = len(left)
    if _np is not None:
        a = _np.array(left, dtype=bool)
        b = _np.array(right, dtype=bool)
        return (a @ b).astype(bool).tolist()
    result = [[False] * size for _ in range(size)]
    for i in range(size):
        row = left[i]
        out = result[i]
        for k in range(size):
            if row[k]:
                rrow = right[k]
                for j in range(size):
                    if rrow[j]:
                        out[j] = True
    return result


def reflexive_transitive_closure(matrix: Sequence[Sequence[bool]]) -> list[list[bool]]:
    """The reflexive-transitive closure of a boolean relation (Warshall).

    This is the ``M_epsilon`` of Theorem 4.1(a): the closure of the
    tau-adjacency matrix.
    """
    size = len(matrix)
    closure = [list(row) for row in matrix]
    for i in range(size):
        closure[i][i] = True
    for k in range(size):
        row_k = closure[k]
        for i in range(size):
            if closure[i][k]:
                row_i = closure[i]
                for j in range(size):
                    if row_k[j]:
                        row_i[j] = True
    return closure


def weak_transition_matrices(fsp: FSP) -> dict[str, list[list[bool]]]:
    """The matrices of the weak relations ``=>^sigma`` for every observable action.

    Implements the two-step procedure in the proof of Theorem 4.1(a):

    1. compute ``M_epsilon``, the reflexive-transitive closure of the tau
       relation;
    2. for each observable ``sigma``, compute ``M_epsilon . M_sigma . M_epsilon``.

    The result also contains the ``M_epsilon`` matrix under the key ``""``.
    """
    tau_matrix = adjacency_matrix(fsp, TAU)
    epsilon = reflexive_transitive_closure(tau_matrix)
    result: dict[str, list[list[bool]]] = {"": epsilon}
    for action in fsp.alphabet:
        sigma = adjacency_matrix(fsp, action)
        result[action] = boolean_multiply(boolean_multiply(epsilon, sigma), epsilon)
    return result


def matrix_to_pairs(fsp: FSP, matrix: Sequence[Sequence[bool]]) -> frozenset[tuple[str, str]]:
    """Convert a boolean matrix back to a set of (source, target) state pairs."""
    names = sorted(fsp.states)
    pairs = set()
    for i, src in enumerate(names):
        row = matrix[i]
        for j, dst in enumerate(names):
            if row[j]:
                pairs.add((src, dst))
    return frozenset(pairs)
