"""Matrix and array representations of transition systems.

Two families of helpers live here:

* **Dense boolean matrices** (the bottom half of the module) -- the paper's
  complexity analysis of observational equivalence expresses the tau-closure
  and the weak transition relation through boolean matrix products
  (``M_sigma_hat = M_epsilon . M_sigma . M_epsilon``) so that fast matrix
  multiplication gives the ``n^2.376`` term of Theorem 4.1(a).  The library's
  default implementation (:mod:`repro.core.derivatives`) uses graph
  traversal; the matrix formulation is kept so the benchmark harness can
  reproduce the construction exactly as described and cross-check the two.

* **Contiguous CSR edge arrays** (:class:`CSRArrays` / :class:`MmapCSR`) --
  the numpy-backed edge representation the vectorized partition kernel
  (:mod:`repro.partition.vectorized`) refines.  ``CSRArrays`` holds the
  ``fwd_offsets`` / ``fwd_actions`` / ``fwd_targets`` layout of
  :class:`repro.core.lts.LTS` as ``int64`` ndarrays (zero-copy from an
  interned LTS where possible); :class:`MmapCSR` is the same layout backed
  by ``numpy.memmap`` files on disk, so LTSs whose edge arrays exceed RAM
  (the ``n = 10^6``--``10^7`` tier of the ROADMAP) can still be refined:
  the refinement's working set is ``O(n)`` index arrays while the edges
  stream from disk through the page cache.

``numpy`` is an optional dependency here: the dense-matrix functions fall
back to pure Python when it is unavailable, and the CSR classes raise a
clear error (:func:`require_numpy`) instead of failing on import.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

try:  # pragma: no cover - exercised implicitly depending on environment
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP, TAU

HAVE_NUMPY = _np is not None


def require_numpy():
    """Return the numpy module, raising a clear error when it is missing.

    The vectorized backends are optional accelerators; every caller keeps a
    pure-Python route, so the error message points at the ``backend``
    parameter rather than demanding an install.
    """
    if _np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError(
            "numpy is required for the vectorized backend; "
            "use backend='python' or install numpy"
        )
    return _np


class CSRArrays:
    """Numpy CSR edge arrays: the input of the vectorized partition kernel.

    The layout mirrors :class:`repro.core.lts.LTS` exactly --
    ``offsets[s] .. offsets[s+1]`` indexes the arcs leaving state ``s`` in the
    parallel ``actions`` / ``targets`` arrays, and within a state's slice the
    arcs are sorted by ``(action, target)`` with no duplicates -- but the
    arrays are ``int64`` ndarrays (or memmaps, see :class:`MmapCSR`), so the
    refinement loops run as whole-array numpy operations instead of
    per-element Python bytecode.  No string names are carried: at the
    ``10^6``-state tier a tuple of a million interned strings costs more than
    the edges themselves, so the vector kernel works purely on integers and
    callers translate at the boundary when they need names.
    """

    __slots__ = ("n", "num_actions", "offsets", "actions", "targets", "start")

    def __init__(self, n, num_actions, offsets, actions, targets, start=0):
        np = require_numpy()
        self.n = int(n)
        self.num_actions = int(num_actions)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.actions = np.asarray(actions, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        self.start = int(start)
        if len(self.offsets) != self.n + 1:
            raise InvalidProcessError("CSR offsets must have length n + 1")
        if len(self.actions) != len(self.targets):
            raise InvalidProcessError("CSR action/target arrays disagree in length")
        if self.n and int(self.offsets[-1]) != len(self.targets):
            raise InvalidProcessError("CSR offsets do not match the arc arrays")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_lts(cls, lts) -> "CSRArrays":
        """Adopt an interned :class:`~repro.core.lts.LTS` (zero-copy).

        ``array('l')`` and ``int64`` share a memory layout on the supported
        platforms, so the ndarrays are views over the LTS's buffers, not
        copies.
        """
        np = require_numpy()
        return cls(
            lts.n,
            lts.num_actions,
            np.frombuffer(lts.fwd_offsets, dtype=np.int64)
            if len(lts.fwd_offsets)
            else np.zeros(1, dtype=np.int64),
            np.frombuffer(lts.fwd_actions, dtype=np.int64)
            if len(lts.fwd_actions)
            else np.zeros(0, dtype=np.int64),
            np.frombuffer(lts.fwd_targets, dtype=np.int64)
            if len(lts.fwd_targets)
            else np.zeros(0, dtype=np.int64),
            start=lts.start,
        )

    @classmethod
    def from_edges(cls, n, num_actions, sources, actions, targets, start=0) -> "CSRArrays":
        """Build the canonical CSR layout from unsorted edge triples.

        Sorts by ``(source, action, target)`` and removes duplicates -- the
        vectorized equivalent of the :class:`~repro.core.lts.LTS` edge-triple
        constructor, at ``O(m log m)`` whole-array cost.
        """
        np = require_numpy()
        sources = np.asarray(sources, dtype=np.int64)
        actions = np.asarray(actions, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if len(sources):
            if int(sources.min()) < 0 or int(sources.max()) >= n:
                raise InvalidProcessError("edge with an out-of-range source state")
            if int(targets.min()) < 0 or int(targets.max()) >= n:
                raise InvalidProcessError("edge with an out-of-range target state")
            if int(actions.min()) < 0 or int(actions.max()) >= num_actions:
                raise InvalidProcessError("edge with an out-of-range action")
            order = np.lexsort((targets, actions, sources))
            sources, actions, targets = sources[order], actions[order], targets[order]
            keep = np.ones(len(sources), dtype=bool)
            keep[1:] = (
                (sources[1:] != sources[:-1])
                | (actions[1:] != actions[:-1])
                | (targets[1:] != targets[:-1])
            )
            sources, actions, targets = sources[keep], actions[keep], targets[keep]
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(sources, minlength=n), out=offsets[1:])
        return cls(n, num_actions, offsets, actions, targets, start=start)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_transitions(self) -> int:
        return int(len(self.targets))

    def sources(self):
        """Per-arc source states, expanded from the offsets (``O(m)``)."""
        np = require_numpy()
        return np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.offsets))

    def equal(self, other: "CSRArrays") -> bool:
        """Exact structural equality of two CSR edge sets (mmap-safe)."""
        np = require_numpy()
        return (
            self.n == other.n
            and self.num_actions == other.num_actions
            and self.start == other.start
            and np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.actions, other.actions)
            and np.array_equal(self.targets, other.targets)
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, m={self.num_transitions}, "
            f"actions={self.num_actions})"
        )


class MmapCSR(CSRArrays):
    """:class:`CSRArrays` whose arrays are ``numpy.memmap`` files on disk.

    A store is a directory with three ``.npy`` files (``offsets.npy``,
    ``actions.npy``, ``targets.npy``) and a ``meta.json`` carrying
    ``(n, num_actions, start)``.  :meth:`create` pre-allocates the files so a
    streaming producer (the ``.aut`` ingester, a generator) can fill them
    chunk by chunk without ever holding the edge set in RAM; :meth:`open`
    maps an existing store read-only.  Everything a :class:`CSRArrays`
    accepts works on the mapped arrays, so the vectorized refinement runs
    unchanged on top -- the OS pages edges in and out as the per-round
    gathers touch them.
    """

    META_NAME = "meta.json"

    @classmethod
    def create(cls, directory, n, num_actions, num_transitions, start=0) -> "MmapCSR":
        """Pre-allocate a writable store for a known-size edge set."""
        np = require_numpy()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        offsets = np.lib.format.open_memmap(
            directory / "offsets.npy", mode="w+", dtype=np.int64, shape=(n + 1,)
        )
        actions = np.lib.format.open_memmap(
            directory / "actions.npy", mode="w+", dtype=np.int64, shape=(num_transitions,)
        )
        targets = np.lib.format.open_memmap(
            directory / "targets.npy", mode="w+", dtype=np.int64, shape=(num_transitions,)
        )
        (directory / cls.META_NAME).write_text(
            json.dumps({"n": int(n), "num_actions": int(num_actions), "start": int(start)}),
            encoding="utf-8",
        )
        store = cls.__new__(cls)
        store.n = int(n)
        store.num_actions = int(num_actions)
        store.offsets = offsets
        store.actions = actions
        store.targets = targets
        store.start = int(start)
        return store

    @classmethod
    def open(cls, directory, mode: str = "r") -> "MmapCSR":
        """Map an existing store (read-only by default)."""
        np = require_numpy()
        directory = Path(directory)
        meta = json.loads((directory / cls.META_NAME).read_text(encoding="utf-8"))
        store = cls.__new__(cls)
        store.n = int(meta["n"])
        store.num_actions = int(meta["num_actions"])
        store.start = int(meta.get("start", 0))
        store.offsets = np.load(directory / "offsets.npy", mmap_mode=mode)
        store.actions = np.load(directory / "actions.npy", mmap_mode=mode)
        store.targets = np.load(directory / "targets.npy", mmap_mode=mode)
        return store

    def flush(self) -> None:
        """Flush writable maps to disk (no-op for read-only maps)."""
        for arr in (self.offsets, self.actions, self.targets):
            if hasattr(arr, "flush"):
                arr.flush()


def state_index(fsp: FSP) -> dict[str, int]:
    """A deterministic state -> row/column index mapping (sorted by name)."""
    return {state: idx for idx, state in enumerate(sorted(fsp.states))}


def adjacency_matrix(fsp: FSP, action: str) -> list[list[bool]]:
    """The boolean adjacency matrix ``M_action`` of the ``->^action`` relation."""
    index = state_index(fsp)
    size = len(index)
    matrix = [[False] * size for _ in range(size)]
    for src, act, dst in fsp.transitions:
        if act == action:
            matrix[index[src]][index[dst]] = True
    return matrix


def boolean_multiply(
    left: Sequence[Sequence[bool]], right: Sequence[Sequence[bool]]
) -> list[list[bool]]:
    """Boolean matrix product.  Uses numpy when available."""
    size = len(left)
    if _np is not None:
        a = _np.array(left, dtype=bool)
        b = _np.array(right, dtype=bool)
        return (a @ b).astype(bool).tolist()
    result = [[False] * size for _ in range(size)]
    for i in range(size):
        row = left[i]
        out = result[i]
        for k in range(size):
            if row[k]:
                rrow = right[k]
                for j in range(size):
                    if rrow[j]:
                        out[j] = True
    return result


def reflexive_transitive_closure(matrix: Sequence[Sequence[bool]]) -> list[list[bool]]:
    """The reflexive-transitive closure of a boolean relation (Warshall).

    This is the ``M_epsilon`` of Theorem 4.1(a): the closure of the
    tau-adjacency matrix.
    """
    size = len(matrix)
    closure = [list(row) for row in matrix]
    for i in range(size):
        closure[i][i] = True
    for k in range(size):
        row_k = closure[k]
        for i in range(size):
            if closure[i][k]:
                row_i = closure[i]
                for j in range(size):
                    if row_k[j]:
                        row_i[j] = True
    return closure


def weak_transition_matrices(fsp: FSP) -> dict[str, list[list[bool]]]:
    """The matrices of the weak relations ``=>^sigma`` for every observable action.

    Implements the two-step procedure in the proof of Theorem 4.1(a):

    1. compute ``M_epsilon``, the reflexive-transitive closure of the tau
       relation;
    2. for each observable ``sigma``, compute ``M_epsilon . M_sigma . M_epsilon``.

    The result also contains the ``M_epsilon`` matrix under the key ``""``.
    """
    tau_matrix = adjacency_matrix(fsp, TAU)
    epsilon = reflexive_transitive_closure(tau_matrix)
    result: dict[str, list[list[bool]]] = {"": epsilon}
    for action in fsp.alphabet:
        sigma = adjacency_matrix(fsp, action)
        result[action] = boolean_multiply(boolean_multiply(epsilon, sigma), epsilon)
    return result


def matrix_to_pairs(fsp: FSP, matrix: Sequence[Sequence[bool]]) -> frozenset[tuple[str, str]]:
    """Convert a boolean matrix back to a set of (source, target) state pairs."""
    names = sorted(fsp.states)
    pairs = set()
    for i, src in enumerate(names):
        row = matrix[i]
        for j, dst in enumerate(names):
            if row[j]:
                pairs.add((src, dst))
    return frozenset(pairs)
