"""Lossless JSON serialisation of finite state processes.

Unlike the Aldebaran format (:mod:`repro.utils.aut_format`) the JSON encoding
preserves every component of Definition 2.1.1: state names, the start state,
the alphabet, the full variable set and the extension relation.  The format is
a plain dictionary so it can be embedded in larger experiment-description
files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP

#: Version tag embedded in serialised documents so future format changes can
#: remain backward compatible.
FORMAT_VERSION = 1


def to_dict(fsp: FSP) -> dict[str, Any]:
    """Encode an FSP as a JSON-compatible dictionary."""
    return {
        "format": "repro-fsp",
        "version": FORMAT_VERSION,
        "states": sorted(fsp.states),
        "start": fsp.start,
        "alphabet": sorted(fsp.alphabet),
        "variables": sorted(fsp.variables),
        "transitions": sorted([list(t) for t in fsp.transitions]),
        "extensions": sorted([list(e) for e in fsp.extensions]),
    }


def from_dict(document: dict[str, Any]) -> FSP:
    """Decode an FSP from a dictionary produced by :func:`to_dict`."""
    if document.get("format") != "repro-fsp":
        raise InvalidProcessError("document is not a serialised FSP")
    if int(document.get("version", 0)) > FORMAT_VERSION:
        raise InvalidProcessError(
            f"document version {document.get('version')} is newer than supported {FORMAT_VERSION}"
        )
    return FSP(
        states=document["states"],
        start=document["start"],
        alphabet=document.get("alphabet", []),
        transitions=[tuple(t) for t in document.get("transitions", [])],
        variables=document.get("variables", ["x"]),
        extensions=[tuple(e) for e in document.get("extensions", [])],
    )


def dumps(fsp: FSP, indent: int | None = 2) -> str:
    """Serialise an FSP to a JSON string."""
    return json.dumps(to_dict(fsp), indent=indent, ensure_ascii=False)


def loads(text: str) -> FSP:
    """Deserialise an FSP from a JSON string."""
    return from_dict(json.loads(text))


def dump(fsp: FSP, path: str | Path) -> None:
    """Write an FSP to ``path`` as JSON."""
    Path(path).write_text(dumps(fsp), encoding="utf-8")


def load(path: str | Path) -> FSP:
    """Read an FSP from a JSON file."""
    return loads(Path(path).read_text(encoding="utf-8"))
