"""Lossless JSON serialisation of finite state processes, plus file dispatch.

Unlike the Aldebaran format (:mod:`repro.utils.aut_format`) the JSON encoding
preserves every component of Definition 2.1.1: state names, the start state,
the alphabet, the full variable set and the extension relation.  The format is
a plain dictionary so it can be embedded in larger experiment-description
files.

:func:`load_process_file` / :func:`save_process_file` dispatch on the file
extension across every on-disk format the library speaks (JSON, Aldebaran
``.aut``, Graphviz ``.dot``); unknown extensions are rejected with an error
that lists the supported formats instead of being silently parsed as JSON.
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP

#: Version tag embedded in serialised documents so future format changes can
#: remain backward compatible.
FORMAT_VERSION = 1


def to_dict(fsp: FSP) -> dict[str, Any]:
    """Encode an FSP as a JSON-compatible dictionary."""
    return {
        "format": "repro-fsp",
        "version": FORMAT_VERSION,
        "states": sorted(fsp.states),
        "start": fsp.start,
        "alphabet": sorted(fsp.alphabet),
        "variables": sorted(fsp.variables),
        "transitions": sorted([list(t) for t in fsp.transitions]),
        "extensions": sorted([list(e) for e in fsp.extensions]),
    }


def from_dict(document: dict[str, Any]) -> FSP:
    """Decode an FSP from a dictionary produced by :func:`to_dict`."""
    if document.get("format") != "repro-fsp":
        raise InvalidProcessError("document is not a serialised FSP")
    if int(document.get("version", 0)) > FORMAT_VERSION:
        raise InvalidProcessError(
            f"document version {document.get('version')} is newer than supported {FORMAT_VERSION}"
        )
    return FSP(
        states=document["states"],
        start=document["start"],
        alphabet=document.get("alphabet", []),
        transitions=[tuple(t) for t in document.get("transitions", [])],
        variables=document.get("variables", ["x"]),
        extensions=[tuple(e) for e in document.get("extensions", [])],
    )


def canonical_bytes(fsp: FSP) -> bytes:
    """The canonical byte encoding an FSP is digested over.

    Built from :func:`to_dict` -- which sorts the state set, alphabet,
    variables, transitions and extensions -- rendered as minimal-separator
    JSON with sorted keys, so two structurally equal FSPs (however their
    components were ordered at construction) produce identical bytes.
    """
    return json.dumps(to_dict(fsp), sort_keys=True, separators=(",", ":")).encode("utf-8")


def content_digest(fsp: FSP) -> str:
    """The content address of an FSP: ``sha256:<hex>`` over :func:`canonical_bytes`.

    Structurally equal processes share one digest regardless of the order
    their states/transitions were supplied in; any semantic difference (a
    state, arc, extension, start or alphabet change) produces a new digest.
    This is the key of :class:`repro.service.store.ProcessStore` and the
    shard-routing hash of :class:`repro.service.shards.ShardPool`.
    """
    return "sha256:" + hashlib.sha256(canonical_bytes(fsp)).hexdigest()


def dumps(fsp: FSP, indent: int | None = 2) -> str:
    """Serialise an FSP to a JSON string."""
    return json.dumps(to_dict(fsp), indent=indent, ensure_ascii=False)


def loads(text: str) -> FSP:
    """Deserialise an FSP from a JSON string."""
    return from_dict(json.loads(text))


def dump(fsp: FSP, path: str | Path) -> None:
    """Write an FSP to ``path`` as JSON."""
    Path(path).write_text(dumps(fsp), encoding="utf-8")


def load(path: str | Path) -> FSP:
    """Read an FSP from a JSON file."""
    return loads(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# extension-dispatched process files
# ----------------------------------------------------------------------
#: extension -> human-readable description, for the formats processes can be
#: *read* from / *written* to.  ``.dot`` is rendering-only: Graphviz output
#: drops the extension relation, so reading it back would be lossy.
LOADABLE_FORMATS = {
    ".json": "repro JSON (lossless)",
    ".aut": "Aldebaran .aut (accepting states via the ACCEPTING label)",
}
SAVABLE_FORMATS = {
    **LOADABLE_FORMATS,
    ".dot": "Graphviz DOT (write-only rendering)",
}

#: The self-loop label used to round-trip acceptance through ``.aut`` files
#: (the format itself has no accepting states).  Plain ``.aut`` files without
#: the marker load as restricted processes (every state accepting), the
#: conventional reading of LTS interchange files.
AUT_ACCEPTING_LABEL = "ACCEPTING"

_AUT_ACCEPTING_RE = re.compile(r',\s*"?' + AUT_ACCEPTING_LABEL + r'"?\s*,')


def _aut_has_accepting_marker(text: str) -> bool:
    return _AUT_ACCEPTING_RE.search(text) is not None


def _supported(formats: dict[str, str]) -> str:
    return "; ".join(f"{ext} = {what}" for ext, what in sorted(formats.items()))


def load_process_file(path: str | Path) -> FSP:
    """Load a process from a file, dispatching on its extension.

    Raises
    ------
    InvalidProcessError
        If the extension is not a loadable process format (unknown
        extensions are *not* guessed to be JSON).
    """
    from repro.utils import aut_format

    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        return load(path)
    if suffix == ".aut":
        text = path.read_text(encoding="utf-8")
        if _aut_has_accepting_marker(text):
            return aut_format.loads(text, accepting_label=AUT_ACCEPTING_LABEL)
        return aut_format.loads(text, all_accepting=True)
    if suffix == ".dot":
        raise InvalidProcessError(
            f"cannot load {path}: .dot is a write-only rendering format; "
            f"loadable formats: {_supported(LOADABLE_FORMATS)}"
        )
    raise InvalidProcessError(
        f"cannot load {path}: unsupported extension {suffix or '(none)'!r}; "
        f"loadable formats: {_supported(LOADABLE_FORMATS)}"
    )


def save_process_file(fsp: FSP, path: str | Path) -> None:
    """Write a process to a file, dispatching on its extension.

    Raises
    ------
    InvalidProcessError
        If the extension is not a supported output format.
    """
    from repro.utils import aut_format, dot

    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        dump(fsp, path)
    elif suffix == ".aut":
        aut_format.dump(fsp, path, accepting_label=AUT_ACCEPTING_LABEL)
    elif suffix == ".dot":
        dot.write_dot(fsp, path)
    else:
        raise InvalidProcessError(
            f"cannot write {path}: unsupported extension {suffix or '(none)'!r}; "
            f"supported formats: {_supported(SAVABLE_FORMATS)}"
        )
