"""Command-line interface: ``python -m repro <command> ...``.

The CLI is a thin shell over the engine facade (:mod:`repro.engine`): one
shared :class:`~repro.engine.engine.Engine` per invocation, so every command
benefits from cached process handles and verdicts.  Operations work on
serialised processes (JSON via :mod:`repro.utils.serialization` or Aldebaran
``.aut``, selected by file extension; unknown extensions are rejected with
the list of supported formats):

``classify``      print the model classes of a process (Fig. 1a hierarchy)
``check``         decide an equivalence between two processes' start states
                  (``--on-the-fly`` explores the pair space lazily instead of
                  materialising quotients)
``batch``         run a JSON manifest of checks through the shared caches
``minimize``      write the strong or observational quotient of a process
``convert``       convert between JSON, ``.aut`` and DOT
``expr``          decide the CCS equivalence problem for two star expressions
``ccs``           compile a CCS term (with optional definitions file) to a process
``explore``       on-the-fly operations on composed systems described by JSON
                  system files (stats/materialize/check/minimize), see
                  :mod:`repro.explore`
``protocol``      consensus-protocol scenarios (:mod:`repro.protocols`):
                  instantiate/check/sweep over JSON scenario files
``serve``         run the sharded equivalence service (:mod:`repro.service`)
``client``        talk to a running service (ping/store/check/stats/...)
``cluster``       multi-node fabric (:mod:`repro.cluster`): serve-node /
                  serve-gateway / client over the HTTP gateway

The ``--notion`` choices are read from the engine's notion registry, so
notions registered by plugins are immediately available.  Every command
prints a human-readable verdict and uses the exit status to report boolean
answers (0 = equivalent / success, 1 = not equivalent, 2 = usage or input
error), so the tool can be scripted; ``--version`` prints the library
version.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import __version__
from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.semantics import compile_to_fsp
from repro.core.classify import classify
from repro.core.errors import ReproError
from repro.core.fsp import FSP
from repro.engine import Verdict, available_notions, default_engine, expression_notions
from repro.partition.generalized import BACKENDS
from repro.utils.serialization import load_process_file, save_process_file

#: Exit code used for "the answer is: not equivalent".
EXIT_INEQUIVALENT = 1
#: Exit code used for malformed input or usage errors.
EXIT_ERROR = 2


def load_process(path: str | Path) -> FSP:
    """Load a process from a ``.json`` or ``.aut`` file (by extension)."""
    return load_process_file(path)


def save_process(process: FSP, path: str | Path) -> None:
    """Write a process to ``.json``, ``.aut`` or ``.dot`` (by extension)."""
    save_process_file(process, path)


#: notions whose pipeline honours a partition ``backend`` parameter.
_BACKEND_NOTIONS = frozenset({"strong", "bisimulation", "observational", "weak"})


def _notion_params(args: argparse.Namespace) -> dict:
    params = {"k": args.k} if args.notion == "k-observational" else {}
    # "auto" is the notion default, so only explicit overrides are passed.
    backend = getattr(args, "backend", "auto")
    if backend != "auto":
        if args.notion not in _BACKEND_NOTIONS:
            raise SystemExit(
                f"--backend {backend} only applies to the strong/observational "
                f"notions, not {args.notion!r}"
            )
        params["backend"] = backend
    return params


def _notion_label(args: argparse.Namespace) -> str:
    return f"approx_{args.k}" if args.notion == "k-observational" else args.notion


def _print_verdict_extras(verdict: Verdict, args: argparse.Namespace) -> None:
    if getattr(args, "explain", False) and verdict.witness is not None:
        print(f"  witness: {verdict.witness.describe()}")
    if getattr(args, "stats", False):
        stats = verdict.stats
        origin = "cache" if stats.from_cache else "computed"
        line = (
            f"  stats: {stats.seconds * 1000:.2f} ms ({origin}); "
            f"left {stats.left_states} states / right {stats.right_states} states"
        )
        pairs = stats.details.get("pairs_visited")
        if pairs is not None:
            line += f" explored; {pairs} product pairs visited"
        print(line)


def _cmd_classify(args: argparse.Namespace) -> int:
    process = load_process(args.process)
    classes = sorted(str(model) for model in classify(process))
    print(f"{args.process}: {process.num_states} states, {process.num_transitions} transitions")
    for name in classes:
        print(f"  {name}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    if args.on_the_fly:
        verdict = default_engine().check_on_the_fly(
            load_process(args.first),
            load_process(args.second),
            args.notion,
            witness=args.explain,
        )
    else:
        verdict = default_engine().check(
            load_process(args.first),
            load_process(args.second),
            args.notion,
            align=True,
            witness=args.explain,
            **_notion_params(args),
        )
    answer = "equivalent" if verdict.equivalent else "NOT equivalent"
    print(f"{args.first} and {args.second} are {answer} under {_notion_label(args)} equivalence")
    _print_verdict_extras(verdict, args)
    return 0 if verdict.equivalent else EXIT_INEQUIVALENT


def _load_manifest(path: str | Path) -> list[dict]:
    """Read a ``batch`` manifest: a JSON list of checks, or ``{"checks": [...]}``.

    Each check is an object with ``left`` and ``right`` process-file paths,
    an optional ``notion`` and optional notion parameters (``k``, bounds).
    Relative paths are resolved against the manifest's directory.
    """
    path = Path(path)
    document = json.loads(path.read_text(encoding="utf-8"))
    checks = document.get("checks") if isinstance(document, dict) else document
    if not isinstance(checks, list):
        raise ValueError(
            f"manifest {path} must be a JSON list of checks or an object with a 'checks' list"
        )
    base = path.parent
    resolved: list[dict] = []
    for index, item in enumerate(checks):
        if not isinstance(item, dict) or "left" not in item or "right" not in item:
            raise ValueError(f"manifest check #{index} must be an object with 'left' and 'right'")
        spec = dict(item)
        spec["left"] = str(base / spec["left"])
        spec["right"] = str(base / spec["right"])
        resolved.append(spec)
    return resolved


def _cmd_batch(args: argparse.Namespace) -> int:
    checks = _load_manifest(args.manifest)
    result = default_engine().check_many(
        checks, notion=args.notion, align=True, witness=args.explain
    )
    for spec, verdict in zip(checks, result.verdicts):
        answer = "equivalent" if verdict.equivalent else "NOT equivalent"
        left = Path(spec["left"]).name
        right = Path(spec["right"]).name
        print(f"{left} vs {right}: {answer} under {verdict.notion} equivalence")
        _print_verdict_extras(verdict, args)
    summary = result.summary()
    print(
        f"batch: {summary['checks']} checks, {summary['equivalent']} equivalent, "
        f"{summary['inequivalent']} not equivalent, {summary['cache_hits']} cache hits, "
        f"{summary['seconds'] * 1000:.1f} ms"
    )
    if args.output:
        payload = {"summary": summary, "results": result.to_dicts()}
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"results written to {args.output}")
    return 0 if result.num_inequivalent == 0 else EXIT_INEQUIVALENT


def _cmd_minimize(args: argparse.Namespace) -> int:
    process = load_process(args.process)
    minimal = default_engine().minimize(process, notion=args.notion, backend=args.backend)
    save_process(minimal, args.output)
    print(
        f"minimised {args.process}: {process.num_states} -> {minimal.num_states} states "
        f"({args.notion} equivalence); written to {args.output}"
    )
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    process = load_process(args.process)
    save_process(process, args.output)
    print(f"converted {args.process} -> {args.output}")
    return 0


def _cmd_expr(args: argparse.Namespace) -> int:
    verdict = default_engine().check_expressions(
        args.first,
        args.second,
        args.notion,
        witness=args.explain,
        **_notion_params(args),
    )
    answer = "equivalent" if verdict.equivalent else "NOT equivalent"
    print(f"{args.first!r} and {args.second!r} are {answer} under {args.notion} semantics")
    _print_verdict_extras(verdict, args)
    return 0 if verdict.equivalent else EXIT_INEQUIVALENT


def _cmd_ccs(args: argparse.Namespace) -> int:
    definitions = (
        parse_definitions(Path(args.definitions).read_text(encoding="utf-8"))
        if args.definitions
        else None
    )
    process = compile_to_fsp(parse_process(args.term), definitions, max_states=args.max_states)
    print(
        f"compiled {args.term!r}: {process.num_states} states, "
        f"{process.num_transitions} transitions"
    )
    if args.output:
        save_process(process, args.output)
        print(f"written to {args.output}")
    return 0


def load_system(path: str | Path):
    """Load a composed-system spec from a file.

    ``.aut`` files and FSP ``.json`` files load as single-process leaves; any
    other JSON document is parsed as a system description
    (:func:`repro.explore.spec_from_document`) whose ``{"file": ...}``
    leaves resolve relative to the document's directory.
    """
    from repro.explore import LeafSpec, spec_from_document
    from repro.utils.serialization import from_dict

    path = Path(path)
    if path.suffix.lower() != ".json":
        return LeafSpec(load_process(path), label=path.name)
    document = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(document, dict) and document.get("format") == "repro-fsp":
        return LeafSpec(from_dict(document), label=path.name)

    def resolve(leaf: dict):
        if "file" in leaf:
            return load_process(path.parent / str(leaf["file"]))
        if "process" in leaf:
            return from_dict(leaf["process"])
        raise ValueError(
            f"system leaf must carry 'file' or 'process', got keys {sorted(leaf)}"
        )

    return spec_from_document(document, resolve)


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro import explore

    if args.explore_op == "stats":
        spec = load_system(args.system)
        stats = explore.reachable_stats(explore.build_implicit(spec), limit=args.limit)
        shape = "at least" if not stats.complete else "exactly"
        print(f"{args.system}: {spec.describe()}")
        print(f"  reachable: {shape} {stats.states} states, {stats.transitions} transitions")
        return 0
    if args.explore_op == "materialize":
        spec = load_system(args.system)
        process = explore.materialize(
            explore.build_implicit(spec),
            limit=args.limit,
            on_limit="truncate" if args.truncate else "raise",
        )
        save_process(process, args.output)
        print(
            f"materialised {args.system}: {process.num_states} states, "
            f"{process.num_transitions} transitions; written to {args.output}"
        )
        return 0
    if args.explore_op == "check":
        verdict = default_engine().check_on_the_fly(
            load_system(args.first),
            load_system(args.second),
            args.notion,
            witness=args.explain,
            max_pairs=args.max_pairs,
            reduction=args.reduction,
        )
        answer = "equivalent" if verdict.equivalent else "NOT equivalent"
        print(
            f"{args.first} and {args.second} are {answer} under {args.notion} "
            f"equivalence (on-the-fly)"
        )
        _print_verdict_extras(verdict, args)
        return 0 if verdict.equivalent else EXIT_INEQUIVALENT
    if args.explore_op == "minimize":
        spec = load_system(args.system)
        minimal = explore.minimize_compositionally(spec)
        save_process(minimal, args.output)
        print(
            f"compositionally minimised {args.system} to {minimal.num_states} states "
            f"(observational congruence); written to {args.output}"
        )
        return 0
    raise ValueError(f"unhandled explore op {args.explore_op!r}")  # pragma: no cover


def _load_scenario_document(token: str):
    """A CLI scenario argument: a JSON scenario file, or a bare library name."""
    path = Path(token)
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    from repro.protocols import SCENARIOS

    if token in SCENARIOS:
        return {"name": token}
    raise FileNotFoundError(
        f"no scenario file {token!r} and no library scenario of that name "
        f"(library: {', '.join(sorted(SCENARIOS))})"
    )


def _cmd_protocol(args: argparse.Namespace) -> int:
    from repro import protocols
    from repro.explore import build_implicit, reachable_stats
    from repro.explore.system import spec_to_document

    document = _load_scenario_document(args.scenario)
    scenario = protocols.scenario_from_document(document)
    if args.protocol_op == "instantiate":
        system = protocols.system_from_document(document)
        payload = spec_to_document(system)
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        stats = reachable_stats(build_implicit(system), limit=args.limit)
        shape = "exactly" if stats.complete else "at least"
        print(f"{scenario.name}: n={scenario.n}, f={scenario.f} -- {scenario.description}")
        print(f"  reachable: {shape} {stats.states} states, {stats.transitions} transitions")
        print(f"  system document written to {args.output}")
        return 0
    if args.protocol_op == "check":
        implementation = protocols.system_from_document(document)
        if args.deadlock:
            report = protocols.find_stuck(
                implementation, limit=args.limit, reduction=args.reduction
            )
            if report is None:
                print(
                    f"{scenario.name}: no deadlock or livelock "
                    f"(searched up to {args.limit} product states)"
                )
                return 0
            rendered = ".".join(report.trace) if report.trace else "ε"
            shape = "complete" if report.complete else "truncated"
            print(f"{scenario.name}: {report.kind} at {report.state}")
            print(f"  trace: {rendered}")
            print(f"  explored {report.states_explored} states ({shape})")
            return EXIT_INEQUIVALENT
        verdict = protocols.check_conformance(
            scenario.spec,
            implementation,
            args.notion,
            max_pairs=args.max_pairs,
            reduction=args.reduction,
        )
        answer = "equivalent" if verdict.equivalent else "NOT equivalent"
        print(
            f"{scenario.name}: implementation is {answer} to its spec under "
            f"{args.notion} equivalence (on-the-fly)"
        )
        _print_verdict_extras(verdict, args)
        return 0 if verdict.equivalent else EXIT_INEQUIVALENT
    if args.protocol_op == "sweep":
        result = protocols.sweep_crashes(
            scenario,
            max_faults=args.max_faults,
            notion=args.notion,
            reduction=args.reduction,
        )
        print(f"{scenario.name}: crash-fault sweep, declared tolerance f={result.tolerance}")
        for point in result.points:
            status = "equivalent" if point.equivalent else "BROKEN"
            line = f"  {point.faults} fault(s): {status} ({point.pairs_visited} pairs visited)"
            if point.trace is not None:
                verified = "verified " if point.trace_verified else ""
                line += f"; {verified}trace {'.'.join(point.trace)}"
            print(line)
        if result.confirmed:
            print("  tolerance confirmed: holds through f, breaks at f+1 where swept")
            return 0
        print(f"  tolerance NOT confirmed (breaks at {result.breaks_at})")
        return EXIT_INEQUIVALENT
    raise ValueError(f"unhandled protocol op {args.protocol_op!r}")  # pragma: no cover


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    # None means "use the per-shard defaults documented in repro.service.shards"
    # (the parser cannot name them without importing the full service stack).
    bounds = {
        name: value
        for name, value in (
            ("max_processes", args.max_processes),
            ("max_verdicts", args.max_verdicts),
        )
        if value is not None
    }
    serve(
        args.host,
        args.port,
        store_root=args.store,
        num_shards=args.shards,
        max_queue=args.max_queue,
        steal_threshold=args.steal_threshold,
        quota_rps=args.quota_rps,
        quota_burst=args.quota_burst,
        metrics_port=args.metrics_port,
        trace_stream=sys.stderr if args.trace else None,
        **bounds,
    )
    return 0


def _client_source(token: str):
    """A CLI process argument: a ``sha256:...`` digest or a process file."""
    if token.startswith("sha256:"):
        return token
    return load_process(token)


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service import ProtocolError, ServiceClient, ServiceError

    try:
        with ServiceClient(args.host, args.port) as client:
            return _run_client_op(client, args)
    except (ServiceError, ProtocolError) as error:
        # ServiceError: the server rejected the request (its code says why).
        # ProtocolError: the peer is not speaking NDJSON or vanished
        # mid-request.  Both are input/environment errors in CLI terms.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except FileNotFoundError as error:
        # A missing local process file, not a network problem.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except ConnectionRefusedError:
        print(
            f"error: no service listening on {args.host}:{args.port} "
            f"(start one with `repro serve`)",
            file=sys.stderr,
        )
        return EXIT_ERROR
    except OSError as error:
        # Timeouts, resets, unreachable hosts: environment errors, exit 2.
        print(f"error: cannot talk to {args.host}:{args.port}: {error}", file=sys.stderr)
        return EXIT_ERROR


def _run_client_op(client, args: argparse.Namespace) -> int:
    if args.client_op == "ping":
        info = client.ping()
        print(f"service {info['version']} up, {info['shards']} shard(s)")
        return 0
    if args.client_op == "store":
        digest = client.store(load_process(args.process))
        print(digest)
        return 0
    if args.client_op == "check":
        verdict = client.check(
            _client_source(args.first),
            _client_source(args.second),
            args.notion,
            witness=args.explain,
            reduction=args.reduction,
            deadline_ms=args.deadline_ms,
            **_notion_params(args),
        )
        answer = "equivalent" if verdict["equivalent"] else "NOT equivalent"
        print(
            f"{args.first} and {args.second} are {answer} under {verdict['notion']} "
            f"equivalence (shard {verdict['shard']})"
        )
        if args.explain and verdict.get("witness"):
            print(f"  witness: {verdict['witness']}")
        return 0 if verdict["equivalent"] else EXIT_INEQUIVALENT
    if args.client_op == "minimize":
        minimal = client.minimize(_client_source(args.process), args.notion)
        save_process(minimal, args.output)
        print(f"minimised to {minimal.num_states} states; written to {args.output}")
        return 0
    if args.client_op == "classify":
        for name in client.classify(_client_source(args.process)):
            print(f"  {name}")
        return 0
    if args.client_op == "metrics":
        print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        return 0
    if args.client_op == "stats":
        stats = client.stats()
        server = stats["server"]
        print(
            f"service {server['version']}: {server['shards']} shard(s), "
            f"{server['requests']} request(s), {server['connections']} connection(s), "
            f"{server['revivals']} worker revival(s), {server.get('steals', 0)} steal(s), "
            f"{server.get('overloads', 0)} overload refusal(s)"
        )
        store = server["store"]
        print(
            f"  store: {store['on_disk']} process(es) on disk, "
            f"{store['cached']}/{store['max_cached']} cached in memory"
        )
        for shard in stats["shards"]:
            engine = shard["engine"]
            print(
                f"  shard {shard['shard']} (pid {shard['pid']}): {shard['checks']} check(s), "
                f"{engine['processes']} process(es) / {engine['verdicts']} verdict(s) cached, "
                f"{engine['hits']} hit(s) / {engine['misses']} miss(es)"
            )
        return 0
    raise ValueError(f"unhandled client op {args.client_op!r}")  # pragma: no cover


def _parse_node_spec(token: str) -> tuple[str, tuple[str, int]]:
    """One ``--node name=host:port`` argument -> ``(name, (host, port))``."""
    name, eq, address = token.partition("=")
    host, colon, port = address.rpartition(":")
    if not eq or not colon or not name or not host:
        raise ValueError(f"--node wants name=host:port, got {token!r}")
    try:
        return name, (host, int(port))
    except ValueError:
        raise ValueError(f"--node wants a numeric port, got {token!r}") from None


def _cmd_cluster_serve_node(args: argparse.Namespace) -> int:
    from repro.service import serve

    bounds = {
        name: value
        for name, value in (
            ("max_processes", args.max_processes),
            ("max_verdicts", args.max_verdicts),
        )
        if value is not None
    }
    serve(
        args.host,
        args.port,
        store_root=args.store,
        num_shards=args.shards,
        max_queue=args.max_queue,
        steal_threshold=args.steal_threshold,
        node_name=args.name,
        **bounds,
    )
    return 0


def _cmd_cluster_serve_gateway(args: argparse.Namespace) -> int:
    from repro.cluster import serve_gateway

    nodes = dict(_parse_node_spec(token) for token in args.node)
    if len(nodes) < len(args.node):
        raise ValueError("--node names must be unique")
    serve_gateway(
        nodes,
        host=args.host,
        port=args.port,
        replication_factor=args.replication,
        steal_threshold=args.steal_threshold,
        store_root=args.store,
        probe_interval=args.probe_interval,
    )
    return 0


def _cmd_cluster_client(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterClient
    from repro.service import ProtocolError, ServiceError

    try:
        with ClusterClient(args.host, args.port) as client:
            return _run_cluster_client_op(client, args)
    except (ServiceError, ProtocolError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except ConnectionRefusedError:
        print(
            f"error: no gateway listening on {args.host}:{args.port} "
            f"(start one with `repro cluster serve-gateway`)",
            file=sys.stderr,
        )
        return EXIT_ERROR
    except OSError as error:
        print(f"error: cannot talk to {args.host}:{args.port}: {error}", file=sys.stderr)
        return EXIT_ERROR


def _run_cluster_client_op(client, args: argparse.Namespace) -> int:
    if args.cluster_op == "ping":
        info = client.ping()
        nodes = info.get("nodes", {})
        print(
            f"cluster up: {info['healthy_nodes']}/{len(nodes)} node(s) healthy, "
            f"replication factor {info['replication_factor']}"
        )
        return 0
    if args.cluster_op == "health":
        health = client.healthz()
        for node, up in sorted(health.get("nodes", {}).items()):
            print(f"  {node}: {'healthy' if up else 'DOWN'}")
        return 0 if health.get("ok") else EXIT_ERROR
    if args.cluster_op == "store":
        result = client.store(load_process(args.process))
        replicas = ",".join(result.get("replicas", []))
        print(f"{result['digest']} (replicas: {replicas})")
        return 0
    if args.cluster_op == "check":
        verdict = client.check(
            _client_source(args.first),
            _client_source(args.second),
            args.notion,
            witness=args.explain,
            reduction=args.reduction,
            deadline_ms=args.deadline_ms,
            **_notion_params(args),
        )
        answer = "equivalent" if verdict["equivalent"] else "NOT equivalent"
        print(
            f"{args.first} and {args.second} are {answer} under {verdict['notion']} "
            f"equivalence (node {verdict.get('node', '?')}, shard {verdict['shard']})"
        )
        if args.explain and verdict.get("witness"):
            print(f"  witness: {verdict['witness']}")
        return 0 if verdict["equivalent"] else EXIT_INEQUIVALENT
    if args.cluster_op == "minimize":
        minimal = client.minimize(_client_source(args.process), args.notion)
        save_process(minimal, args.output)
        print(f"minimised to {minimal.num_states} states; written to {args.output}")
        return 0
    if args.cluster_op == "classify":
        for name in client.classify(_client_source(args.process)):
            print(f"  {name}")
        return 0
    if args.cluster_op == "stats":
        stats = client.stats()
        coord = stats["coordinator"]
        print(
            f"cluster: {coord['healthy_nodes']}/{coord['nodes']} node(s) healthy, "
            f"rf={coord['replication_factor']}, {coord['failovers']} failover(s), "
            f"{coord['steals']} steal(s), {coord['replications']} replication(s) "
            f"({coord['replication_failures']} failed), "
            f"artifacts {coord['artifact_hits']} hit(s) / {coord['artifact_misses']} miss(es)"
        )
        for node in stats["nodes"]:
            if "error" in node:
                print(f"  node {node['node']}: UNREACHABLE ({node['error']})")
                continue
            server = node["server"]
            print(
                f"  node {node['node']}: {server['shards']} shard(s), "
                f"{server['requests']} request(s), {server['revivals']} revival(s)"
            )
        return 0
    raise ValueError(f"unhandled cluster op {args.cluster_op!r}")  # pragma: no cover


def _add_verdict_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--explain",
        action="store_true",
        help="print a checkable witness (formula, word or refusal pair) on inequivalence",
    )
    command.add_argument(
        "--stats", action="store_true", help="print timing and cache provenance per check"
    )


def _add_reduction_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--reduction",
        choices=["none", "por", "symmetry", "full"],
        default="none",
        help=(
            "state-space reduction: partial-order (tau-confluence), symmetry "
            "(declared canonical forms), or both; only reductions sound for "
            "the requested check are applied"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Equivalence checking for finite state processes (Kanellakis & Smolka).",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    classify_cmd = commands.add_parser("classify", help="print the model classes of a process")
    classify_cmd.add_argument("process", help="process file (.json or .aut)")
    classify_cmd.set_defaults(handler=_cmd_classify)

    check_cmd = commands.add_parser("check", help="decide an equivalence between two processes")
    check_cmd.add_argument("first")
    check_cmd.add_argument("second")
    check_cmd.add_argument("--notion", choices=list(available_notions()), default="observational")
    check_cmd.add_argument("--k", type=int, default=1, help="level for k-observational")
    check_cmd.add_argument(
        "--backend",
        choices=[*BACKENDS, "auto"],
        default="auto",
        help=(
            "partition backend for strong/observational checks: the Python "
            "worklist solvers, the vectorized numpy kernel, or size-based "
            "auto dispatch (the default)"
        ),
    )
    check_cmd.add_argument(
        "--on-the-fly",
        action="store_true",
        help=(
            "decide by lazy pair-space exploration (strong/observational only): "
            "returns early with a verified distinguishing trace on inequivalence"
        ),
    )
    _add_verdict_flags(check_cmd)
    check_cmd.set_defaults(handler=_cmd_check)

    batch_cmd = commands.add_parser(
        "batch", help="run a JSON manifest of checks through the shared engine caches"
    )
    batch_cmd.add_argument(
        "manifest",
        help=(
            "JSON manifest: a list (or {'checks': [...]}) of objects with 'left' and "
            "'right' process files, optional 'notion' and notion parameters"
        ),
    )
    batch_cmd.add_argument(
        "--notion",
        choices=list(available_notions()),
        default="observational",
        help="default notion for checks that do not name one",
    )
    batch_cmd.add_argument("--output", help="write the structured results to this JSON file")
    _add_verdict_flags(batch_cmd)
    batch_cmd.set_defaults(handler=_cmd_batch)

    minimize_cmd = commands.add_parser("minimize", help="write the quotient of a process")
    minimize_cmd.add_argument("process")
    minimize_cmd.add_argument("output")
    minimize_cmd.add_argument(
        "--notion", choices=["strong", "observational"], default="observational"
    )
    minimize_cmd.add_argument(
        "--backend",
        choices=[*BACKENDS, "auto"],
        default="auto",
        help="partition backend used to compute the quotient (auto: by size)",
    )
    minimize_cmd.set_defaults(handler=_cmd_minimize)

    convert_cmd = commands.add_parser("convert", help="convert between .json, .aut and .dot")
    convert_cmd.add_argument("process")
    convert_cmd.add_argument("output")
    convert_cmd.set_defaults(handler=_cmd_convert)

    expr_cmd = commands.add_parser(
        "expr", help="decide the CCS equivalence problem for star expressions"
    )
    expr_cmd.add_argument("first")
    expr_cmd.add_argument("second")
    expr_cmd.add_argument("--notion", choices=list(expression_notions()), default="strong")
    expr_cmd.add_argument("--k", type=int, default=1, help="level for k-observational")
    _add_verdict_flags(expr_cmd)
    expr_cmd.set_defaults(handler=_cmd_expr)

    ccs_cmd = commands.add_parser("ccs", help="compile a CCS term to a process")
    ccs_cmd.add_argument("term")
    ccs_cmd.add_argument("--definitions", help="file of `Name := term` definitions")
    ccs_cmd.add_argument("--output", help="write the compiled process here")
    ccs_cmd.add_argument("--max-states", type=int, default=10_000)
    ccs_cmd.set_defaults(handler=_cmd_ccs)

    explore_cmd = commands.add_parser(
        "explore",
        help="on-the-fly operations on composed systems (JSON system files)",
    )
    explore_ops = explore_cmd.add_subparsers(dest="explore_op", required=True)

    explore_stats = explore_ops.add_parser(
        "stats", help="count reachable states/transitions without materialising"
    )
    explore_stats.add_argument("system", help="system file (JSON spec, .json FSP or .aut)")
    explore_stats.add_argument(
        "--limit", type=int, default=None, help="stop counting after this many states"
    )

    explore_mat = explore_ops.add_parser(
        "materialize", help="explore a composed system into an eager process file"
    )
    explore_mat.add_argument("system")
    explore_mat.add_argument("output")
    explore_mat.add_argument(
        "--limit", type=int, default=None, help="state bound (exceeding it is an error)"
    )
    explore_mat.add_argument(
        "--truncate",
        action="store_true",
        help="keep the explored prefix instead of erroring at the limit (lossy)",
    )

    explore_check = explore_ops.add_parser(
        "check", help="on-the-fly equivalence of two (composed) systems"
    )
    explore_check.add_argument("first")
    explore_check.add_argument("second")
    explore_check.add_argument(
        "--notion", choices=["strong", "observational"], default="observational"
    )
    explore_check.add_argument(
        "--max-pairs", type=int, default=None, help="bound on explored product pairs"
    )
    _add_reduction_flag(explore_check)
    _add_verdict_flags(explore_check)

    explore_min = explore_ops.add_parser(
        "minimize",
        help="compositional minimisation: quotient every component before composing",
    )
    explore_min.add_argument("system")
    explore_min.add_argument("output")

    explore_cmd.set_defaults(handler=_cmd_explore)

    protocol_cmd = commands.add_parser(
        "protocol",
        help=(
            "consensus-protocol scenarios: instantiate, conformance-check and "
            "fault-sweep (JSON scenario files or library names)"
        ),
    )
    protocol_ops = protocol_cmd.add_subparsers(dest="protocol_op", required=True)

    protocol_inst = protocol_ops.add_parser(
        "instantiate", help="compile a scenario to a composed-system JSON document"
    )
    protocol_inst.add_argument(
        "scenario",
        help=(
            "scenario file ({'name': ..., 'n': ..., 'f': ..., 'side': ..., "
            "'faults': [...]}) or a library scenario name"
        ),
    )
    protocol_inst.add_argument("output", help="write the system document here")
    protocol_inst.add_argument(
        "--limit", type=int, default=None, help="stop counting reachable states here"
    )

    protocol_check = protocol_ops.add_parser(
        "check",
        help="spec-vs-implementation conformance, or --deadlock reachability",
    )
    protocol_check.add_argument("scenario", help="scenario file or library name")
    protocol_check.add_argument(
        "--notion", choices=["strong", "observational"], default="observational"
    )
    protocol_check.add_argument(
        "--max-pairs", type=int, default=None, help="bound on explored product pairs"
    )
    protocol_check.add_argument(
        "--deadlock",
        action="store_true",
        help="search the lazy product for deadlocks/livelocks instead of equivalence",
    )
    protocol_check.add_argument(
        "--limit", type=int, default=50_000, help="state bound for --deadlock search"
    )
    _add_reduction_flag(protocol_check)
    _add_verdict_flags(protocol_check)

    protocol_sweep = protocol_ops.add_parser(
        "sweep", help="fault-tolerance sweep: equivalent up to f crashes, broken at f+1"
    )
    protocol_sweep.add_argument("scenario", help="scenario file or library name")
    protocol_sweep.add_argument(
        "--max-faults", type=int, default=None, help="sweep up to this many crashes (default f+1)"
    )
    protocol_sweep.add_argument(
        "--notion", choices=["strong", "observational"], default="observational"
    )
    _add_reduction_flag(protocol_sweep)

    protocol_cmd.set_defaults(handler=_cmd_protocol)

    # Deliberately the lightweight protocol module: pulling in the full
    # service stack (asyncio server, process pools) at parse time would tax
    # every CLI invocation; serve/client import it lazily in their handlers.
    from repro.service.protocol import DEFAULT_PORT

    serve_cmd = commands.add_parser(
        "serve", help="run the sharded equivalence service (line-delimited JSON over TCP)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve_cmd.add_argument(
        "--shards", type=int, default=None, help="worker processes (default: one per CPU)"
    )
    serve_cmd.add_argument(
        "--store",
        default=None,
        help="directory of the content-addressed process store (default: private temp dir)",
    )
    serve_cmd.add_argument(
        "--max-processes",
        type=int,
        default=None,
        help="per-shard engine process-cache bound (default: the engine's)",
    )
    serve_cmd.add_argument(
        "--max-verdicts",
        type=int,
        default=None,
        help="per-shard engine verdict-cache bound (default: the engine's)",
    )
    serve_cmd.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="per-shard queue bound; beyond it checks are refused with 'overloaded' "
        "(default: unbounded)",
    )
    serve_cmd.add_argument(
        "--steal-threshold",
        type=int,
        default=None,
        help="queue depth at which cache-cold digest checks migrate to idle shards "
        "(default: stealing off)",
    )
    serve_cmd.add_argument(
        "--quota-rps",
        type=float,
        default=None,
        help="per-client request rate (tokens/second; check_many costs one per check; "
        "default: no quotas)",
    )
    serve_cmd.add_argument(
        "--quota-burst",
        type=float,
        default=None,
        help="per-client burst capacity (default: twice --quota-rps)",
    )
    serve_cmd.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve Prometheus-text metrics over HTTP on this port (0 picks one; "
        "default: off)",
    )
    serve_cmd.add_argument(
        "--trace",
        action="store_true",
        help="log one JSON trace record per request to stderr",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    client_cmd = commands.add_parser(
        "client", help="talk to a running service (see `repro serve`)"
    )
    client_cmd.add_argument("--host", default="127.0.0.1")
    client_cmd.add_argument("--port", type=int, default=DEFAULT_PORT)
    client_ops = client_cmd.add_subparsers(dest="client_op", required=True)

    client_ops.add_parser("ping", help="liveness probe")

    client_store = client_ops.add_parser(
        "store", help="upload a process once; prints its sha256 digest"
    )
    client_store.add_argument("process", help="process file (.json or .aut)")

    client_check = client_ops.add_parser(
        "check", help="decide an equivalence on the service (files or sha256: digests)"
    )
    client_check.add_argument("first", help="process file or sha256:... digest")
    client_check.add_argument("second", help="process file or sha256:... digest")
    client_check.add_argument(
        "--notion", choices=list(available_notions()), default="observational"
    )
    client_check.add_argument("--k", type=int, default=1, help="level for k-observational")
    client_check.add_argument(
        "--explain", action="store_true", help="request and print a witness on inequivalence"
    )
    client_check.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="abort the check past this many milliseconds (error: deadline_exceeded)",
    )
    _add_reduction_flag(client_check)

    client_minimize = client_ops.add_parser("minimize", help="minimise on the service")
    client_minimize.add_argument("process", help="process file or sha256:... digest")
    client_minimize.add_argument("output")
    client_minimize.add_argument(
        "--notion", choices=["strong", "observational"], default="observational"
    )

    client_classify = client_ops.add_parser("classify", help="classify on the service")
    client_classify.add_argument("process", help="process file or sha256:... digest")

    client_ops.add_parser("stats", help="server totals and per-shard cache statistics")

    client_ops.add_parser("metrics", help="dump the server's metrics snapshot as JSON")

    client_cmd.set_defaults(handler=_cmd_client)

    # Same lazy-import discipline as serve/client: the parser only needs the
    # gateway's default port constant, which the cluster package defines
    # eagerly precisely so this import stays cheap.
    from repro.cluster import DEFAULT_GATEWAY_PORT

    cluster_cmd = commands.add_parser(
        "cluster", help="multi-node checking fabric (nodes + HTTP gateway)"
    )
    cluster_ops = cluster_cmd.add_subparsers(dest="cluster_cmd", required=True)

    node_cmd = cluster_ops.add_parser(
        "serve-node", help="run one cluster node (an equivalence service with a node name)"
    )
    node_cmd.add_argument("--name", required=True, help="node id (labels stats and metrics)")
    node_cmd.add_argument("--host", default="127.0.0.1")
    node_cmd.add_argument("--port", type=int, default=DEFAULT_PORT)
    node_cmd.add_argument(
        "--shards", type=int, default=None, help="worker processes (default: one per CPU)"
    )
    node_cmd.add_argument(
        "--store", default=None, help="node-local process store directory (default: temp dir)"
    )
    node_cmd.add_argument("--max-processes", type=int, default=None)
    node_cmd.add_argument("--max-verdicts", type=int, default=None)
    node_cmd.add_argument("--max-queue", type=int, default=None)
    node_cmd.add_argument("--steal-threshold", type=int, default=None)
    node_cmd.set_defaults(handler=_cmd_cluster_serve_node)

    gateway_cmd = cluster_ops.add_parser(
        "serve-gateway", help="run the HTTP gateway + coordinator over running nodes"
    )
    gateway_cmd.add_argument(
        "--node",
        action="append",
        required=True,
        metavar="NAME=HOST:PORT",
        help="cluster member (repeat once per node)",
    )
    gateway_cmd.add_argument("--host", default="127.0.0.1")
    gateway_cmd.add_argument("--port", type=int, default=DEFAULT_GATEWAY_PORT)
    gateway_cmd.add_argument(
        "--replication",
        type=int,
        default=2,
        help="ring nodes holding each stored process (default: 2)",
    )
    gateway_cmd.add_argument(
        "--steal-threshold",
        type=int,
        default=None,
        help="in-flight depth at which cache-cold checks leave their primary "
        "for the least-loaded replica (default: stealing off)",
    )
    gateway_cmd.add_argument(
        "--store",
        default=None,
        help="coordinator store directory (processes + minimisation artifacts; "
        "default: stateless)",
    )
    gateway_cmd.add_argument(
        "--probe-interval", type=float, default=1.0, help="seconds between node health probes"
    )
    gateway_cmd.set_defaults(handler=_cmd_cluster_serve_gateway)

    ccli_cmd = cluster_ops.add_parser(
        "client", help="talk to a running gateway (see `repro cluster serve-gateway`)"
    )
    ccli_cmd.add_argument("--host", default="127.0.0.1")
    ccli_cmd.add_argument("--port", type=int, default=DEFAULT_GATEWAY_PORT)
    ccli_ops = ccli_cmd.add_subparsers(dest="cluster_op", required=True)

    ccli_ops.add_parser("ping", help="coordinator liveness and membership")
    ccli_ops.add_parser("health", help="per-node health (exit 2 when no node is healthy)")

    ccli_store = ccli_ops.add_parser(
        "store", help="upload + replicate a process; prints digest and replicas"
    )
    ccli_store.add_argument("process", help="process file (.json or .aut)")

    ccli_check = ccli_ops.add_parser(
        "check", help="decide an equivalence through the cluster"
    )
    ccli_check.add_argument("first", help="process file or sha256:... digest")
    ccli_check.add_argument("second", help="process file or sha256:... digest")
    ccli_check.add_argument(
        "--notion", choices=list(available_notions()), default="observational"
    )
    ccli_check.add_argument("--k", type=int, default=1, help="level for k-observational")
    ccli_check.add_argument(
        "--explain", action="store_true", help="request and print a witness on inequivalence"
    )
    ccli_check.add_argument("--deadline-ms", type=float, default=None)
    _add_reduction_flag(ccli_check)

    ccli_minimize = ccli_ops.add_parser(
        "minimize", help="minimise through the cluster (artifact-cache first)"
    )
    ccli_minimize.add_argument("process", help="process file or sha256:... digest")
    ccli_minimize.add_argument("output")
    ccli_minimize.add_argument(
        "--notion", choices=["strong", "observational"], default="observational"
    )

    ccli_classify = ccli_ops.add_parser("classify", help="classify through the cluster")
    ccli_classify.add_argument("process", help="process file or sha256:... digest")

    ccli_ops.add_parser("stats", help="coordinator counters plus per-node totals")

    ccli_cmd.set_defaults(handler=_cmd_cluster_client)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, FileNotFoundError, OSError, ValueError, TypeError) as error:
        # TypeError covers manifest/param mistakes surfaced by the engine's
        # parameter validation (e.g. a notion handed a bound it does not
        # accept), which are input errors in CLI terms.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
