"""Command-line interface: ``python -m repro <command> ...``.

The CLI exposes the day-to-day operations of the library on serialised
processes (JSON via :mod:`repro.utils.serialization` or Aldebaran ``.aut``
via :mod:`repro.utils.aut_format`, selected by file extension):

``classify``      print the model classes of a process (Fig. 1a hierarchy)
``check``         decide an equivalence between two processes' start states
``minimize``      write the strong or observational quotient of a process
``convert``       convert between JSON, ``.aut`` and DOT
``expr``          decide the CCS equivalence problem for two star expressions
``ccs``           compile a CCS term (with optional definitions file) to a process

Every command prints a human-readable verdict and uses the exit status to
report boolean answers (0 = equivalent / success, 1 = not equivalent,
2 = usage or input error), so the tool can be scripted.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.semantics import compile_to_fsp
from repro.core.classify import classify
from repro.core.errors import ReproError
from repro.core.fsp import FSP
from repro.equivalence.failure import failure_equivalent_processes
from repro.equivalence.kobs import k_observational_equivalent_processes
from repro.equivalence.language import language_equivalent_processes
from repro.equivalence.minimize import minimize_observational, minimize_strong
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent_processes
from repro.expressions.ccs_equivalence import (
    ccs_equivalent,
    failure_ccs_equivalent,
    language_ccs_equivalent,
    observationally_ccs_equivalent,
)
from repro.utils import aut_format, dot, serialization

#: Exit code used for "the answer is: not equivalent".
EXIT_INEQUIVALENT = 1
#: Exit code used for malformed input or usage errors.
EXIT_ERROR = 2


def load_process(path: str | Path) -> FSP:
    """Load a process from a ``.json`` or ``.aut`` file (by extension)."""
    path = Path(path)
    if path.suffix == ".aut":
        return aut_format.load(path, all_accepting=True)
    return serialization.load(path)


def save_process(process: FSP, path: str | Path) -> None:
    """Write a process to ``.json``, ``.aut`` or ``.dot`` (by extension)."""
    path = Path(path)
    if path.suffix == ".aut":
        aut_format.dump(process, path, accepting_label="ACCEPTING")
    elif path.suffix == ".dot":
        dot.write_dot(process, path)
    else:
        serialization.dump(process, path)


def _align(first: FSP, second: FSP) -> tuple[FSP, FSP]:
    alphabet = first.alphabet | second.alphabet
    return first.with_alphabet(alphabet), second.with_alphabet(alphabet)


_PROCESS_CHECKS = {
    "strong": strongly_equivalent_processes,
    "observational": observationally_equivalent_processes,
    "language": language_equivalent_processes,
    "failure": failure_equivalent_processes,
}

_EXPRESSION_CHECKS = {
    "strong": ccs_equivalent,
    "observational": observationally_ccs_equivalent,
    "language": language_ccs_equivalent,
    "failure": failure_ccs_equivalent,
}


def _cmd_classify(args: argparse.Namespace) -> int:
    process = load_process(args.process)
    classes = sorted(str(model) for model in classify(process))
    print(f"{args.process}: {process.num_states} states, {process.num_transitions} transitions")
    for name in classes:
        print(f"  {name}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    first, second = _align(load_process(args.first), load_process(args.second))
    if args.notion == "k-observational":
        answer = k_observational_equivalent_processes(first, second, args.k)
        label = f"approx_{args.k}"
    else:
        answer = _PROCESS_CHECKS[args.notion](first, second)
        label = args.notion
    verdict = "equivalent" if answer else "NOT equivalent"
    print(f"{args.first} and {args.second} are {verdict} under {label} equivalence")
    return 0 if answer else EXIT_INEQUIVALENT


def _cmd_minimize(args: argparse.Namespace) -> int:
    process = load_process(args.process)
    minimiser = minimize_strong if args.notion == "strong" else minimize_observational
    minimal = minimiser(process)
    save_process(minimal, args.output)
    print(
        f"minimised {args.process}: {process.num_states} -> {minimal.num_states} states "
        f"({args.notion} equivalence); written to {args.output}"
    )
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    process = load_process(args.process)
    save_process(process, args.output)
    print(f"converted {args.process} -> {args.output}")
    return 0


def _cmd_expr(args: argparse.Namespace) -> int:
    answer = _EXPRESSION_CHECKS[args.notion](args.first, args.second)
    verdict = "equivalent" if answer else "NOT equivalent"
    print(f"{args.first!r} and {args.second!r} are {verdict} under {args.notion} semantics")
    return 0 if answer else EXIT_INEQUIVALENT


def _cmd_ccs(args: argparse.Namespace) -> int:
    definitions = (
        parse_definitions(Path(args.definitions).read_text(encoding="utf-8"))
        if args.definitions
        else None
    )
    process = compile_to_fsp(parse_process(args.term), definitions, max_states=args.max_states)
    print(
        f"compiled {args.term!r}: {process.num_states} states, "
        f"{process.num_transitions} transitions"
    )
    if args.output:
        save_process(process, args.output)
        print(f"written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Equivalence checking for finite state processes (Kanellakis & Smolka).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    classify_cmd = commands.add_parser("classify", help="print the model classes of a process")
    classify_cmd.add_argument("process", help="process file (.json or .aut)")
    classify_cmd.set_defaults(handler=_cmd_classify)

    check_cmd = commands.add_parser("check", help="decide an equivalence between two processes")
    check_cmd.add_argument("first")
    check_cmd.add_argument("second")
    check_cmd.add_argument(
        "--notion",
        choices=[*sorted(_PROCESS_CHECKS), "k-observational"],
        default="observational",
    )
    check_cmd.add_argument("--k", type=int, default=1, help="level for k-observational")
    check_cmd.set_defaults(handler=_cmd_check)

    minimize_cmd = commands.add_parser("minimize", help="write the quotient of a process")
    minimize_cmd.add_argument("process")
    minimize_cmd.add_argument("output")
    minimize_cmd.add_argument(
        "--notion", choices=["strong", "observational"], default="observational"
    )
    minimize_cmd.set_defaults(handler=_cmd_minimize)

    convert_cmd = commands.add_parser("convert", help="convert between .json, .aut and .dot")
    convert_cmd.add_argument("process")
    convert_cmd.add_argument("output")
    convert_cmd.set_defaults(handler=_cmd_convert)

    expr_cmd = commands.add_parser(
        "expr", help="decide the CCS equivalence problem for star expressions"
    )
    expr_cmd.add_argument("first")
    expr_cmd.add_argument("second")
    expr_cmd.add_argument("--notion", choices=sorted(_EXPRESSION_CHECKS), default="strong")
    expr_cmd.set_defaults(handler=_cmd_expr)

    ccs_cmd = commands.add_parser("ccs", help="compile a CCS term to a process")
    ccs_cmd.add_argument("term")
    ccs_cmd.add_argument("--definitions", help="file of `Name := term` definitions")
    ccs_cmd.add_argument("--output", help="write the compiled process here")
    ccs_cmd.add_argument("--max-states", type=int, default=10_000)
    ccs_cmd.set_defaults(handler=_cmd_ccs)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, FileNotFoundError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
