"""A small CCS term calculus compiled to finite state processes."""

from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.semantics import compile_to_fsp, derivatives
from repro.ccs.syntax import (
    Definitions,
    Nil,
    Parallel,
    Prefix,
    Process,
    ProcessRef,
    Relabeling,
    Restriction,
    Sum,
    TAU_ACTION,
    co,
)

__all__ = [
    "Definitions",
    "Nil",
    "Parallel",
    "Prefix",
    "Process",
    "ProcessRef",
    "Relabeling",
    "Restriction",
    "Sum",
    "TAU_ACTION",
    "co",
    "compile_to_fsp",
    "derivatives",
    "parse_definitions",
    "parse_process",
]
