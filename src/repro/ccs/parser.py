"""Concrete syntax and parser for CCS terms.

Grammar (precedence from loosest to tightest: ``+``, ``|``, prefix, postfix)::

    process    := choice
    choice     := parallel ('+' parallel)*
    parallel   := prefixed ('|' prefixed)*
    prefixed   := action '.' prefixed | postfixed
    postfixed  := atom (restriction | relabeling)*
    restriction:= '\\' '{' channel (',' channel)* '}'
    relabeling := '[' channel '/' channel (',' channel '/' channel)* ']'
    atom       := '0' | PROCESSNAME | '(' process ')'
    action     := 'tau' | channel | channel '!'
    channel    := lower-case identifier
    PROCESSNAME:= upper-case identifier

Examples
--------
>>> from repro.ccs.parser import parse_process
>>> str(parse_process("a.b!.0 + tau.0"))
'(a.b!.0 + tau.0)'
>>> str(parse_process("(a.0 | a!.0) \\\\ {a}"))
'((a.0 | a!.0) \\\\ {a})'
"""

from __future__ import annotations

import re

from repro.core.errors import ExpressionError
from repro.ccs.syntax import (
    Definitions,
    Nil,
    Parallel,
    Prefix,
    Process,
    ProcessRef,
    Relabeling,
    Restriction,
    Sum,
    TAU_ACTION,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<nil>0)|(?P<tau>tau\b)|(?P<upper>[A-Z][A-Za-z0-9_]*)"
    r"|(?P<lower>[a-z][A-Za-z0-9_]*!?)|(?P<op>[().+|\\\[\]{},/]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ExpressionError(
                f"unexpected character in CCS term at {position}: {remainder[0]!r}"
            )
        position = match.end()
        for kind in ("nil", "tau", "upper", "lower", "op"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind if kind != "op" else value, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> tuple[str, str] | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _advance(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ExpressionError(f"unexpected end of CCS term in {self._source!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> str:
        token = self._advance()
        if token[0] != kind:
            raise ExpressionError(f"expected {kind!r} but found {token[1]!r} in {self._source!r}")
        return token[1]

    def parse(self) -> Process:
        process = self._choice()
        if self._peek() is not None:
            raise ExpressionError(
                f"unexpected token {self._peek()[1]!r} in {self._source!r}"  # type: ignore[index]
            )
        return process

    def _choice(self) -> Process:
        node = self._parallel()
        while self._peek() is not None and self._peek()[0] == "+":  # type: ignore[index]
            self._advance()
            node = Sum(node, self._parallel())
        return node

    def _parallel(self) -> Process:
        node = self._prefixed()
        while self._peek() is not None and self._peek()[0] == "|":  # type: ignore[index]
            self._advance()
            node = Parallel(node, self._prefixed())
        return node

    def _prefixed(self) -> Process:
        token = self._peek()
        if token is not None and token[0] in ("lower", "tau"):
            following = (
                self._tokens[self._index + 1] if self._index + 1 < len(self._tokens) else None
            )
            if following is not None and following[0] == ".":
                action_token = self._advance()
                self._expect(".")
                continuation = self._prefixed()
                action = TAU_ACTION if action_token[0] == "tau" else action_token[1]
                return Prefix(action, continuation)
        return self._postfixed()

    def _postfixed(self) -> Process:
        node = self._atom()
        while True:
            token = self._peek()
            if token is None:
                return node
            if token[0] == "\\":
                self._advance()
                self._expect("{")
                channels = {self._expect("lower")}
                while self._peek() is not None and self._peek()[0] == ",":  # type: ignore[index]
                    self._advance()
                    channels.add(self._expect("lower"))
                self._expect("}")
                node = Restriction(node, frozenset(channels))
            elif token[0] == "[":
                self._advance()
                mapping: list[tuple[str, str]] = []
                new = self._expect("lower")
                self._expect("/")
                old = self._expect("lower")
                mapping.append((old, new))
                while self._peek() is not None and self._peek()[0] == ",":  # type: ignore[index]
                    self._advance()
                    new = self._expect("lower")
                    self._expect("/")
                    old = self._expect("lower")
                    mapping.append((old, new))
                self._expect("]")
                node = Relabeling(node, tuple(mapping))
            else:
                return node

    def _atom(self) -> Process:
        kind, value = self._advance()
        if kind == "nil":
            return Nil()
        if kind == "upper":
            return ProcessRef(value)
        if kind == "tau":
            # a bare `tau` (without '.') abbreviates tau.0
            return Prefix(TAU_ACTION, Nil())
        if kind == "lower":
            # a bare action abbreviates action.0
            return Prefix(value, Nil())
        if kind == "(":
            node = self._choice()
            self._expect(")")
            return node
        raise ExpressionError(f"unexpected token {value!r} in {self._source!r}")


def parse_process(text: str) -> Process:
    """Parse the concrete CCS syntax into a :class:`~repro.ccs.syntax.Process`."""
    tokens = _tokenize(text)
    if not tokens:
        raise ExpressionError("empty CCS term")
    return _Parser(tokens, text).parse()


def parse_definitions(text: str) -> Definitions:
    """Parse a block of definitions of the form ``Name := process`` (one per line).

    Blank lines and lines starting with ``#`` are ignored.
    """
    definitions = Definitions()
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if ":=" not in line:
            raise ExpressionError(f"definition line must contain ':=': {line!r}")
        name, body = (part.strip() for part in line.split(":=", 1))
        definitions.define(name, parse_process(body))
    return definitions
