"""A small standard library of CCS systems used by examples, tests and benchmarks.

Each function returns a ``(process, definitions)`` pair (or directly a
compiled FSP) modelling one of the classical finite-state systems that the
process-algebra literature -- including the intro of the paper -- uses as
motivation: vending machines, buffers built from cells, semaphore-based mutual
exclusion, and a simplified alternating-bit protocol.  They are deliberately
small (tens to a few hundred states when compiled) so that every equivalence
in the library can be run on them interactively.
"""

from __future__ import annotations

from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.semantics import compile_to_fsp
from repro.ccs.syntax import Definitions, Process
from repro.core.fsp import FSP


# ----------------------------------------------------------------------
# vending machines (the canonical "observationally different" example)
# ----------------------------------------------------------------------
def vending_machine() -> tuple[Process, Definitions]:
    """The deterministic vending machine: coin, then a choice of tea or coffee."""
    definitions = parse_definitions(
        """
        VM := coin.(tea!.VM + coffee!.VM)
        """
    )
    return parse_process("VM"), definitions


def broken_vending_machine() -> tuple[Process, Definitions]:
    """The nondeterministic machine that commits to tea or coffee when the coin drops.

    Language equivalent to :func:`vending_machine` but not observationally
    (nor failure) equivalent: after ``coin`` it may refuse ``tea``.
    """
    definitions = parse_definitions(
        """
        BVM := coin.tea!.BVM + coin.coffee!.BVM
        """
    )
    return parse_process("BVM"), definitions


# ----------------------------------------------------------------------
# buffers
# ----------------------------------------------------------------------
def one_place_buffer(
    input_channel: str = "in", output_channel: str = "out"
) -> tuple[Process, Definitions]:
    """A one-place buffer ``B := in.out!.B``."""
    definitions = Definitions()
    definitions.define("B", parse_process(f"{input_channel}.{output_channel}!.B"))
    return parse_process("B"), definitions


def two_place_buffer_spec() -> tuple[Process, Definitions]:
    """The specification of a two-place buffer as a single sequential process."""
    definitions = parse_definitions(
        """
        EMPTY := in.ONE
        ONE := in.TWO + out!.EMPTY
        TWO := out!.ONE
        """
    )
    return parse_process("EMPTY"), definitions


def two_place_buffer_impl() -> tuple[Process, Definitions]:
    """A two-place buffer implemented as two one-place buffers chained on a hidden channel.

    The internal hand-off channel ``mid`` is restricted, so the hand-off shows
    up as a tau-move: the implementation is observationally equivalent -- but
    not strongly equivalent -- to :func:`two_place_buffer_spec`.
    """
    definitions = parse_definitions(
        """
        LEFT := in.mid!.LEFT
        RIGHT := mid.out!.RIGHT
        """
    )
    return parse_process("(LEFT | RIGHT) \\ {mid}"), definitions


# ----------------------------------------------------------------------
# mutual exclusion with a semaphore
# ----------------------------------------------------------------------
def mutual_exclusion(workers: int = 2) -> tuple[Process, Definitions]:
    """``workers`` processes competing for a binary semaphore.

    Each worker performs ``enter_i`` / ``exit_i`` around its critical section,
    acquiring and releasing the semaphore on hidden channels.  The compiled
    system never allows two workers inside the critical section at once, which
    the examples verify by checking observational equivalence against a
    sequential specification for the two-worker case.
    """
    if workers < 1:
        raise ValueError("at least one worker is required")
    definitions = parse_definitions(
        """
        SEM := p.v.SEM
        """
    )
    worker_terms = []
    for index in range(1, workers + 1):
        name = f"W{index}"
        definitions.define(name, parse_process(f"p!.enter{index}.exit{index}.v!.{name}"))
        worker_terms.append(name)
    system = "(" + " | ".join(["SEM", *worker_terms]) + ") \\ {p, v}"
    return parse_process(system), definitions


# ----------------------------------------------------------------------
# a simplified alternating-bit protocol
# ----------------------------------------------------------------------
def alternating_bit_protocol(lossy: bool = True) -> tuple[Process, Definitions]:
    """A simplified alternating-bit protocol over (possibly lossy) channels.

    The sender transmits ``msg0``/``msg1`` alternately, retransmitting while it
    waits for the matching acknowledgement; the message and acknowledgement
    channels may each lose a frame (a tau-move back to the ready state) when
    ``lossy`` is true.  The receiver delivers each fresh message exactly once
    (re-acknowledging duplicates without delivering), so the observable
    behaviour is an alternation of ``send`` and ``deliver!``.  The
    protocol-verification example checks the intended correctness statement --
    observational equivalence with the one-place ``send``/``deliver!`` buffer
    -- on the compiled system.
    """
    loss_msg = " + tau.CH" if lossy else ""
    loss_ack = " + tau.ACH" if lossy else ""
    # Retransmission is only needed (and only safe) when frames can be lost:
    # with reliable rendezvous channels a proactive duplicate can fill the
    # one-place channel and deadlock the ring of committed outputs.
    retransmit0 = " + tau.msg0!.WAIT0" if lossy else ""
    retransmit1 = " + tau.msg1!.WAIT1" if lossy else ""
    definitions = parse_definitions(
        f"""
        SENDER0 := send.msg0!.WAIT0
        WAIT0 := ack0.SENDER1 + ack1.WAIT0{retransmit0}
        SENDER1 := send.msg1!.WAIT1
        WAIT1 := ack1.SENDER0 + ack0.WAIT1{retransmit1}
        CH := msg0.(deliver0!.CH{loss_msg}) + msg1.(deliver1!.CH{loss_msg})
        ACH := rack0.(ack0!.ACH{loss_ack}) + rack1.(ack1!.ACH{loss_ack})
        RECEIVER0 := deliver0.deliver!.rack0!.RECEIVER1 + deliver1.rack1!.RECEIVER0
        RECEIVER1 := deliver1.deliver!.rack1!.RECEIVER0 + deliver0.rack0!.RECEIVER1
        """
    )
    system = (
        "(SENDER0 | CH | ACH | RECEIVER0)"
        " \\ {msg0, msg1, ack0, ack1, rack0, rack1, deliver0, deliver1}"
    )
    return parse_process(system), definitions


# ----------------------------------------------------------------------
# compiled convenience wrappers
# ----------------------------------------------------------------------
def compile_system(pair: tuple[Process, Definitions], max_states: int = 10_000) -> FSP:
    """Compile a ``(process, definitions)`` pair into an FSP."""
    process, definitions = pair
    return compile_to_fsp(process, definitions, max_states=max_states)


def buffer_specification_fsp() -> FSP:
    """The compiled two-place buffer specification."""
    return compile_system(two_place_buffer_spec())


def buffer_implementation_fsp() -> FSP:
    """The compiled two-place buffer implementation (two chained cells)."""
    return compile_system(two_place_buffer_impl())


def vending_machines_fsp() -> tuple[FSP, FSP]:
    """The compiled deterministic and committing vending machines."""
    return compile_system(vending_machine()), compile_system(broken_vending_machine())
