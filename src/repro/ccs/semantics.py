"""Operational semantics of CCS terms and compilation to finite state processes.

The structural operational semantics (SOS) rules of CCS (Milner 1980):

* ``a.P --a--> P``
* ``P + Q --a--> P'``        whenever ``P --a--> P'`` (and symmetrically)
* ``P | Q --a--> P' | Q``    whenever ``P --a--> P'`` (and symmetrically)
* ``P | Q --tau--> P' | Q'`` whenever ``P --a--> P'`` and ``Q --a!--> Q'``
* ``P \\ L --a--> P' \\ L``  whenever ``P --a--> P'`` and ``channel(a)`` not in ``L``
* ``P[f]  --f(a)--> P'[f]``  whenever ``P --a--> P'``
* ``X --a--> P'``            whenever ``X := P`` and ``P --a--> P'``

:func:`derivatives` computes the one-step moves of a term;
:func:`compile_to_fsp` explores the reachable terms exhaustively (with a
configurable state bound, because recursion plus parallel composition can
produce arbitrarily large -- though for guarded, finite-control terms always
finite -- state spaces) and emits an :class:`~repro.core.fsp.FSP` whose states
are the canonical strings of the reachable terms.  The resulting process is a
*restricted* FSP (every state accepting), matching the convention that CCS
processes carry no acceptance information.
"""

from __future__ import annotations

from collections import deque

from repro.core.errors import ExpressionError, StateSpaceLimitError
from repro.core.fsp import ACCEPT, FSP, TAU
from repro.ccs.syntax import (
    CO_SUFFIX,
    Definitions,
    Nil,
    Parallel,
    Prefix,
    Process,
    ProcessRef,
    Relabeling,
    Restriction,
    Sum,
    TAU_ACTION,
    channel_of,
    co,
)


def derivatives(
    process: Process,
    definitions: Definitions | None = None,
    _unfolding: frozenset[str] = frozenset(),
) -> frozenset[tuple[str, Process]]:
    """The one-step moves ``{(action, successor)}`` of a CCS term.

    ``action`` is a channel name, a co-action (``a!``) or :data:`TAU_ACTION`.
    Unguarded recursion (a process name reachable from its own definition
    without passing a prefix) is rejected because it has no finite-state
    reading.
    """
    definitions = definitions if definitions is not None else Definitions()
    if isinstance(process, Nil):
        return frozenset()
    if isinstance(process, Prefix):
        return frozenset({(process.action, process.continuation)})
    if isinstance(process, Sum):
        return derivatives(process.left, definitions, _unfolding) | derivatives(
            process.right, definitions, _unfolding
        )
    if isinstance(process, Parallel):
        moves: set[tuple[str, Process]] = set()
        left_moves = derivatives(process.left, definitions, _unfolding)
        right_moves = derivatives(process.right, definitions, _unfolding)
        for action, successor in left_moves:
            moves.add((action, Parallel(successor, process.right)))
        for action, successor in right_moves:
            moves.add((action, Parallel(process.left, successor)))
        for left_action, left_successor in left_moves:
            if left_action == TAU_ACTION:
                continue
            partner = co(left_action)
            for right_action, right_successor in right_moves:
                if right_action == partner:
                    moves.add((TAU_ACTION, Parallel(left_successor, right_successor)))
        return frozenset(moves)
    if isinstance(process, Restriction):
        moves = set()
        for action, successor in derivatives(process.process, definitions, _unfolding):
            if action != TAU_ACTION and channel_of(action) in process.channels:
                continue
            moves.add((action, Restriction(successor, process.channels)))
        return frozenset(moves)
    if isinstance(process, Relabeling):
        mapping = process.as_dict()

        def rename(action: str) -> str:
            if action == TAU_ACTION:
                return action
            base = channel_of(action)
            renamed = mapping.get(base, base)
            return renamed + CO_SUFFIX if action.endswith(CO_SUFFIX) else renamed

        return frozenset(
            (rename(action), Relabeling(successor, process.mapping))
            for action, successor in derivatives(process.process, definitions, _unfolding)
        )
    if isinstance(process, ProcessRef):
        if process.name in _unfolding:
            raise ExpressionError(f"unguarded recursion through process name {process.name!r}")
        return derivatives(
            definitions.lookup(process.name), definitions, _unfolding | {process.name}
        )
    raise ExpressionError(f"not a CCS process: {process!r}")


def compile_to_fsp(
    process: Process,
    definitions: Definitions | None = None,
    max_states: int = 10_000,
    alphabet: frozenset[str] | set[str] | None = None,
) -> FSP:
    """Compile a CCS term into a finite state process.

    Parameters
    ----------
    process:
        The root term.
    definitions:
        Named process definitions used by :class:`~repro.ccs.syntax.ProcessRef`
        nodes.
    max_states:
        Bound on the number of distinct reachable terms; exceeded bounds raise
        :class:`~repro.core.errors.StateSpaceLimitError` rather than silently
        truncating the semantics.
    alphabet:
        Optional ambient alphabet; defaults to the actions (and co-actions)
        actually occurring on reachable transitions.

    Returns
    -------
    FSP
        A restricted FSP (every state accepting) whose transitions follow the
        SOS rules; synchronisations appear as tau-transitions.
    """
    definitions = definitions if definitions is not None else Definitions()
    start_name = str(process)
    names: dict[Process, str] = {process: start_name}
    transitions: set[tuple[str, str, str]] = set()
    used_actions: set[str] = set()
    queue: deque[Process] = deque([process])
    while queue:
        current = queue.popleft()
        current_name = names[current]
        for action, successor in sorted(
            derivatives(current, definitions), key=lambda move: (move[0], str(move[1]))
        ):
            if successor not in names:
                if len(names) >= max_states:
                    raise StateSpaceLimitError(
                        f"CCS state-space exploration exceeded {max_states} states"
                    )
                names[successor] = str(successor)
                queue.append(successor)
            label = TAU if action == TAU_ACTION else action
            if label != TAU:
                used_actions.add(label)
            transitions.add((current_name, label, names[successor]))
    sigma = set(alphabet) if alphabet is not None else used_actions
    sigma |= used_actions
    return FSP(
        states=set(names.values()),
        start=start_name,
        alphabet=sigma,
        transitions=transitions,
        variables=[ACCEPT],
        extensions=[(name, ACCEPT) for name in names.values()],
    )


def observable_alphabet(fsp: FSP) -> frozenset[str]:
    """The observable actions actually used by a compiled CCS process."""
    return frozenset(action for _src, action, _dst in fsp.transitions if action != TAU)
