"""Abstract syntax of a core CCS term language (Milner 1980).

Section 6 of the paper points towards *extended star expressions*: star
expressions enriched with the genuinely concurrent operators of CCS, above all
parallel composition.  The companion paper (Kanellakis & Smolka 1988) studies
networks of communicating processes built this way.  To make that layer of the
theory executable -- and to give the examples realistic workloads -- the
library includes a small CCS term calculus:

``0``                      the inert process
``a.P``                    action prefix (``a`` an action, a co-action ``a!``
                           or the unobservable ``tau``)
``P + Q``                  nondeterministic choice
``P | Q``                  parallel composition (interleaving plus
                           synchronisation of complementary actions into tau)
``P \\ {a, ...}``          restriction (the listed channels and their
                           co-actions become internal: they may only occur as
                           synchronisations)
``P [b/a, ...]``           relabelling
``X``                      a reference to a named process, bound in a
                           :class:`Definitions` environment (guarded recursion)

Terms are immutable dataclasses; :mod:`repro.ccs.semantics` compiles a term
(plus its environment) into a finite state process by exhaustive exploration
of the SOS rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.core.actions import CO_SUFFIX, channel_of, co_action, is_co_action
from repro.core.errors import ExpressionError

__all__ = [
    "CO_SUFFIX",
    "Definitions",
    "Nil",
    "Parallel",
    "Prefix",
    "Process",
    "ProcessRef",
    "Relabeling",
    "Restriction",
    "Sum",
    "TAU_ACTION",
    "actions_of",
    "channel_of",
    "co",
    "is_co_action",
    "validate_action",
]

#: The unobservable action of CCS, shared with :mod:`repro.core.fsp`.
TAU_ACTION = "tau"


def co(action: str) -> str:
    """The complementary action: ``co("a") == "a!"`` and ``co("a!") == "a"``.

    The suffix convention itself lives in :mod:`repro.core.actions` (shared
    with the state-machine composition operators); this term-level wrapper
    adds the check that ``tau``, having no complement, is rejected.
    """
    if action == TAU_ACTION:
        raise ExpressionError("tau has no complement")
    return co_action(action)


def validate_action(action: str) -> str:
    """Validate an action label (a channel, a co-action or ``tau``)."""
    base = channel_of(action)
    if not base or not all(ch.isalnum() or ch == "_" for ch in base):
        raise ExpressionError(f"invalid CCS action {action!r}")
    return action


class _Base:
    """Operator sugar shared by CCS term nodes."""

    def __add__(self, other: "Process") -> "Sum":
        return Sum(self, other)  # type: ignore[arg-type]

    def __or__(self, other: "Process") -> "Parallel":
        return Parallel(self, other)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Nil(_Base):
    """The inert process ``0``."""

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True)
class Prefix(_Base):
    """Action prefix ``action . continuation``."""

    action: str
    continuation: "Process"

    def __post_init__(self) -> None:
        if self.action != TAU_ACTION:
            validate_action(self.action)

    def __str__(self) -> str:
        return f"{self.action}.{self.continuation}"


@dataclass(frozen=True)
class Sum(_Base):
    """Nondeterministic choice ``left + right``."""

    left: "Process"
    right: "Process"

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class Parallel(_Base):
    """Parallel composition ``left | right``."""

    left: "Process"
    right: "Process"

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Restriction(_Base):
    """Restriction ``process \\ channels``: the channels become internal."""

    process: "Process"
    channels: frozenset[str]

    def __str__(self) -> str:
        inner = ", ".join(sorted(self.channels))
        return f"({self.process} \\ {{{inner}}})"


@dataclass(frozen=True)
class Relabeling(_Base):
    """Relabelling ``process [new/old, ...]`` applied to channels (and their co-actions)."""

    process: "Process"
    mapping: tuple[tuple[str, str], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{new}/{old}" for old, new in self.mapping)
        return f"({self.process}[{inner}])"

    def as_dict(self) -> dict[str, str]:
        return dict(self.mapping)


@dataclass(frozen=True)
class ProcessRef(_Base):
    """A reference to a named process bound in a :class:`Definitions` environment."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isupper():
            raise ExpressionError(
                f"process names must start with an upper-case letter: {self.name!r}"
            )

    def __str__(self) -> str:
        return self.name


Process = Union[Nil, Prefix, Sum, Parallel, Restriction, Relabeling, ProcessRef]


@dataclass
class Definitions:
    """An environment of named process definitions (``X := P``)."""

    bindings: dict[str, Process] = field(default_factory=dict)

    def define(self, name: str, process: Process) -> "Definitions":
        """Bind ``name`` to ``process`` (names must start with an upper-case letter)."""
        ProcessRef(name)  # validation side effect
        self.bindings[name] = process
        return self

    def lookup(self, name: str) -> Process:
        if name not in self.bindings:
            raise ExpressionError(f"undefined process name {name!r}")
        return self.bindings[name]

    def __contains__(self, name: str) -> bool:
        return name in self.bindings


def actions_of(
    process: Process,
    definitions: Definitions | None = None,
    _seen: frozenset[str] = frozenset(),
) -> frozenset[str]:
    """All channel names syntactically occurring in the term (co-actions folded to channels)."""
    if isinstance(process, Nil):
        return frozenset()
    if isinstance(process, Prefix):
        rest = actions_of(process.continuation, definitions, _seen)
        if process.action == TAU_ACTION:
            return rest
        return rest | {channel_of(process.action)}
    if isinstance(process, (Sum, Parallel)):
        return actions_of(process.left, definitions, _seen) | actions_of(
            process.right, definitions, _seen
        )
    if isinstance(process, Restriction):
        return actions_of(process.process, definitions, _seen) | process.channels
    if isinstance(process, Relabeling):
        inner = actions_of(process.process, definitions, _seen)
        mapping = process.as_dict()
        return frozenset(mapping.get(channel, channel) for channel in inner) | frozenset(
            mapping.values()
        )
    if isinstance(process, ProcessRef):
        if definitions is None or process.name in _seen or process.name not in definitions:
            return frozenset()
        return actions_of(definitions.lookup(process.name), definitions, _seen | {process.name})
    raise ExpressionError(f"not a CCS process: {process!r}")
