"""Workload generators: random processes, parametric families, random expressions."""

from repro.generators.expressions import (
    alternating_expression,
    left_deep_concat,
    random_star_expression,
    starred_unions,
)
from repro.generators.families import (
    binary_tree,
    chain,
    comb,
    cycle,
    duplicated_chain,
    kanellakis_inequivalent_pair,
    kanellakis_pair,
    nondeterministic_counter,
    restricted_counter,
    tau_ladder,
)
from repro.generators.random_fsp import (
    perturb,
    random_deterministic_fsp,
    random_equivalent_copy,
    random_finite_tree,
    random_fsp,
    random_observable_fsp,
    random_restricted_observable_fsp,
    random_rou_fsp,
)

__all__ = [
    "alternating_expression",
    "binary_tree",
    "chain",
    "comb",
    "cycle",
    "duplicated_chain",
    "kanellakis_inequivalent_pair",
    "kanellakis_pair",
    "left_deep_concat",
    "nondeterministic_counter",
    "perturb",
    "random_deterministic_fsp",
    "random_equivalent_copy",
    "random_finite_tree",
    "random_fsp",
    "random_observable_fsp",
    "random_restricted_observable_fsp",
    "random_rou_fsp",
    "random_star_expression",
    "restricted_counter",
    "starred_unions",
    "tau_ladder",
]
