"""Random process generators used by property-based tests and benchmarks.

All generators take an explicit ``random.Random`` seed (or a seed integer) so
that every benchmark row and every Hypothesis example is reproducible.  The
generators can target specific model classes of the paper's hierarchy so that
tests of, say, failure equivalence can draw restricted processes only.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.fsp import ACCEPT, FSP, TAU, FSPBuilder


def _rng(seed: int | random.Random) -> random.Random:
    return seed if isinstance(seed, random.Random) else random.Random(seed)


def random_fsp(
    num_states: int,
    alphabet: Sequence[str] = ("a", "b"),
    transition_density: float = 1.5,
    tau_probability: float = 0.15,
    accepting_probability: float = 0.5,
    all_accepting: bool = False,
    ensure_connected: bool = True,
    seed: int | random.Random = 0,
) -> FSP:
    """A random general FSP.

    Parameters
    ----------
    num_states:
        Number of states.
    alphabet:
        The observable action alphabet.
    transition_density:
        Expected number of outgoing transitions per state.
    tau_probability:
        Probability that a generated transition is labelled tau.
    accepting_probability:
        Probability that a state is accepting (ignored when ``all_accepting``).
    all_accepting:
        Produce a restricted process (every state accepting).
    ensure_connected:
        Add a spanning chain of transitions so every state is reachable from
        the start state; keeps generated instances from degenerating into many
        tiny unreachable islands.
    seed:
        Seed or ``random.Random`` instance.
    """
    rng = _rng(seed)
    if num_states < 1:
        raise ValueError("num_states must be positive")
    states = [f"s{i}" for i in range(num_states)]
    builder = FSPBuilder(alphabet=alphabet)
    for state in states:
        builder.add_state(state)

    def pick_action() -> str:
        if alphabet and rng.random() >= tau_probability:
            return rng.choice(list(alphabet))
        return TAU if tau_probability > 0 else rng.choice(list(alphabet))

    if ensure_connected and num_states > 1:
        order = states[1:]
        rng.shuffle(order)
        previous = states[0]
        for state in order:
            builder.add_transition(previous, pick_action(), state)
            previous = rng.choice(states[: states.index(state) + 1])
    total_transitions = int(transition_density * num_states)
    for _ in range(total_transitions):
        src = rng.choice(states)
        dst = rng.choice(states)
        builder.add_transition(src, pick_action(), dst)
    if all_accepting:
        builder.mark_all_accepting()
    else:
        for state in states:
            if rng.random() < accepting_probability:
                builder.mark_accepting(state)
    return builder.build(start=states[0])


def random_observable_fsp(
    num_states: int,
    alphabet: Sequence[str] = ("a", "b"),
    transition_density: float = 1.5,
    accepting_probability: float = 0.5,
    all_accepting: bool = False,
    seed: int | random.Random = 0,
) -> FSP:
    """A random observable (tau-free) FSP."""
    return random_fsp(
        num_states,
        alphabet=alphabet,
        transition_density=transition_density,
        tau_probability=0.0,
        accepting_probability=accepting_probability,
        all_accepting=all_accepting,
        seed=seed,
    )


def random_restricted_observable_fsp(
    num_states: int,
    alphabet: Sequence[str] = ("a", "b"),
    transition_density: float = 1.5,
    seed: int | random.Random = 0,
) -> FSP:
    """A random restricted observable FSP (the setting of the Section 4-5 reductions)."""
    return random_observable_fsp(
        num_states,
        alphabet=alphabet,
        transition_density=transition_density,
        all_accepting=True,
        seed=seed,
    )


def random_rou_fsp(
    num_states: int,
    transition_density: float = 1.3,
    seed: int | random.Random = 0,
) -> FSP:
    """A random restricted observable unary FSP over the single action ``a``."""
    return random_restricted_observable_fsp(
        num_states, alphabet=("a",), transition_density=transition_density, seed=seed
    )


def random_deterministic_fsp(
    num_states: int,
    alphabet: Sequence[str] = ("a", "b"),
    accepting_probability: float = 0.5,
    seed: int | random.Random = 0,
) -> FSP:
    """A random deterministic FSP: exactly one transition per action from every state."""
    rng = _rng(seed)
    states = [f"s{i}" for i in range(num_states)]
    builder = FSPBuilder(alphabet=alphabet)
    for state in states:
        for action in alphabet:
            builder.add_transition(state, action, rng.choice(states))
        if rng.random() < accepting_probability:
            builder.mark_accepting(state)
    return builder.build(start=states[0])


def random_finite_tree(
    num_states: int,
    alphabet: Sequence[str] = ("a", "b"),
    seed: int | random.Random = 0,
) -> FSP:
    """A random finite-tree restricted process (each non-root state has one parent)."""
    rng = _rng(seed)
    states = [f"t{i}" for i in range(num_states)]
    builder = FSPBuilder(alphabet=alphabet)
    builder.add_state(states[0])
    for index in range(1, num_states):
        parent = states[rng.randrange(index)]
        builder.add_transition(parent, rng.choice(list(alphabet)), states[index])
    builder.mark_all_accepting()
    return builder.build(start=states[0])


def perturb(fsp: FSP, seed: int | random.Random = 0) -> FSP:
    """A slightly modified copy of a process (one random transition added or removed).

    Benchmarks use pairs ``(fsp, perturb(fsp))`` as "probably inequivalent but
    very similar" inputs, which are the hard case for equivalence checkers.
    """
    rng = _rng(seed)
    transitions = set(fsp.transitions)
    states = sorted(fsp.states)
    actions = sorted(fsp.alphabet) or [TAU]
    if transitions and rng.random() < 0.5:
        transitions.discard(rng.choice(sorted(transitions)))
    else:
        transitions.add((rng.choice(states), rng.choice(actions), rng.choice(states)))
    return FSP(
        states=fsp.states,
        start=fsp.start,
        alphabet=fsp.alphabet,
        transitions=transitions,
        variables=fsp.variables,
        extensions=fsp.extensions,
    )


def random_equivalent_copy(fsp: FSP, duplicates: int = 1, seed: int | random.Random = 0) -> FSP:
    """A process observationally equivalent to ``fsp`` obtained by duplicating states.

    Each chosen state is cloned: the clone receives copies of the original's
    outgoing transitions and extensions, and every predecessor of the original
    also points at the clone.  The result is strongly (hence observationally)
    equivalent to the input state-for-state, but has more states --
    benchmarks use it to produce non-trivial *equivalent* input pairs.
    """
    rng = _rng(seed)
    states = set(fsp.states)
    transitions = set(fsp.transitions)
    extensions = set(fsp.extensions)
    originals = sorted(fsp.states)
    for index in range(duplicates):
        original = rng.choice(originals)
        clone = f"{original}#dup{index}"
        while clone in states:
            clone += "'"
        states.add(clone)
        for src, action, dst in list(transitions):
            if src == original:
                transitions.add((clone, action, dst))
            if dst == original:
                transitions.add((src, action, clone))
        for state, var in list(extensions):
            if state == original:
                extensions.add((clone, var))
    return FSP(
        states=states,
        start=fsp.start,
        alphabet=fsp.alphabet,
        transitions=transitions,
        variables=fsp.variables | {ACCEPT},
        extensions=extensions,
    )
