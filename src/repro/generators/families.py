"""Parameterised process families used by the benchmark harness.

Each family is a function from a size parameter to an FSP (or a pair of FSPs)
with a known, documented structure.  They are the workloads behind the
experiment rows of EXPERIMENTS.md:

* scaling families for the partition-refinement comparison of Theorem 3.1
  (chains, cycles, complete bipartite "combs", trees with duplicated
  subtrees);
* tau-rich families for the observational-equivalence benchmark of
  Theorem 4.1(a);
* the hard universality-style instances that make ``approx_1`` / ``approx_k``
  and failure equivalence blow up (Lemma 4.2 / Theorems 4.1(b), 5.1).
"""

from __future__ import annotations

import math

from repro.core.errors import InvalidProcessError
from repro.core.fsp import ACCEPT, FSP, TAU, FSPBuilder, from_transitions


def with_snag(fsp: FSP, state: str, action: str = "snag") -> FSP:
    """Return ``fsp`` with an ``action`` self-loop snagged onto ``state``.

    The *snag* is the local-fault idiom shared by the composed families and
    by the crash-fault rewriter of :mod:`repro.protocols.faults`: one extra
    self-loop (observable, or ``tau`` when ``action`` is ``TAU``) planted on
    an existing state.  It adds behaviour but no states, so snagged and clean
    systems have identical reachable sizes while being inequivalent under
    every notion from language up (for observable ``action``).
    """
    state = str(state)
    if state not in fsp.states:
        raise InvalidProcessError(
            f"cannot snag unknown state {state!r} (states: {sorted(fsp.states)})"
        )
    alphabet = set(fsp.alphabet)
    if action != TAU:
        alphabet.add(str(action))
    return FSP(
        states=fsp.states,
        start=fsp.start,
        alphabet=alphabet,
        transitions=set(fsp.transitions) | {(state, str(action), state)},
        variables=fsp.variables,
        extensions=fsp.extensions,
    )


def chain(length: int, action: str = "a", all_accepting: bool = True) -> FSP:
    """A simple chain ``s0 --a--> s1 --a--> ... --a--> s_length``."""
    transitions = [(f"s{i}", action, f"s{i + 1}") for i in range(length)]
    return from_transitions(
        transitions,
        start="s0",
        all_accepting=all_accepting,
        accepting=[f"s{length}"],
        alphabet={action},
    )


def cycle(length: int, action: str = "a", all_accepting: bool = True) -> FSP:
    """A directed cycle of the given length."""
    if length < 1:
        raise ValueError("cycle length must be positive")
    transitions = [(f"s{i}", action, f"s{(i + 1) % length}") for i in range(length)]
    return from_transitions(
        transitions,
        start="s0",
        all_accepting=all_accepting,
        accepting=["s0"],
        alphabet={action},
    )


def binary_tree(depth: int, actions: tuple[str, str] = ("a", "b")) -> FSP:
    """A complete binary tree of the given depth (a finite-tree restricted process)."""
    builder = FSPBuilder(alphabet=set(actions))
    builder.add_state("n")

    def grow(node: str, remaining: int) -> None:
        if remaining == 0:
            return
        left, right = node + "0", node + "1"
        builder.add_transition(node, actions[0], left)
        builder.add_transition(node, actions[1], right)
        grow(left, remaining - 1)
        grow(right, remaining - 1)

    grow("n", depth)
    builder.mark_all_accepting()
    return builder.build(start="n")


def comb(teeth: int, actions: tuple[str, str] = ("a", "b")) -> FSP:
    """A "comb": a chain of ``a``-moves with a ``b``-tooth hanging off every node.

    Combs refine slowly under partition refinement (each tooth distance from
    the end gives a distinct class), which makes them a good stress test for
    the splitter-queue algorithms.
    """
    builder = FSPBuilder(alphabet=set(actions))
    for index in range(teeth):
        builder.add_transition(f"c{index}", actions[0], f"c{index + 1}")
        builder.add_transition(f"c{index}", actions[1], f"tooth{index}")
    builder.mark_all_accepting()
    return builder.build(start="c0")


def tau_ladder(rungs: int, action: str = "a") -> FSP:
    """A tau-rich process: a chain alternating tau and observable moves.

    The tau-closure of the start state grows linearly with ``rungs`` and the
    saturated process of Theorem 4.1(a) becomes quadratically denser, which is
    exactly the regime the observational-equivalence benchmark measures.
    """
    builder = FSPBuilder(alphabet={action})
    for index in range(rungs):
        builder.add_transition(f"u{index}", TAU, f"u{index + 1}")
        builder.add_transition(f"u{index}", action, f"v{index}")
        builder.add_transition(f"v{index}", TAU, f"u{index}")
    builder.mark_all_accepting()
    return builder.build(start="u0")


def tau_mesh(size: int, action: str = "a") -> FSP:
    """A square tau-mesh: tau-moves right and down, an observable diagonal.

    States form a ``side x side`` grid with ``side = ceil(sqrt(size))`` (at
    least 2): state ``(r, c)`` has tau-moves to ``(r+1, c)`` and ``(r, c+1)``
    and an ``action``-move to ``(r+1, c+1)``.  The tau-closure of ``(r, c)``
    is the whole rectangle below and to the right, so the saturated relation
    has ``Theta(n^2)`` arcs while the input is sparse -- the regime where the
    kernel saturation's bitset propagation pays off most.  Unlike
    :func:`tau_ladder` the tau sub-relation is a DAG of overlapping paths
    (every tau-SCC is a singleton), complementing the ladder's cycles.
    """
    side = max(2, math.isqrt(max(0, size - 1)) + 1)
    builder = FSPBuilder(alphabet={action})

    def name(row: int, col: int) -> str:
        return f"g{row}_{col}"

    for row in range(side):
        for col in range(side):
            if row + 1 < side:
                builder.add_transition(name(row, col), TAU, name(row + 1, col))
            if col + 1 < side:
                builder.add_transition(name(row, col), TAU, name(row, col + 1))
            if row + 1 < side and col + 1 < side:
                builder.add_transition(name(row, col), action, name(row + 1, col + 1))
    builder.mark_all_accepting()
    return builder.build(start=name(0, 0))


def tau_diamond_tower(levels: int, actions: tuple[str, str] = ("a", "b")) -> FSP:
    """A tower of tau-diamonds with observable shortcuts.

    Level ``i`` is a diamond ``t_i --tau--> l_i | r_i --tau--> t_{i+1}`` with
    observable shortcuts ``l_i --a--> t_{i+1}`` and ``r_i --b--> t_{i+1}``
    (``3 * levels + 1`` states).  Every state tau-reaches every later level,
    so saturation is quadratically dense, and the number of tau-*paths* grows
    as ``2^levels`` -- per-path enumeration dies here while the closure
    computation stays linear in the condensation.
    """
    if levels < 1:
        raise ValueError("levels must be positive")
    first, second = actions
    builder = FSPBuilder(alphabet=set(actions))
    for level in range(levels):
        top, left, right, nxt = (
            f"t{level}",
            f"l{level}",
            f"r{level}",
            f"t{level + 1}",
        )
        builder.add_transition(top, TAU, left)
        builder.add_transition(top, TAU, right)
        builder.add_transition(left, TAU, nxt)
        builder.add_transition(right, TAU, nxt)
        builder.add_transition(left, first, nxt)
        builder.add_transition(right, second, nxt)
    builder.mark_all_accepting()
    return builder.build(start="t0")


def shift_register(bits: int, actions: tuple[str, str] = ("a", "b")) -> FSP:
    """A de Bruijn shift register: ``2^bits`` states, refinement depth ``bits``.

    State ``i`` encodes the register contents; shifting in a ``0`` (action
    ``a``) moves to ``i >> 1`` and shifting in a ``1`` (action ``b``) to
    ``(i >> 1) | 2^(bits-1)``.  Only odd states (low bit set) are accepting,
    so the initial partition splits on bit 0, round ``r`` of signature
    refinement splits on bit ``r``, and the coarsest stable partition is
    discrete after exactly ``bits`` rounds.

    The family is deterministic with fanout 2 and ``O(log n)`` refinement
    depth -- the wide-and-shallow regime where the round-synchronous
    vectorized kernel dominates the sequential worklist solvers (contrast
    :func:`comb` and :func:`duplicated_chain`, whose ``Theta(n)`` depth is
    worklist territory).  :func:`shift_register_csr` builds the same system
    straight into CSR arrays for sizes where a dict FSP cannot be
    materialised.
    """
    if bits < 1:
        raise ValueError("bits must be positive")
    n = 1 << bits
    half = n >> 1
    builder = FSPBuilder(alphabet=set(actions))
    for i in range(n):
        builder.add_transition(f"s{i}", actions[0], f"s{i >> 1}")
        builder.add_transition(f"s{i}", actions[1], f"s{(i >> 1) | half}")
    builder.mark_accepting(*(f"s{i}" for i in range(1, n, 2)))
    return builder.build(start="s0")


def shift_register_csr(bits: int, mmap_dir=None):
    """:func:`shift_register` built directly as CSR arrays, no FSP in between.

    Returns ``(csr, block_of)`` where ``csr`` is a
    :class:`~repro.utils.matrices.CSRArrays` (or a
    :class:`~repro.utils.matrices.MmapCSR` when ``mmap_dir`` is given, the
    out-of-core route for the ``10^6``-state tier) and ``block_of`` is the
    initial assignment by acceptance parity -- the same instance the FSP
    route produces, expressed on integers.
    """
    from repro.utils.matrices import CSRArrays, MmapCSR, require_numpy

    np = require_numpy()
    if bits < 1:
        raise ValueError("bits must be positive")
    n = 1 << bits
    half = n >> 1
    states = np.arange(n, dtype=np.int64)
    if mmap_dir is not None:
        store = MmapCSR.create(mmap_dir, n, 2, 2 * n)
        store.offsets[:] = np.arange(0, 2 * n + 1, 2, dtype=np.int64)
        store.actions[0::2] = 0
        store.actions[1::2] = 1
        store.targets[0::2] = states >> 1
        store.targets[1::2] = (states >> 1) | half
        store.flush()
        csr = store
    else:
        targets = np.empty(2 * n, dtype=np.int64)
        targets[0::2] = states >> 1
        targets[1::2] = (states >> 1) | half
        actions = np.tile(np.array([0, 1], dtype=np.int64), n)
        offsets = np.arange(0, 2 * n + 1, 2, dtype=np.int64)
        csr = CSRArrays(n, 2, offsets, actions, targets)
    return csr, (states & 1)


def nondeterministic_counter(bits: int) -> FSP:
    """A standard observable process whose determinisation has ~2^bits states.

    The classical "the k-th symbol from the end is an `a`" automaton: from the
    start state the process guesses the distinguished position.  Used to drive
    the exponential worst cases of ``approx_1`` / failure equivalence, i.e.
    the empirical face of the PSPACE-hardness results.
    """
    if bits < 1:
        raise ValueError("bits must be positive")
    builder = FSPBuilder(alphabet={"a", "b"})
    builder.add_transition("g", "a", "g")
    builder.add_transition("g", "b", "g")
    builder.add_transition("g", "a", "d0")
    for index in range(bits - 1):
        builder.add_transition(f"d{index}", "a", f"d{index + 1}")
        builder.add_transition(f"d{index}", "b", f"d{index + 1}")
    builder.mark_accepting(f"d{bits - 1}")
    return builder.build(start="g")


def restricted_counter(bits: int) -> FSP:
    """The restricted (all-accepting) variant of :func:`nondeterministic_counter`.

    Feeding it to the failure-equivalence checker exhibits the exponential
    subset-construction behaviour predicted by Theorem 5.1.
    """
    base = nondeterministic_counter(bits)
    return FSP(
        states=base.states,
        start=base.start,
        alphabet=base.alphabet,
        transitions=base.transitions,
        variables=[ACCEPT],
        extensions=[(state, ACCEPT) for state in base.states],
    )


def duplicated_chain(length: int, copies: int, action: str = "a") -> FSP:
    """A chain in which every node is duplicated ``copies`` times.

    All duplicates of a node are strongly equivalent, so the minimal quotient
    is the plain chain; the family measures how quickly the refinement
    algorithms collapse large equivalence classes.
    """
    builder = FSPBuilder(alphabet={action})
    for index in range(length):
        for copy_src in range(copies):
            for copy_dst in range(copies):
                builder.add_transition(f"s{index}_{copy_src}", action, f"s{index + 1}_{copy_dst}")
    for copy in range(copies):
        builder.add_state(f"s{length}_{copy}")
    builder.mark_all_accepting()
    return builder.build(start="s0_0")


def kanellakis_pair(size: int) -> tuple[FSP, FSP]:
    """A pair of large, strongly *equivalent* processes of parametric size.

    Both are duplicated chains of the same length with different duplication
    factors, so their quotients coincide; equivalence checkers must do real
    work to discover it.  Used as the "equivalent" column of the Theorem 3.1
    benchmark.
    """
    return duplicated_chain(size, 2), duplicated_chain(size, 3)


def kanellakis_inequivalent_pair(size: int) -> tuple[FSP, FSP]:
    """A pair of similar but inequivalent processes.

    The right process is the duplicated chain with two extra states appended
    after the final chain node, so it admits strictly longer traces than the
    left one; the difference only becomes visible after refining all the way
    down the chain, which keeps the pair a meaningful "hard inequivalent"
    benchmark input.
    """
    left = duplicated_chain(size, 2)
    right_builder = FSPBuilder(alphabet={"a"})
    for src, action, dst in duplicated_chain(size, 2).transitions:
        right_builder.add_transition(src, action, dst)
    right_builder.add_transition(f"s{size}_0", "a", "stray")
    right_builder.add_transition("stray", "a", "stray2")
    right_builder.mark_all_accepting()
    return left, right_builder.build(start="s0_0")


# ----------------------------------------------------------------------
# Composed scenario families (Section 6 workloads for repro.explore)
# ----------------------------------------------------------------------
def _fold_ccs(specs):
    """Left-fold a list of component specs into one CCS composition tree."""
    from repro.explore.system import ProductSpec

    tree = specs[0]
    for spec in specs[1:]:
        tree = ProductSpec("ccs", tree, spec)
    return tree


def deterministic_cycle(length: int, action: str, extra=()) -> FSP:
    """A deterministic cycle over one action, with optional extra transitions.

    ``extra`` is an iterable of ``(state_index, action, state_index)``
    triples layered on top of the cycle -- the hook the inequivalent
    composed families use to plant a local fault.
    """
    if length < 1:
        raise ValueError("cycle length must be positive")
    builder = FSPBuilder(alphabet={action})
    for index in range(length):
        builder.add_transition(f"k{index}", action, f"k{(index + 1) % length}")
    for src, extra_action, dst in extra:
        builder.add_transition(f"k{src % length}", extra_action, f"k{dst % length}")
    builder.mark_all_accepting()
    return builder.build(start="k0")


def interleaved_cycles_system(lengths, fault_depth: int | None = None):
    """Pure interleaving of independent cycles with disjoint alphabets.

    Component ``j`` is a deterministic cycle of ``lengths[j]`` states over
    the private action ``c<j>``, so the reachable product is exactly the
    grid of size ``prod(lengths)`` -- the textbook exponential-product
    family.  With ``fault_depth`` set, component 0 gains a ``snag``
    self-loop at that depth: a *local* fault whose product-level effect is a
    shallow trace difference, the shape the on-the-fly checker is built to
    find without sweeping the grid.
    """
    from repro.explore.system import LeafSpec, ProductSpec

    if not lengths:
        raise ValueError("at least one cycle is required")
    components = []
    for index, length in enumerate(lengths):
        component = deterministic_cycle(length, f"c{index}")
        if fault_depth is not None and index == 0:
            component = with_snag(component, f"k{fault_depth % length}", "snag")
        components.append(LeafSpec(component, label=f"cycle{index}"))
    tree = components[0]
    for component in components[1:]:
        tree = ProductSpec("interleave", tree, component)
    return tree


def interleaved_cycles_pair(lengths, fault_depth: int = 2):
    """An (equivalent-shape, locally-faulty) pair of interleaved-cycle systems.

    Both systems have exactly ``prod(lengths)`` reachable product states
    (the fault is a self-loop, adding behaviour but no states); they are
    inequivalent under every notion from language up, with the difference
    reachable within ``fault_depth + 1`` moves of the start.
    """
    return (
        interleaved_cycles_system(lengths),
        interleaved_cycles_system(lengths, fault_depth=fault_depth),
    )


def interleaved_cycles_product_size(lengths) -> int:
    """The exact reachable product size of :func:`interleaved_cycles_system`."""
    size = 1
    for length in lengths:
        size *= length
    return size


def dining_philosophers_system(num_philosophers: int = 3):
    """Dijkstra's dining philosophers as a CCS composition spec.

    Philosopher ``i`` picks up fork ``i`` then fork ``i+1 mod n`` (the
    deadlock-prone symmetric protocol), eats (``eat<i>``, observable) and
    puts both forks back; fork ``j`` is a two-state mutex.  All handshake
    channels are restricted, so the composed system moves on ``eat<i>`` and
    tau only -- the classic "state explosion with a deadlock hiding in it"
    workload for on-the-fly exploration.

    Restriction is pushed *inward*: fork ``j``'s channels are closed off as
    soon as both of its users (philosophers ``j-1`` and ``j``) are in the
    subtree.  This is behaviour-preserving (the channels have no other
    users) and is what lets ``minimize_compositionally`` keep intermediate
    products small instead of dragging open handshakes to the root.
    """
    from repro.explore.system import LeafSpec, ProductSpec, RestrictSpec

    n = num_philosophers
    if n < 2:
        raise ValueError("at least two philosophers are required")

    def philosopher(i: int) -> LeafSpec:
        left, right = i, (i + 1) % n
        builder = FSPBuilder(alphabet={f"pick{left}!", f"pick{right}!", f"put{left}!",
                                       f"put{right}!", f"eat{i}"})
        builder.add_transition("think", f"pick{left}!", "left_held")
        builder.add_transition("left_held", f"pick{right}!", "ready")
        builder.add_transition("ready", f"eat{i}", "sated")
        builder.add_transition("sated", f"put{left}!", "dropping")
        builder.add_transition("dropping", f"put{right}!", "think")
        builder.mark_all_accepting()
        return LeafSpec(builder.build(start="think"), label=f"phil{i}")

    def fork(j: int) -> LeafSpec:
        builder = FSPBuilder(alphabet={f"pick{j}", f"put{j}"})
        builder.add_transition("free", f"pick{j}", "busy")
        builder.add_transition("busy", f"put{j}", "free")
        builder.mark_all_accepting()
        return LeafSpec(builder.build(start="free"), label=f"fork{j}")

    tree = philosopher(0)
    for i in range(1, n):
        # fork i's users are philosophers i-1 and i, both now present.
        tree = RestrictSpec(
            ProductSpec("ccs", ProductSpec("ccs", tree, philosopher(i)), fork(i)),
            frozenset({f"pick{i}", f"put{i}"}),
        )
    # fork 0 closes the ring: its users are philosophers 0 and n-1.
    root = RestrictSpec(
        ProductSpec("ccs", tree, fork(0)), frozenset({"pick0", "put0"})
    )
    from repro.explore.reduce import RotationSymmetry, annotate_symmetry

    # Leaf flatten order is phil0, phil1, fork1, phil2, fork2, ...,
    # phil<n-1>, fork<n-1>, fork0; rotating the table advances philosophers
    # and forks together, so both rings rotate simultaneously.
    phil_ring = (0,) + tuple(2 * i - 1 for i in range(1, n))
    fork_ring = (2 * n - 1,) + tuple(2 * i for i in range(1, n))
    return annotate_symmetry(root, RotationSymmetry((phil_ring, fork_ring)))


def redundant_interleaving_system(num_components: int = 3, length: int = 4, copies: int = 3):
    """Interleaving of duplicated chains: the compositional-minimisation showcase.

    Each component is a :func:`duplicated_chain` over a private action, so it
    carries ``copies``-fold internal redundancy that quotients away to a
    plain chain.  The eager route builds the full ``(length * copies)``-ish
    grid before minimising; ``minimize_compositionally`` shrinks every
    component first and composes quotients -- the regime where minimising
    before the product beats minimising after it.
    """
    from repro.explore.system import LeafSpec, ProductSpec

    if num_components < 1:
        raise ValueError("at least one component is required")
    tree = None
    for index in range(num_components):
        leaf = LeafSpec(
            duplicated_chain(length, copies, action=f"c{index}"), label=f"dup{index}"
        )
        tree = leaf if tree is None else ProductSpec("interleave", tree, leaf)
    return tree


def token_ring_system(num_stations: int = 4, faulty_station: int | None = None):
    """A token ring: stations serve in turn, passing the token on a hidden channel.

    Station ``i`` waits for ``tok<i>``, performs the observable ``serve<i>``
    and hands the token to station ``i+1 mod n``; station 0 starts holding
    the token.  With ``faulty_station`` set, that station can also drop into
    a ``fault<i>`` self-loop instead of serving -- a trace-level deviation
    used by :func:`token_ring_pair`.
    """
    from repro.explore.system import LeafSpec, RestrictSpec

    n = num_stations
    if n < 2:
        raise ValueError("at least two stations are required")
    components = []
    for i in range(n):
        succ = (i + 1) % n
        alphabet = {f"tok{i}", f"tok{succ}!", f"serve{i}"}
        builder = FSPBuilder(alphabet=alphabet)
        builder.add_transition("wait", f"tok{i}", "holding")
        builder.add_transition("holding", f"serve{i}", "served")
        builder.add_transition("served", f"tok{succ}!", "wait")
        builder.mark_all_accepting()
        station = builder.build(start="holding" if i == 0 else "wait")
        if faulty_station == i:
            station = with_snag(station, "holding", f"fault{i}")
        components.append(LeafSpec(station, label=f"station{i}"))
    channels = frozenset(f"tok{i}" for i in range(n))
    root = RestrictSpec(_fold_ccs(components), channels)
    if faulty_station is None:
        # A fault pins one station, breaking the rotation; only the healthy
        # ring is symmetric.
        from repro.explore.reduce import RotationSymmetry, annotate_symmetry

        annotate_symmetry(root, RotationSymmetry((tuple(range(n)),)))
    return root


def token_ring_pair(num_stations: int = 4, faulty_station: int = 1):
    """A (correct, faulty) token-ring pair, inequivalent under every notion."""
    return (
        token_ring_system(num_stations),
        token_ring_system(num_stations, faulty_station=faulty_station),
    )


def milner_scheduler_system(num_cyclers: int = 3):
    """Milner's scheduler: cyclers start tasks in round-robin order.

    Cycler ``i`` receives the scheduling token, performs the observable
    ``start<i>``, and then -- in either order -- finishes its task
    (``finish<i>``) and hands the token to cycler ``i+1 mod n``, so distinct
    tasks genuinely overlap.  Token channels are restricted, so every
    hand-off appears as a synchronisation tau -- the tau-rich shape
    observational equivalence is about.
    """
    from repro.explore.system import LeafSpec, RestrictSpec

    n = num_cyclers
    if n < 2:
        raise ValueError("at least two cyclers are required")
    components = []
    for i in range(n):
        succ = (i + 1) % n
        builder = FSPBuilder(
            alphabet={f"tok{i}", f"tok{succ}!", f"start{i}", f"finish{i}"}
        )
        builder.add_transition("idle", f"tok{i}", "ready")
        builder.add_transition("ready", f"start{i}", "running")
        # the (finish | pass-token) diamond: both interleavings
        builder.add_transition("running", f"tok{succ}!", "finishing")
        builder.add_transition("finishing", f"finish{i}", "idle")
        builder.add_transition("running", f"finish{i}", "passing")
        builder.add_transition("passing", f"tok{succ}!", "idle")
        builder.mark_all_accepting()
        components.append(
            LeafSpec(builder.build(start="ready" if i == 0 else "idle"), label=f"cycler{i}")
        )
    channels = frozenset(f"tok{i}" for i in range(n))
    root = RestrictSpec(_fold_ccs(components), channels)
    from repro.explore.reduce import RotationSymmetry, annotate_symmetry

    return annotate_symmetry(root, RotationSymmetry((tuple(range(n)),)))
