"""Random and parametric star-expression generators.

Used by the Lemma 2.3.1 benchmark (construction size versus expression
length), by property-based tests of the expression semantics, and by the
CCS-equivalence examples.
"""

from __future__ import annotations

import random

from repro.expressions.syntax import (
    ActionExpr,
    ConcatExpr,
    EmptyExpr,
    StarExpr,
    StarExpression,
    UnionExpr,
)


def random_star_expression(
    size: int,
    alphabet: tuple[str, ...] = ("a", "b", "c"),
    star_probability: float = 0.2,
    empty_probability: float = 0.05,
    seed: int | random.Random = 0,
) -> StarExpression:
    """A random star expression with roughly ``size`` leaves.

    The shape is a random binary tree over union/concatenation with stars
    sprinkled on subtrees; ``empty_probability`` controls how often the
    constant ``0`` appears as a leaf.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)

    def build(leaves: int) -> StarExpression:
        if leaves <= 1:
            if rng.random() < empty_probability:
                node: StarExpression = EmptyExpr()
            else:
                node = ActionExpr(rng.choice(alphabet))
        else:
            split = rng.randint(1, leaves - 1)
            left = build(split)
            right = build(leaves - split)
            node = UnionExpr(left, right) if rng.random() < 0.5 else ConcatExpr(left, right)
        if rng.random() < star_probability:
            node = StarExpr(node)
        return node

    return build(max(size, 1))


def alternating_expression(depth: int, alphabet: tuple[str, ...] = ("a", "b")) -> StarExpression:
    """A deterministic family ``((a.b)* + a)`` nested ``depth`` times.

    The expression length grows linearly in ``depth`` and its representative
    FSP exhibits the quadratic transition growth of the star/concat cases of
    Definition 2.3.1, which is what the Lemma 2.3.1 benchmark plots.
    """
    node: StarExpression = ActionExpr(alphabet[0])
    for level in range(depth):
        action = ActionExpr(alphabet[level % len(alphabet)])
        node = UnionExpr(
            StarExpr(ConcatExpr(action, node)), ActionExpr(alphabet[(level + 1) % len(alphabet)])
        )
    return node


def left_deep_concat(length: int, action: str = "a") -> StarExpression:
    """The expression ``(...((a.a).a)...a)`` with ``length`` occurrences of ``a``."""
    node: StarExpression = ActionExpr(action)
    for _ in range(max(length - 1, 0)):
        node = ConcatExpr(node, ActionExpr(action))
    return node


def starred_unions(width: int, alphabet: tuple[str, ...] = ("a", "b", "c")) -> StarExpression:
    """The expression ``(a1 + a2 + ... + a_width)*`` cycling through the alphabet.

    Its representative FSP is small but dense (every accepting state copies
    the start moves), exercising the O(n^2) transition bound of Lemma 2.3.1.
    """
    node: StarExpression = ActionExpr(alphabet[0])
    for index in range(1, max(width, 1)):
        node = UnionExpr(node, ActionExpr(alphabet[index % len(alphabet)]))
    return StarExpr(node)
