"""Consistent-hash ring: digest affinity generalised from shards to nodes.

The in-process :class:`~repro.service.shards.ShardPool` routes a check by
``digest mod num_shards``; across a cluster that formula would reshuffle
nearly every key whenever a node joins or leaves.  A :class:`HashRing`
instead places each node at many pseudo-random points on a 2^64 circle and
routes a key to the first nodes clockwise from the key's own point -- adding
or removing one node then only moves the keys in that node's arcs (about
``1/n`` of the keyspace), so the per-node engine caches the routing exists
to protect survive membership changes.

Keys are the same routing keys the shard layer uses
(:func:`repro.service.shards.routing_key_of`): a ``sha256:...`` content
digest hashes by its own hex (no double hashing), anything else is SHA-256'd
first.  ``replicas_for(key, count)`` returns the first ``count`` *distinct*
nodes clockwise -- position 0 is the primary, the rest are the replicas that
hold copies of the key's store entries.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

__all__ = ["DEFAULT_POINTS_PER_NODE", "HashRing"]

#: Virtual points each node contributes to the ring.  More points smooth the
#: arc-length distribution (load spread) at O(points * nodes) memory; 64 is
#: plenty for the single-digit node counts a local cluster runs.
DEFAULT_POINTS_PER_NODE = 64


def _key_point(key: str) -> int:
    """Where a routing key sits on the circle (mirrors ``ShardPool.shard_of``)."""
    hex_part = ""
    if key.startswith("sha256:"):
        hex_part = key[len("sha256:") :]
    try:
        return int(hex_part[:16], 16)
    except ValueError:
        return int(hashlib.sha256(key.encode("utf-8")).hexdigest()[:16], 16)


class HashRing:
    """Nodes on a 2^64 circle, ``points_per_node`` virtual points each."""

    def __init__(
        self, nodes: Iterable[str] = (), *, points_per_node: int = DEFAULT_POINTS_PER_NODE
    ) -> None:
        if points_per_node < 1:
            raise ValueError("points_per_node must be positive")
        self.points_per_node = points_per_node
        self._nodes: set[str] = set()
        self._points: list[int] = []  # sorted ring positions
        self._owners: list[str] = []  # owner of each position (parallel list)
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def _node_points(self, node_id: str) -> list[int]:
        return [
            int(hashlib.sha256(f"{node_id}#{i}".encode()).hexdigest()[:16], 16)
            for i in range(self.points_per_node)
        ]

    def add(self, node_id: str) -> None:
        """Place a node on the ring (idempotent)."""
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        for point in self._node_points(node_id):
            index = bisect.bisect_left(self._points, point)
            # Ties are astronomically unlikely but must stay deterministic:
            # order same-point owners lexicographically.
            while index < len(self._points) and self._points[index] == point and (
                self._owners[index] < node_id
            ):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, node_id)

    def remove(self, node_id: str) -> None:
        """Take a node off the ring (idempotent)."""
        if node_id not in self._nodes:
            return
        self._nodes.discard(node_id)
        keep = [i for i, owner in enumerate(self._owners) if owner != node_id]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def replicas_for(
        self, key: str, count: int = 1, *, exclude: frozenset[str] | set[str] = frozenset()
    ) -> list[str]:
        """The first ``count`` distinct nodes clockwise from ``key``.

        Position 0 is the key's primary.  ``exclude`` skips nodes (the
        coordinator passes its unhealthy set); fewer than ``count`` nodes
        may come back when the ring is small or heavily excluded.
        """
        if count < 1:
            raise ValueError("count must be positive")
        if not self._points:
            return []
        start = bisect.bisect_right(self._points, _key_point(key)) % len(self._points)
        chosen: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner in seen or owner in exclude:
                continue
            seen.add(owner)
            chosen.append(owner)
            if len(chosen) == count:
                break
        return chosen

    def primary_for(self, key: str) -> str | None:
        """The key's primary node (``None`` on an empty ring)."""
        owners = self.replicas_for(key, 1)
        return owners[0] if owners else None

    def __repr__(self) -> str:
        return (
            f"HashRing(nodes={sorted(self._nodes)!r}, "
            f"points_per_node={self.points_per_node})"
        )
