"""The distributed checking fabric: coordinator, gateway, replicated store.

This package scales :mod:`repro.service` from one node to many.  Each node
is an unmodified :class:`~repro.service.server.EquivalenceServer`; the
cluster layer adds the pieces that only make sense above a single node:

* :mod:`repro.cluster.ring` -- :class:`HashRing`, consistent-hash placement
  so digest affinity survives node churn (the cross-node analogue of the
  shard pool's ``digest mod num_shards``);
* :mod:`repro.cluster.store` -- :class:`ClusterStore`, the coordinator's
  persistent process store plus ``(digest, notion)``-keyed minimisation
  artifacts, which is what lets a quotient computed on a dead node still be
  served;
* :mod:`repro.cluster.coordinator` -- :class:`ClusterCoordinator`, routing
  ``check``/``check_many``/``minimize``/``store`` by content digest with
  replication, health probes, retry-with-failover and cross-node
  work-stealing;
* :mod:`repro.cluster.gateway` -- :class:`ClusterGateway` /
  :func:`serve_gateway`, the stdlib-asyncio HTTP/JSON front door with
  ``/healthz`` and a node-labelled Prometheus ``/metrics``;
* :mod:`repro.cluster.client` -- :class:`ClusterClient`, the synchronous
  HTTP client mirroring :class:`~repro.service.client.ServiceClient`.

Quick start (three terminals + one)::

    $ python -m repro cluster serve-node --name a --port 8319
    $ python -m repro cluster serve-node --name b --port 8321
    $ python -m repro cluster serve-gateway --node a=127.0.0.1:8319 \\
          --node b=127.0.0.1:8321 --port 8320

    >>> from repro.cluster import ClusterClient            # doctest: +SKIP
    >>> client = ClusterClient(port=8320)                  # doctest: +SKIP
    >>> digest = client.store(my_process)["digest"]        # doctest: +SKIP
    >>> client.check(digest, other_process)["equivalent"]  # doctest: +SKIP
"""

import importlib
from typing import Any

#: The gateway's default HTTP port -- one above the node RPC port, mirroring
#: how the two listeners pair up in a local deployment.  Defined here (not
#: lazily) so the CLI parser can read it without importing the asyncio
#: coordinator machinery.
DEFAULT_GATEWAY_PORT = 8320

__all__ = [
    "DEFAULT_GATEWAY_PORT",
    "ClusterClient",
    "ClusterCoordinator",
    "ClusterGateway",
    "ClusterStore",
    "HashRing",
    "serve_gateway",
]

#: Exported name -> defining submodule, resolved lazily (PEP 562) so the CLI
#: parser can read ``DEFAULT_GATEWAY_PORT`` without importing asyncio server
#: machinery.
_EXPORTS = {
    "HashRing": "repro.cluster.ring",
    "ClusterStore": "repro.cluster.store",
    "ClusterCoordinator": "repro.cluster.coordinator",
    "ClusterGateway": "repro.cluster.gateway",
    "serve_gateway": "repro.cluster.gateway",
    "ClusterClient": "repro.cluster.client",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
