"""Synchronous HTTP client for the cluster gateway.

:class:`ClusterClient` mirrors :class:`~repro.service.client.ServiceClient`
method-for-method but speaks the gateway's HTTP/JSON dialect instead of raw
NDJSON, so anything written against the TCP client ports to the cluster by
swapping the constructor.  Error envelopes (``{"ok": false, "error":
{...}}``) are rehydrated into the same :class:`~repro.service.protocol.
ServiceError` values the TCP client raises, and ``overloaded`` answers are
retried on the shared :class:`~repro.service.retry.RetryPolicy` backoff
schedule, honouring the server's ``retry_after_ms`` hint.

Stdlib only (``http.client``); connections are kept alive across requests
and transparently reopened after a drop.
"""

from __future__ import annotations

import http.client
import json
from typing import Any

from repro.core.fsp import FSP
from repro.service import protocol
from repro.service.retry import DEFAULT_RETRIES, RetryPolicy
from repro.utils.serialization import from_dict

from repro.cluster import DEFAULT_GATEWAY_PORT

__all__ = ["ClusterClient"]


def _overload_hint(error: Exception):
    """Retry predicate for :meth:`RetryPolicy.run` (overloaded answers only)."""
    if isinstance(error, protocol.ServiceError) and error.code == protocol.OVERLOADED:
        hint = (error.data or {}).get("retry_after_ms")
        return float(hint) if isinstance(hint, (int, float)) else None
    return False


class ClusterClient:
    """Talk to a :class:`~repro.cluster.gateway.ClusterGateway` over HTTP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_GATEWAY_PORT,
        timeout: float = 60.0,
        *,
        overload_retries: int = DEFAULT_RETRIES,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None
        self._retry = retry_policy if retry_policy is not None else RetryPolicy(overload_retries)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request_once(self, method: str, path: str, body: dict[str, Any] | None) -> Any:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload is not None else {}
        for attempt in (0, 1):  # one transparent reconnect after a dropped keep-alive
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._connection.request(method, path, body=payload, headers=headers)
                response = self._connection.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        return self._decode(path, response.status, raw)

    def _decode(self, path: str, status: int, raw: bytes) -> Any:
        if path == "/metrics" and status == 200:
            return raw.decode("utf-8")
        try:
            document = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise protocol.ProtocolError(
                f"gateway answered {path} with HTTP {status} and a non-JSON body"
            ) from None
        if path == "/healthz":
            return document
        if not isinstance(document, dict) or "ok" not in document:
            raise protocol.ProtocolError(f"malformed gateway envelope on {path}")
        if document["ok"]:
            return document.get("result", {})
        error = document.get("error") or {}
        raise protocol.ServiceError(
            str(error.get("code", protocol.INTERNAL)),
            str(error.get("message", "gateway error")),
            error.get("data") if isinstance(error.get("data"), dict) else {},
        )

    def _rpc(self, op: str, params: dict[str, Any] | None = None) -> Any:
        return self._retry.run(
            lambda: self._request_once("POST", f"/v1/{op}", params or {}),
            is_overloaded=_overload_hint,
        )

    # ------------------------------------------------------------------
    # operations (mirror ServiceClient)
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self._rpc("ping")

    def healthz(self) -> dict[str, Any]:
        """The gateway's health document (does not raise on 503)."""
        return self._request_once("GET", "/healthz", None)

    def metrics_text(self) -> str:
        """The gateway's Prometheus exposition text."""
        return self._request_once("GET", "/metrics", None)

    def store(self, process: FSP | dict) -> dict[str, Any]:
        """Upload + replicate one process; returns digest and replica list."""
        ref = protocol.process_ref(process)
        return self._rpc("store", {"process": ref["process"]})

    def check(
        self,
        left,
        right,
        notion: str = "observational",
        *,
        align: bool = True,
        witness: bool = False,
        on_the_fly: bool | None = None,
        reduction: str | None = None,
        deadline_ms: float | None = None,
        **params: Any,
    ) -> dict[str, Any]:
        """Decide one equivalence through the cluster (ServiceClient shape)."""
        body: dict[str, Any] = {
            "left": protocol.process_ref(left),
            "right": protocol.process_ref(right),
            "notion": notion,
            "align": align,
            "witness": witness,
            "params": params,
        }
        if on_the_fly is not None:
            body["on_the_fly"] = on_the_fly
        if reduction is not None:
            body["reduction"] = reduction
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self._rpc("check", body)

    def check_many(
        self,
        checks: list[tuple | dict],
        *,
        notion: str = "observational",
        align: bool = True,
        witness: bool = False,
        reduction: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """Run a manifest of checks cluster-wide (ServiceClient entry shapes)."""
        encoded = []
        for index, item in enumerate(checks):
            if isinstance(item, dict):
                entry = dict(item)
                entry["left"] = protocol.process_ref(entry["left"])
                entry["right"] = protocol.process_ref(entry["right"])
            elif isinstance(item, (tuple, list)) and len(item) in (2, 3):
                entry = {
                    "left": protocol.process_ref(item[0]),
                    "right": protocol.process_ref(item[1]),
                }
                if len(item) == 3:
                    entry["notion"] = item[2]
            else:
                raise ValueError(f"check #{index} must be (left, right[, notion]) or a mapping")
            encoded.append(entry)
        body: dict[str, Any] = {
            "checks": encoded,
            "notion": notion,
            "align": align,
            "witness": witness,
        }
        if reduction is not None:
            body["reduction"] = reduction
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self._rpc("check_many", body)

    def minimize(self, process, notion: str = "observational") -> FSP:
        """The quotient under strong/observational equivalence, cluster-served."""
        return from_dict(self.minimize_info(process, notion)["process"])

    def minimize_info(self, process, notion: str = "observational") -> dict[str, Any]:
        """Minimise, returning the raw result document (sizes, cache flags)."""
        return self._rpc(
            "minimize", {"process": protocol.process_ref(process), "notion": notion}
        )

    def classify(self, process) -> list[str]:
        """The model classes of a process, as strings (ServiceClient shape)."""
        return self._rpc("classify", {"process": protocol.process_ref(process)})["classes"]

    def stats(self) -> dict[str, Any]:
        return self._rpc("stats")
