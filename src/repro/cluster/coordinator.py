"""The cluster coordinator: digest-affinity routing across remote nodes.

A :class:`ClusterCoordinator` owns one :class:`~repro.cluster.ring.HashRing`
of equivalence-service nodes (each node is a full
:class:`~repro.service.server.EquivalenceServer` -- shards, deadlines,
backpressure and all) and routes every operation the way the shard pool
routes checks inside one node, generalised one level up:

* **Affinity.**  A check routes by the same key the shard layer uses
  (:func:`repro.service.shards.routing_key_of`), walked clockwise on the
  ring.  All checks touching one stored process land on one node, whose
  shard pool then routes them onto one worker -- two levels of the same
  digest stickiness, so the per-worker engine caches stay hot end to end.
  A right operand the routed node never saw (it replicates under its own
  digest, possibly to other nodes) is read-repaired from the coordinator's
  durable store on first touch, then lives on the node like any upload.
* **Replication.**  ``store`` uploads go to the key's first
  ``replication_factor`` ring nodes; an upload succeeds when at least one
  replica accepted it (the rest are counted, not fatal).  Minimisation
  artifacts are persisted in the coordinator's own
  :class:`~repro.cluster.store.ClusterStore` keyed ``(digest, notion)`` and
  the quotient process is re-stored to the replicas, so a minimisation
  computed on a node that later dies is still served -- from the artifact
  store without any node at all, or recomputed cheaply from any replica.
* **Health and failover.**  A background probe pings every node; probe or
  request failures mark a node unhealthy (excluded from ring walks) until a
  probe succeeds again.  A request whose node dies mid-flight fails over to
  the next replica -- checks are idempotent (engines cache by content), so
  retrying elsewhere is always safe.
* **Work-stealing.**  With ``steal_threshold`` set, a store-referenced,
  cache-cold check whose primary already has that many requests in flight
  dispatches to the least-loaded *replica* instead -- replicas hold the
  digest by construction, so stealing never trades a cache miss for an
  ``unknown_digest``.  Hot keys stay home, mirroring the shard pool's rule.

The coordinator is asyncio-native (the gateway embeds it in its event
loop); telemetry is exposed as plain counters the gateway folds into its
Prometheus registry.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any

from repro.cluster.ring import HashRing
from repro.cluster.store import ClusterStore
from repro.core.errors import InvalidProcessError
from repro.service import protocol
from repro.service.shards import routing_key_of
from repro.utils.serialization import content_digest, to_dict

__all__ = ["ClusterCoordinator", "NodeLink", "NodeState"]

#: Replication factor when the caller does not pick one: the primary plus
#: one replica tolerates one node loss without losing any stored process.
DEFAULT_REPLICATION = 2

#: Per-node LRU of recently dispatched routing keys (the coordinator-side
#: cache-warmth proxy work-stealing consults; mirrors the shard pool's).
RECENT_KEYS_PER_NODE = 256

#: Seconds between background health probes.
DEFAULT_PROBE_INTERVAL = 1.0

#: Per-probe timeout: a node that cannot answer ``ping`` this fast is
#: treated as down (generous against fork pauses, tight against hangs).
PROBE_TIMEOUT = 5.0

#: ``retry_after_ms`` hint attached when no healthy node can serve a key.
NO_NODE_RETRY_MS = 500

#: Ceiling on establishing a TCP connection to a node.  Separate from the
#: request timeout: a healthy node accepts instantly even when busy, so a
#: slow connect means the node (not the work) is sick.
CONNECT_TIMEOUT = 5.0


def _digest_refs(params: dict[str, Any]) -> list[str]:
    """Every digest reference in a request, in operand order, deduplicated."""
    digests: list[str] = []
    for key in ("left", "right", "process"):
        ref = params.get(key)
        if isinstance(ref, dict):
            digest = ref.get("digest")
            if isinstance(digest, str) and digest not in digests:
                digests.append(digest)
    return digests


class NodeLink:
    """One pipelined NDJSON connection to a node (id-matched responses).

    The service answers requests on one connection in order, so many
    concurrent coordinator requests share a single connection: writes are
    serialised under a lock, one reader task resolves pending futures by
    request id.  Any transport failure fails every pending request with
    :class:`ConnectionError` -- the coordinator treats that as node loss
    and fails over.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._connect_lock = asyncio.Lock()
        self._write_lock = asyncio.Lock()

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def _ensure_connected(self) -> None:
        async with self._connect_lock:
            if self._writer is not None:
                return
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        self.host, self.port, limit=protocol.MAX_FRAME_BYTES + 2
                    ),
                    timeout=CONNECT_TIMEOUT,
                )
            except asyncio.TimeoutError:
                raise ConnectionError(
                    f"connect to {self.host}:{self.port} timed out"
                ) from None
            self._reader = reader
            self._writer = writer
            self._reader_task = asyncio.ensure_future(self._read_loop(reader))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    raise ConnectionError("node closed the connection")
                try:
                    response_id, result = protocol.parse_response(line)
                    outcome: Any = ("ok", response_id, result)
                except protocol.ServiceError as error:
                    # parse_response raises the structured error but loses
                    # the frame id; recover it so the right future fails.
                    response_id = protocol.decode_frame(line).get("id")
                    outcome = ("error", response_id, error)
                future = self._pending.pop(response_id, None)
                if future is not None and not future.done():
                    if outcome[0] == "ok":
                        future.set_result(outcome[2])
                    else:
                        future.set_exception(outcome[2])
        except asyncio.CancelledError:
            raise
        except Exception as error:
            self._fail_pending(error)

    def _fail_pending(self, error: Exception) -> None:
        """Tear the connection down and fail every in-flight request."""
        pending, self._pending = self._pending, {}
        wrapped = error if isinstance(error, ConnectionError) else ConnectionError(str(error))
        for future in pending.values():
            if not future.done():
                future.set_exception(wrapped)
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()

    async def request(
        self, op: str, params: dict[str, Any] | None = None, *, timeout: float | None = None
    ) -> dict[str, Any]:
        """One RPC round trip; raises ServiceError/ConnectionError."""
        await self._ensure_connected()
        assert self._writer is not None
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(protocol.request_frame(request_id, op, params))
                await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._pending.pop(request_id, None)
            self._fail_pending(ConnectionError(str(error)))
            raise ConnectionError(str(error)) from None
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout=timeout)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            raise ConnectionError(
                f"node {self.host}:{self.port} did not answer {op!r} within {timeout:g}s"
            ) from None

    def abort(self, reason: str) -> None:
        """Fail every in-flight request and drop the connection.

        For when something *other* than the transport (a failed health
        probe, say) declares the node dead: a half-dead node can keep a
        connection open without ever answering, and waiting out the full
        request timeout on it would stall failover.
        """
        self._fail_pending(ConnectionError(reason))

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        self._fail_pending(ConnectionError("link closed"))


class NodeState:
    """One node's link plus the coordinator's view of it."""

    def __init__(self, node_id: str, host: str, port: int) -> None:
        self.node_id = node_id
        self.link = NodeLink(host, port)
        self.healthy = True
        self.inflight = 0
        self.checks_sent = 0
        self.recent: OrderedDict[str, None] = OrderedDict()

    def remember(self, key: str | None) -> None:
        if key is None:
            return
        self.recent[key] = None
        self.recent.move_to_end(key)
        while len(self.recent) > RECENT_KEYS_PER_NODE:
            self.recent.popitem(last=False)

    def __repr__(self) -> str:
        return (
            f"NodeState({self.node_id!r}, {self.link.host}:{self.link.port}, "
            f"healthy={self.healthy}, inflight={self.inflight})"
        )


class ClusterCoordinator:
    """Routes service operations across a ring of equivalence-server nodes.

    Parameters
    ----------
    nodes:
        ``{node_id: (host, port)}`` -- the cluster membership.
    replication_factor:
        How many ring nodes hold each stored process (clamped to the node
        count).
    steal_threshold:
        In-flight depth at which a cache-cold, store-referenced check leaves
        its primary for the least-loaded replica (None disables stealing).
    store:
        The coordinator's persistent :class:`ClusterStore` (processes it has
        accepted plus minimisation artifacts).  None keeps the coordinator
        stateless: uploads still replicate to nodes, but artifacts are not
        persisted.
    request_timeout:
        Per-request ceiling before a node is declared lost (failover).
    probe_interval:
        Seconds between background health probes (``start()`` launches the
        probe task; ``probe_once()`` is the manual equivalent).
    """

    def __init__(
        self,
        nodes: dict[str, tuple[str, int]],
        *,
        replication_factor: int = DEFAULT_REPLICATION,
        steal_threshold: int | None = None,
        store: ClusterStore | None = None,
        request_timeout: float | None = 120.0,
        probe_interval: float = DEFAULT_PROBE_INTERVAL,
    ) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        if replication_factor < 1:
            raise ValueError("replication_factor must be positive")
        if steal_threshold is not None and steal_threshold < 1:
            raise ValueError("steal_threshold must be positive (or None to disable)")
        self.nodes: dict[str, NodeState] = {
            node_id: NodeState(node_id, host, port)
            for node_id, (host, port) in sorted(nodes.items())
        }
        self.ring = HashRing(self.nodes)
        self.replication_factor = min(replication_factor, len(self.nodes))
        self.steal_threshold = steal_threshold
        self.store = store
        self.request_timeout = request_timeout
        self.probe_interval = probe_interval
        self._probe_task: asyncio.Task | None = None
        # telemetry (gateway renders these)
        self.failovers = 0
        self.steals = 0
        self.repairs = 0
        self.replications = 0
        self.replication_failures = 0
        self.artifact_hits = 0
        self.artifact_misses = 0

    # ------------------------------------------------------------------
    # lifecycle and health
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Probe every node once, then keep probing in the background."""
        await self.probe_once()
        if self._probe_task is None:
            self._probe_task = asyncio.ensure_future(self._probe_loop())

    async def stop(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        for node in self.nodes.values():
            await node.link.close()

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.probe_interval)
            try:
                await self.probe_once()
            except asyncio.CancelledError:  # pragma: no cover - shutdown race
                raise
            except Exception:  # pragma: no cover - probes must never die
                pass

    async def probe_once(self) -> dict[str, bool]:
        """Ping every node; returns the fresh health map."""

        async def probe(node: NodeState) -> None:
            try:
                await node.link.request("ping", timeout=PROBE_TIMEOUT)
                node.healthy = True
            except (ConnectionError, OSError, protocol.ProtocolError):
                node.healthy = False
                # A probed-dead node must not keep callers waiting out the
                # request timeout (a half-dead node can hold connections
                # open silently): fail its in-flight requests so they fail
                # over immediately.  Checks are idempotent, so a request
                # the node actually finished is safe to retry elsewhere.
                node.link.abort(f"node {node.node_id} failed its health probe")

        await asyncio.gather(*(probe(node) for node in self.nodes.values()))
        return self.health()

    def health(self) -> dict[str, bool]:
        """The current health map (no probing; see :meth:`probe_once`)."""
        return {node_id: node.healthy for node_id, node in self.nodes.items()}

    def healthy_nodes(self) -> list[NodeState]:
        return [node for node in self.nodes.values() if node.healthy]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def replicas_for(self, key: str | None) -> list[NodeState]:
        """The replica set (primary first) for one routing key, healthy only."""
        unhealthy = frozenset(
            node_id for node_id, node in self.nodes.items() if not node.healthy
        )
        owners = self.ring.replicas_for(
            key if key is not None else "unroutable", self.replication_factor,
            exclude=unhealthy,
        )
        return [self.nodes[node_id] for node_id in owners]

    def _no_nodes(self) -> protocol.ServiceError:
        return protocol.ServiceError(
            protocol.OVERLOADED,
            "no healthy cluster node can serve this request",
            {"retry_after_ms": NO_NODE_RETRY_MS, "healthy_nodes": 0},
        )

    def plan_check(self, spec: dict[str, Any]) -> list[NodeState]:
        """The dispatch order for one check: steal target first, then failover.

        The primary leads unless work-stealing applies: a store-referenced,
        cache-cold spec whose primary is at or past ``steal_threshold``
        in-flight requests moves to the least-loaded replica (replicas hold
        the digest by construction).  The returned list is the failover
        order -- callers walk it until a node answers.
        """
        key = routing_key_of(spec)
        candidates = self.replicas_for(key)
        if not candidates:
            raise self._no_nodes()
        primary = candidates[0]
        left = spec.get("left")
        store_referenced = isinstance(left, dict) and isinstance(left.get("digest"), str)
        if (
            self.steal_threshold is not None
            and store_referenced
            and len(candidates) > 1
            and primary.inflight >= self.steal_threshold
            and (key is None or key not in primary.recent)
        ):
            target = min(candidates[1:], key=lambda node: node.inflight)
            if target.inflight < primary.inflight:
                candidates = [target] + [n for n in candidates if n is not target]
                self.steals += 1
        candidates[0].remember(key)
        return candidates

    async def _dispatch(
        self,
        candidates: list[NodeState],
        op: str,
        params: dict[str, Any],
        *,
        count_check: bool = False,
    ) -> dict[str, Any]:
        """Walk the candidate list until one node answers.

        Transport failures (connection loss, timeout) mark the node
        unhealthy, count a failover and move on.  Structured
        :class:`~repro.service.protocol.ServiceError` replies propagate,
        with one exception: ``unknown_digest`` first triggers a read
        repair (push the missing processes from the coordinator's durable
        store and retry the same node once), and failing that falls
        through to the next candidate, which may hold the upload.
        """
        last_error: Exception | None = None
        for index, node in enumerate(candidates):
            has_fallback = index + 1 < len(candidates)
            node.inflight += 1
            if count_check:
                node.checks_sent += 1
            try:
                repaired = False
                while True:
                    try:
                        result = await node.link.request(
                            op, params, timeout=self.request_timeout
                        )
                        result.setdefault("node", node.node_id)
                        return result
                    except protocol.ServiceError as error:
                        if error.code != protocol.UNKNOWN_DIGEST:
                            raise
                        if not repaired and await self._repair_missing(node, params):
                            repaired = True  # the node holds the digests now
                            continue
                        if has_fallback:
                            last_error = error
                            break
                        raise
            except (ConnectionError, OSError) as error:
                node.healthy = False
                last_error = error
                if has_fallback:
                    self.failovers += 1
            finally:
                node.inflight = max(0, node.inflight - 1)
        if isinstance(last_error, protocol.ServiceError):
            raise last_error
        raise self._no_nodes() if last_error is None else protocol.ServiceError(
            protocol.INTERNAL,
            f"every candidate node failed: {last_error}",
            {"nodes_tried": len(candidates)},
        )

    async def _repair_missing(self, node: NodeState, params: dict[str, Any]) -> int:
        """Push digest-referenced processes the node lacks; returns the count.

        Affinity routes a check by its *left* digest, so the right operand
        (replicated under its own digest) may live on a disjoint replica
        set.  When a node answers ``unknown_digest`` and the coordinator's
        durable store holds the process, pushing it and retrying beats
        failing over: the node keeps the copy, so one repair serves every
        later request with the same operand.
        """
        if self.store is None:
            return 0
        pushed = 0
        for digest in _digest_refs(params):
            try:
                fsp = await asyncio.to_thread(self.store.processes.get, digest)
            except (KeyError, InvalidProcessError):
                continue  # not ours to repair (or corrupt) -- let routing decide
            try:
                await node.link.request(
                    "store", {"process": to_dict(fsp)}, timeout=self.request_timeout
                )
                pushed += 1
            except protocol.ServiceError:  # pragma: no cover - node rejected it
                pass
        self.repairs += pushed
        return pushed

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def ping(self) -> dict[str, Any]:
        """Coordinator-level liveness: healthy node count plus membership."""
        health = self.health()
        return {
            "pong": True,
            "nodes": health,
            "healthy_nodes": sum(health.values()),
            "replication_factor": self.replication_factor,
        }

    async def check(self, params: dict[str, Any]) -> dict[str, Any]:
        """Route one check to its planned node, failing over on node loss."""
        return await self._dispatch(self.plan_check(params), "check", params, count_check=True)

    async def check_many(self, params: dict[str, Any]) -> dict[str, Any]:
        """Fan a manifest across the cluster; per-check errors stay inline."""
        checks = params.get("checks")
        if not isinstance(checks, list):
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "check_many needs a 'checks' list of check objects"
            )
        defaults = {
            key: params[key]
            for key in ("notion", "align", "witness", "on_the_fly", "reduction", "deadline_ms")
            if key in params
        }

        async def one(item: Any) -> dict[str, Any]:
            if not isinstance(item, dict):
                return {
                    "error": {
                        "code": protocol.BAD_REQUEST,
                        "message": "each check must be an object",
                    }
                }
            merged = {**defaults, **item}
            try:
                return await self.check(merged)
            except protocol.ServiceError as error:
                inline: dict[str, Any] = {"code": error.code, "message": error.message}
                if error.data:
                    inline["data"] = error.data
                return {"error": inline}

        results = list(await asyncio.gather(*(one(item) for item in checks)))
        equivalent = sum(1 for r in results if r.get("equivalent") is True)
        failed = sum(1 for r in results if "error" in r)
        return {
            "results": results,
            "summary": {
                "checks": len(results),
                "equivalent": equivalent,
                "inequivalent": len(results) - equivalent - failed,
                "failed": failed,
            },
        }

    async def store_process(self, params: dict[str, Any]) -> dict[str, Any]:
        """Replicate one upload to the digest's replica set.

        The upload is validated (and its digest computed) locally, then
        pushed to every replica in parallel; at least one replica must
        accept it.  With a :class:`ClusterStore` attached, the coordinator
        persists its own copy too, so re-replication after a node loss has
        a durable source.
        """
        ref = params.get("process")
        if ref is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "store needs a 'process' (inline serialised FSP)"
            )
        fsp = protocol.resolve_ref({"process": ref})
        digest = content_digest(fsp)
        if self.store is not None:
            await asyncio.to_thread(self.store.processes.put, fsp)
        replicas = self.replicas_for(digest)
        if not replicas:
            raise self._no_nodes()

        async def push(node: NodeState) -> str | None:
            try:
                await node.link.request(
                    "store", {"process": ref}, timeout=self.request_timeout
                )
                return node.node_id
            except (ConnectionError, OSError):
                node.healthy = False
                return None
            except protocol.ServiceError:
                return None

        accepted = [r for r in await asyncio.gather(*(push(node) for node in replicas)) if r]
        self.replications += len(accepted)
        self.replication_failures += len(replicas) - len(accepted)
        if not accepted:
            raise protocol.ServiceError(
                protocol.INTERNAL,
                "no replica accepted the upload",
                {"replicas_tried": len(replicas)},
            )
        return {
            "digest": digest,
            "states": fsp.num_states,
            "transitions": fsp.num_transitions,
            "replicas": accepted,
        }

    async def minimize(self, params: dict[str, Any]) -> dict[str, Any]:
        """Minimise via the artifact store first, any replica second.

        A ``(digest, notion)`` artifact hit answers without touching a node
        at all -- this is the replication contract that keeps minimisations
        available after node loss.  On a miss the request routes like a
        check (primary, failover to replicas), the artifact is persisted,
        and the quotient process is re-stored to the replica set so later
        checks can reference it by digest anywhere.
        """
        ref = params.get("process")
        if ref is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "minimize needs a 'process' reference"
            )
        notion = str(params.get("notion", "observational"))
        digest: str | None = None
        if isinstance(ref, dict):
            if isinstance(ref.get("digest"), str):
                digest = ref["digest"]
            elif "process" in ref:
                # Inline uploads get an artifact key too: same process, same
                # digest, so repeat minimisations hit the cache either way.
                digest = content_digest(protocol.resolve_ref(ref))
        if self.store is not None and isinstance(digest, str):
            try:
                cached = await asyncio.to_thread(self.store.get_artifact, digest, notion)
            except KeyError:
                cached = None
            if cached is not None:
                self.artifact_hits += 1
                return {**cached, "from_artifact_cache": True}
            self.artifact_misses += 1
        spec = {"left": ref}
        candidates = self.replicas_for(routing_key_of(spec))
        if not candidates:
            raise self._no_nodes()
        result = await self._dispatch(candidates, "minimize", params)
        if self.store is not None and isinstance(digest, str):
            document = {k: v for k, v in result.items() if k != "from_artifact_cache"}
            try:
                await asyncio.to_thread(self.store.put_artifact, digest, notion, document)
            except KeyError:
                pass
            quotient = result.get("process")
            if isinstance(quotient, dict):
                # Make the quotient itself addressable on every replica.
                try:
                    await self.store_process({"process": quotient})
                except protocol.ServiceError:  # pragma: no cover - best effort
                    pass
        return result

    async def classify(self, params: dict[str, Any]) -> dict[str, Any]:
        ref = params.get("process")
        if ref is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "classify needs a 'process' reference"
            )
        candidates = self.replicas_for(routing_key_of({"left": ref}))
        if not candidates:
            raise self._no_nodes()
        return await self._dispatch(candidates, "classify", params)

    async def stats(self) -> dict[str, Any]:
        """Coordinator counters plus whatever each live node reports."""

        async def node_stats(node: NodeState) -> dict[str, Any]:
            if not node.healthy:
                # Don't block a stats call behind a node the probes already
                # declared dead; its last probe verdict is the answer.
                return {"node": node.node_id, "healthy": False, "error": "node is down"}
            try:
                stats = await node.link.request("stats", timeout=PROBE_TIMEOUT)
                return {"node": node.node_id, "healthy": node.healthy, **stats}
            except (ConnectionError, OSError, protocol.ServiceError) as error:
                node.healthy = False
                return {"node": node.node_id, "healthy": False, "error": str(error)}

        per_node = await asyncio.gather(*(node_stats(n) for n in self.nodes.values()))
        return {
            "coordinator": {
                "nodes": len(self.nodes),
                "healthy_nodes": sum(1 for n in self.nodes.values() if n.healthy),
                "replication_factor": self.replication_factor,
                "steal_threshold": self.steal_threshold,
                "failovers": self.failovers,
                "steals": self.steals,
                "repairs": self.repairs,
                "replications": self.replications,
                "replication_failures": self.replication_failures,
                "artifact_hits": self.artifact_hits,
                "artifact_misses": self.artifact_misses,
                "inflight": {n.node_id: n.inflight for n in self.nodes.values()},
                "store": self.store.cache_info() if self.store is not None else None,
            },
            "nodes": list(per_node),
        }

    async def wait_healthy(self, *, timeout: float = 30.0, minimum: int = 1) -> None:
        """Block until at least ``minimum`` nodes answer probes (for tests/CLI)."""
        deadline = time.monotonic() + timeout
        while True:
            health = await self.probe_once()
            if sum(health.values()) >= minimum:
                return
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"only {sum(health.values())}/{minimum} nodes healthy after {timeout:g}s"
                )
            await asyncio.sleep(0.2)
