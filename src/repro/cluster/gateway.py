"""The HTTP/JSON gateway: the cluster's front door.

A :class:`ClusterGateway` wraps one :class:`~repro.cluster.coordinator.
ClusterCoordinator` in a small hand-rolled HTTP/1.1 server (stdlib asyncio
only, same discipline as the rest of the service stack).  HTTP is the
boundary where non-Python clients, load balancers and scrapers live; the
wire RPCs map one-to-one onto POST routes and the two conventional probe
endpoints are GETs:

====================  =======================================================
``POST /v1/check``    one equivalence check (body = check params)
``POST /v1/check_many``  a manifest of checks
``POST /v1/minimize``    minimisation (artifact-cache first)
``POST /v1/classify``    hierarchy classification
``POST /v1/store``       upload + replicate one process
``POST /v1/stats``       coordinator + per-node stats
``POST /v1/ping``        coordinator liveness detail
``GET  /healthz``        200 when >= 1 node is healthy, else 503
``GET  /metrics``        Prometheus text (gateway + node-labelled engine series)
====================  =======================================================

Responses are ``{"ok": true, "result": ...}`` or ``{"ok": false, "error":
{"code", "message", "data"}}`` with the service error codes mapped onto
HTTP statuses (``overloaded`` -> 429 with ``Retry-After``, ``unknown_digest``
-> 404, ``deadline_exceeded`` -> 504, ...), so plain HTTP clients get
meaningful statuses and :class:`~repro.cluster.client.ClusterClient` can
reconstruct the exact :class:`~repro.service.protocol.ServiceError`.

``/metrics`` satisfies the per-node namespacing contract: engine counters
fetched from each node's ``stats`` op (which the nodes label via
``Engine.export_stats(node=...)``) are re-exported as gauges labelled
``{node, shard}``, so one scrape of the gateway distinguishes every
engine in the cluster.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.cluster.coordinator import ClusterCoordinator
from repro.service import protocol
from repro.service.metrics import MetricsRegistry

from repro.cluster import DEFAULT_GATEWAY_PORT

__all__ = ["DEFAULT_GATEWAY_PORT", "ClusterGateway", "serve_gateway"]

#: Largest accepted request body; same ceiling as one NDJSON frame.
MAX_BODY_BYTES = protocol.MAX_FRAME_BYTES

#: HTTP status for each service error code.
_STATUS_FOR_CODE = {
    protocol.BAD_REQUEST: 400,
    protocol.UNKNOWN_OP: 404,
    protocol.INVALID_PROCESS: 400,
    protocol.UNKNOWN_DIGEST: 404,
    protocol.CHECK_FAILED: 422,
    protocol.DEADLINE_EXCEEDED: 504,
    protocol.OVERLOADED: 429,
    protocol.INTERNAL: 500,
}

_POST_OPS = ("check", "check_many", "minimize", "classify", "store", "stats", "ping")

#: Node stats fetch for /metrics must not stall a scrape behind a sick node.
METRICS_STATS_TIMEOUT = 5.0


class ClusterGateway:
    """HTTP front end over one coordinator (see module docstring)."""

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_GATEWAY_PORT,
    ) -> None:
        self.coordinator = coordinator
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self.registry = MetricsRegistry()
        self._requests = self.registry.counter(
            "repro_gateway_requests_total", "HTTP requests accepted", ("route",)
        )
        self._errors = self.registry.counter(
            "repro_gateway_errors_total", "HTTP requests answered with an error", ("route", "code")
        )
        self._latency = self.registry.histogram(
            "repro_gateway_request_seconds", "HTTP request latency", ("route",)
        )
        node_healthy = self.registry.gauge(
            "repro_cluster_node_healthy", "1 when the coordinator's last probe succeeded", ("node",)
        )
        for node_id, node in coordinator.nodes.items():
            node_healthy.labels(node_id).set_function(
                lambda node=node: 1.0 if node.healthy else 0.0
            )
        for name, help_text, attr in (
            ("repro_cluster_failovers_total", "requests retried on another node", "failovers"),
            ("repro_cluster_steals_total", "checks stolen from a busy primary", "steals"),
            ("repro_cluster_repairs_total", "digest read-repairs pushed to nodes", "repairs"),
            ("repro_cluster_replications_total", "replica uploads accepted", "replications"),
            (
                "repro_cluster_replication_failures_total",
                "replica uploads that failed",
                "replication_failures",
            ),
            (
                "repro_cluster_artifact_hits_total",
                "minimize served from artifacts",
                "artifact_hits",
            ),
            (
                "repro_cluster_artifact_misses_total",
                "minimize artifact lookups that missed",
                "artifact_misses",
            ),
        ):
            self.registry.gauge(name, help_text).labels().set_function(
                lambda attr=attr: float(getattr(self.coordinator, attr))
            )
        # Engine counters re-exported per (node, shard); refreshed on scrape.
        self._engine_series = self.registry.gauge(
            "repro_cluster_engine_stat",
            "per-engine counters gathered from node stats",
            ("node", "shard", "stat"),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.coordinator.start()
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.coordinator.stop()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, extra = await self._route(method, path, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._write_response(writer, status, payload, extra, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ValueError("malformed request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            raise ValueError("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        extra_headers: dict[str, str],
        keep_alive: bool,
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            422: "Unprocessable Entity",
            429: "Too Many Requests",
            500: "Internal Server Error",
            503: "Service Unavailable",
            504: "Gateway Timeout",
        }.get(status, "OK")
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
            content_type = "application/json"
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers.extend(f"{name}: {value}" for name, value in extra_headers.items())
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, Any, dict[str, str]]:
        route = path
        self._requests.labels(route).inc()
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            if path == "/healthz":
                if method != "GET":
                    return self._error(route, 405, protocol.BAD_REQUEST, "healthz is GET only")
                return await self._healthz()
            if path == "/metrics":
                if method != "GET":
                    return self._error(route, 405, protocol.BAD_REQUEST, "metrics is GET only")
                return 200, await self._render_metrics(), {}
            if path.startswith("/v1/"):
                op = path[len("/v1/") :]
                if op not in _POST_OPS:
                    return self._error(route, 404, protocol.UNKNOWN_OP, f"unknown route {path!r}")
                if method != "POST":
                    return self._error(route, 405, protocol.BAD_REQUEST, f"{path} is POST only")
                return await self._rpc(route, op, body)
            return self._error(route, 404, protocol.UNKNOWN_OP, f"unknown route {path!r}")
        finally:
            self._latency.labels(route).observe(loop.time() - started)

    def _error(
        self,
        route: str,
        status: int,
        code: str,
        message: str,
        data: dict[str, Any] | None = None,
    ) -> tuple[int, Any, dict[str, str]]:
        self._errors.labels(route, code).inc()
        error: dict[str, Any] = {"code": code, "message": message}
        if data:
            error["data"] = data
        extra: dict[str, str] = {}
        if code == protocol.OVERLOADED:
            retry_ms = (data or {}).get("retry_after_ms")
            if isinstance(retry_ms, (int, float)):
                extra["Retry-After"] = str(max(1, round(retry_ms / 1000)))
        return status, {"ok": False, "error": error}, extra

    async def _rpc(self, route: str, op: str, body: bytes) -> tuple[int, Any, dict[str, str]]:
        if body:
            try:
                params = json.loads(body.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                return self._error(route, 400, protocol.BAD_REQUEST, "body is not valid JSON")
            if not isinstance(params, dict):
                return self._error(route, 400, protocol.BAD_REQUEST, "body must be a JSON object")
        else:
            params = {}
        try:
            if op == "ping":
                result = await self.coordinator.ping()
            elif op == "stats":
                result = await self.coordinator.stats()
            elif op == "check":
                result = await self.coordinator.check(params)
            elif op == "check_many":
                result = await self.coordinator.check_many(params)
            elif op == "minimize":
                result = await self.coordinator.minimize(params)
            elif op == "classify":
                result = await self.coordinator.classify(params)
            else:  # store
                result = await self.coordinator.store_process(params)
        except protocol.ServiceError as error:
            status = _STATUS_FOR_CODE.get(error.code, 500)
            return self._error(route, status, error.code, error.message, error.data or None)
        except Exception as error:  # pragma: no cover - defensive boundary
            return self._error(route, 500, protocol.INTERNAL, f"{type(error).__name__}: {error}")
        return 200, {"ok": True, "result": result}, {}

    async def _healthz(self) -> tuple[int, Any, dict[str, str]]:
        health = self.coordinator.health()
        healthy = sum(health.values())
        status = 200 if healthy >= 1 else 503
        return status, {
            "ok": healthy >= 1,
            "healthy_nodes": healthy,
            "nodes": health,
        }, {}

    async def _render_metrics(self) -> str:
        """Prometheus text: gateway series plus per-(node, shard) engine stats."""
        await self._refresh_engine_series()
        return self.registry.render()

    async def _refresh_engine_series(self) -> None:
        async def fetch(node) -> tuple[str, dict[str, Any] | None]:
            try:
                return node.node_id, await node.link.request(
                    "stats", timeout=METRICS_STATS_TIMEOUT
                )
            except (ConnectionError, OSError, protocol.ServiceError):
                return node.node_id, None

        results = await asyncio.gather(
            *(fetch(node) for node in self.coordinator.nodes.values() if node.healthy)
        )
        for node_id, stats in results:
            if not stats:
                continue
            for shard in stats.get("shards", []) or []:
                engine = shard.get("engine") if isinstance(shard, dict) else None
                if not isinstance(engine, dict):
                    continue
                shard_label = str(shard.get("shard", "?"))
                # export_stats labels the payload with node=...; prefer the
                # node's own label so relabelled nodes stay distinguishable.
                node_label = str(engine.get("node") or node_id)
                for stat, value in engine.items():
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        self._engine_series.labels(node_label, shard_label, stat).set(
                            float(value)
                        )


def serve_gateway(
    nodes: dict[str, tuple[str, int]],
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_GATEWAY_PORT,
    replication_factor: int = 2,
    steal_threshold: int | None = None,
    store_root: str | None = None,
    probe_interval: float = 1.0,
) -> None:
    """Blocking entry point: build a coordinator and serve HTTP until killed."""
    from repro.cluster.store import ClusterStore

    store = ClusterStore(store_root) if store_root else None
    coordinator = ClusterCoordinator(
        nodes,
        replication_factor=replication_factor,
        steal_threshold=steal_threshold,
        store=store,
        probe_interval=probe_interval,
    )
    gateway = ClusterGateway(coordinator, host=host, port=port)

    async def main() -> None:
        await gateway.start()
        node_list = ", ".join(sorted(nodes))
        print(
            f"repro cluster gateway on http://{gateway.host}:{gateway.port} "
            f"-> nodes [{node_list}] (rf={coordinator.replication_factor})",
            flush=True,
        )
        try:
            await gateway.serve_forever()
        finally:
            await gateway.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
