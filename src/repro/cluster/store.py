"""The coordinator's persistent store: processes plus minimisation artifacts.

A :class:`ClusterStore` wraps two content-addressed on-disk layers under one
root directory::

    <root>/processes/<hex[:2]>/<hex>.json          # ProcessStore entries
    <root>/artifacts/<hex[:2]>/<hex>.<notion>.json # minimisation artifacts

The process layer is a plain :class:`~repro.service.store.ProcessStore`
(startup index included); the artifact layer maps ``(digest, notion)`` to
the serialised result of minimising that process under that notion -- the
exact JSON document a node's ``minimize`` op returns.  Because a process is
immutable under its digest, its quotient under a fixed notion is immutable
too, so artifacts are write-once and cacheable forever, just like the
processes themselves.

This is what makes minimisations survive node loss: the coordinator
persists every computed artifact here, keyed ``(digest, notion)``, and
serves repeat requests from this store without touching any node.  A
quotient computed on a node that has since been killed is still one
``get_artifact`` away.

Artifact writes are atomic (temp file + ``os.replace``) and reads are
tolerant: a corrupt or unparsable artifact file reads as a miss (the
minimisation simply recomputes) rather than an error, so one damaged entry
never poisons the cache.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from pathlib import Path
from typing import Any

from repro.service.store import ProcessStore

__all__ = ["ClusterStore"]

#: Notion names double as filename components; keep them boring.
_NOTION_RE = re.compile(r"^[a-z0-9_-]{1,64}$")

_HEX_RE = re.compile(r"^[0-9a-f]{64}$")


def _artifact_parts(digest: str, notion: str) -> tuple[str, str]:
    """Validated ``(hex, notion)`` filename parts for one artifact key."""
    prefix, _, hex_part = digest.partition(":")
    if prefix != "sha256" or not _HEX_RE.match(hex_part):
        raise KeyError(f"malformed digest {digest!r}")
    if not _NOTION_RE.match(notion):
        raise KeyError(f"notion {notion!r} is not a valid artifact key component")
    return hex_part, notion


class ClusterStore:
    """Processes and ``(digest, notion)``-keyed minimisation artifacts."""

    def __init__(self, root: str | Path, *, max_cached: int = 64) -> None:
        self.root = Path(root)
        self.processes = ProcessStore(self.root / "processes", max_cached=max_cached)
        self._artifact_root = self.root / "artifacts"
        self._artifact_root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._artifact_hits = 0
        self._artifact_misses = 0
        self._artifact_index: set[tuple[str, str]] = self._scan_artifacts()

    def _scan_artifacts(self) -> set[tuple[str, str]]:
        """Startup index of artifact keys; malformed filenames are skipped."""
        index: set[tuple[str, str]] = set()
        for path in self._artifact_root.glob("??/*.json"):
            stem = path.stem  # "<hex>.<notion>"
            hex_part, dot, notion = stem.partition(".")
            if (
                dot
                and _HEX_RE.match(hex_part)
                and _NOTION_RE.match(notion)
                and path.parent.name == hex_part[:2]
            ):
                index.add(("sha256:" + hex_part, notion))
        return index

    def artifact_path(self, digest: str, notion: str) -> Path:
        """Where the artifact for ``(digest, notion)`` lives (if anywhere)."""
        hex_part, notion = _artifact_parts(digest, notion)
        return self._artifact_root / hex_part[:2] / f"{hex_part}.{notion}.json"

    def put_artifact(self, digest: str, notion: str, document: dict[str, Any]) -> None:
        """Persist one minimisation artifact (atomic, idempotent)."""
        path = self.artifact_path(digest, notion)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, separators=(",", ":"), sort_keys=True)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except FileNotFoundError:
                    pass
                raise
        with self._lock:
            self._artifact_index.add((digest, notion))

    def get_artifact(self, digest: str, notion: str) -> dict[str, Any] | None:
        """The stored artifact for ``(digest, notion)``, or None.

        Damaged entries (unreadable, unparsable, not an object) count as
        misses -- the caller recomputes and overwrites -- so corruption of
        one file costs one recomputation, never an outage.
        """
        try:
            path = self.artifact_path(digest, notion)
        except KeyError:
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError, UnicodeDecodeError, OSError):
            with self._lock:
                self._artifact_misses += 1
                self._artifact_index.discard((digest, notion))
            return None
        if not isinstance(document, dict):
            with self._lock:
                self._artifact_misses += 1
            return None
        with self._lock:
            self._artifact_hits += 1
            self._artifact_index.add((digest, notion))
        return document

    def artifact_keys(self) -> list[tuple[str, str]]:
        """All indexed ``(digest, notion)`` artifact keys (sorted)."""
        with self._lock:
            return sorted(self._artifact_index)

    def cache_info(self) -> dict[str, Any]:
        """Process-layer cache info plus artifact-layer counters."""
        with self._lock:
            artifacts = len(self._artifact_index)
            hits, misses = self._artifact_hits, self._artifact_misses
        return {
            "processes": self.processes.cache_info(),
            "artifacts": artifacts,
            "artifact_hits": hits,
            "artifact_misses": misses,
        }

    def __repr__(self) -> str:
        return f"ClusterStore(root={str(self.root)!r}, artifacts={len(self._artifact_index)})"
