"""Deterministic finite automata and the subset construction.

The classical counterpart of the paper's equivalences lives here: ``approx_1``
for standard FSPs is NFA language equivalence (Proposition 2.2.3(b)), which we
decide by determinisation; and Proposition 2.2.4 reduces every equivalence of
the paper to DFA equivalence on the deterministic model.

A :class:`DFA` here is always *complete*: a (possibly implicit) dead state
guarantees that every state has exactly one transition per symbol.  States of
determinised automata are canonical frozensets of NFA states rendered as
sorted, comma-joined strings so that they stay hashable and readable.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.automata.nfa import NFA
from repro.core.errors import InvalidProcessError, StateSpaceLimitError

#: Name of the implicit dead (sink) state added when completing a DFA.
DEAD_STATE = "__dead__"


class DFA:
    """A complete deterministic finite automaton."""

    __slots__ = ("_states", "_start", "_alphabet", "_delta", "_accepting")

    def __init__(
        self,
        states: Iterable[str],
        start: str,
        alphabet: Iterable[str],
        delta: Mapping[tuple[str, str], str],
        accepting: Iterable[str],
    ) -> None:
        self._states = frozenset(states)
        self._start = start
        self._alphabet = frozenset(alphabet)
        self._delta = dict(delta)
        self._accepting = frozenset(accepting)
        if self._start not in self._states:
            raise InvalidProcessError(f"start state {start!r} is not a state")
        if not self._accepting <= self._states:
            raise InvalidProcessError("accepting states must be states")
        for state in self._states:
            for symbol in self._alphabet:
                target = self._delta.get((state, symbol))
                if target is None:
                    raise InvalidProcessError(
                        f"DFA is not complete: no transition from {state!r} on {symbol!r}"
                    )
                if target not in self._states:
                    raise InvalidProcessError(
                        f"transition from {state!r} on {symbol!r} leads to unknown state {target!r}"
                    )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def states(self) -> frozenset[str]:
        return self._states

    @property
    def start(self) -> str:
        return self._start

    @property
    def alphabet(self) -> frozenset[str]:
        return self._alphabet

    @property
    def accepting(self) -> frozenset[str]:
        return self._accepting

    def transition(self, state: str, symbol: str) -> str:
        """The unique successor of ``state`` on ``symbol``."""
        return self._delta[(state, symbol)]

    def accepts(self, word: Sequence[str]) -> bool:
        """Whether the DFA accepts ``word``."""
        state = self._start
        for symbol in word:
            if symbol not in self._alphabet:
                return False
            state = self._delta[(state, symbol)]
        return state in self._accepting

    def reachable_states(self) -> frozenset[str]:
        seen = {self._start}
        frontier = [self._start]
        while frontier:
            state = frontier.pop()
            for symbol in self._alphabet:
                nxt = self._delta[(state, symbol)]
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def restrict_to_reachable(self) -> "DFA":
        keep = self.reachable_states()
        return DFA(
            states=keep,
            start=self._start,
            alphabet=self._alphabet,
            delta={key: value for key, value in self._delta.items() if key[0] in keep},
            accepting=self._accepting & keep,
        )

    # ------------------------------------------------------------------
    # boolean operations
    # ------------------------------------------------------------------
    def complement(self) -> "DFA":
        """The DFA accepting the complement language (same alphabet)."""
        return DFA(
            states=self._states,
            start=self._start,
            alphabet=self._alphabet,
            delta=self._delta,
            accepting=self._states - self._accepting,
        )

    def product(self, other: "DFA", accept_mode: str = "both") -> "DFA":
        """The synchronous product of two DFAs over the same alphabet.

        ``accept_mode`` selects the acceptance condition: ``"both"`` for
        intersection, ``"either"`` for union, ``"difference"`` for
        ``L(self) \\ L(other)``.
        """
        if self._alphabet != other._alphabet:
            raise InvalidProcessError("product requires identical alphabets")
        start = f"{self._start}|{other._start}"
        states: set[str] = set()
        delta: dict[tuple[str, str], str] = {}
        accepting: set[str] = set()
        frontier = [(self._start, other._start)]
        seen = {(self._start, other._start)}
        while frontier:
            left, right = frontier.pop()
            name = f"{left}|{right}"
            states.add(name)
            left_accepts = left in self._accepting
            right_accepts = right in other._accepting
            if accept_mode == "both" and left_accepts and right_accepts:
                accepting.add(name)
            elif accept_mode == "either" and (left_accepts or right_accepts):
                accepting.add(name)
            elif accept_mode == "difference" and left_accepts and not right_accepts:
                accepting.add(name)
            for symbol in self._alphabet:
                next_pair = (self._delta[(left, symbol)], other._delta[(right, symbol)])
                delta[(name, symbol)] = f"{next_pair[0]}|{next_pair[1]}"
                if next_pair not in seen:
                    seen.add(next_pair)
                    frontier.append(next_pair)
        return DFA(
            states=states, start=start, alphabet=self._alphabet, delta=delta, accepting=accepting
        )

    def is_empty(self) -> bool:
        """Whether the accepted language is empty."""
        return not (self.reachable_states() & self._accepting)

    def shortest_accepted_word(self) -> tuple[str, ...] | None:
        """A shortest accepted word, or None when the language is empty.

        Used to extract concrete distinguishing strings as counterexamples for
        failed language-equivalence checks.
        """
        from collections import deque

        queue: deque[tuple[str, tuple[str, ...]]] = deque([(self._start, ())])
        seen = {self._start}
        while queue:
            state, word = queue.popleft()
            if state in self._accepting:
                return word
            for symbol in sorted(self._alphabet):
                nxt = self._delta[(state, symbol)]
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append((nxt, word + (symbol,)))
        return None

    def __repr__(self) -> str:
        return (
            f"DFA(states={len(self._states)}, alphabet={sorted(self._alphabet)}, "
            f"accepting={len(self._accepting)})"
        )


def _macro_name(states: frozenset[str]) -> str:
    return "{" + ",".join(sorted(states)) + "}" if states else DEAD_STATE


def determinize(nfa: NFA, max_states: int | None = None) -> DFA:
    """The subset construction.

    Parameters
    ----------
    nfa:
        The automaton to determinise.
    max_states:
        Optional guard on the number of macro-states; the construction is
        exponential in the worst case (that worst case is exactly what the
        PSPACE-hardness results of Sections 4 and 5 exploit), so callers that
        cannot afford a blow-up should set a limit.

    Raises
    ------
    StateSpaceLimitError
        When the subset construction exceeds ``max_states`` macro-states.
    """
    start_macro = nfa.epsilon_closure({nfa.start})
    alphabet = sorted(nfa.alphabet)
    macro_states: dict[frozenset[str], str] = {start_macro: _macro_name(start_macro)}
    delta: dict[tuple[str, str], str] = {}
    accepting: set[str] = set()
    frontier = [start_macro]
    dead_needed = False
    while frontier:
        macro = frontier.pop()
        name = macro_states[macro]
        if macro & nfa.accepting:
            accepting.add(name)
        for symbol in alphabet:
            target = nfa.step(macro, symbol)
            if not target:
                dead_needed = True
                delta[(name, symbol)] = DEAD_STATE
                continue
            if target not in macro_states:
                macro_states[target] = _macro_name(target)
                frontier.append(target)
                if max_states is not None and len(macro_states) > max_states:
                    raise StateSpaceLimitError(
                        f"subset construction exceeded {max_states} macro-states"
                    )
            delta[(name, symbol)] = macro_states[target]
    states = set(macro_states.values())
    if dead_needed:
        states.add(DEAD_STATE)
        for symbol in alphabet:
            delta[(DEAD_STATE, symbol)] = DEAD_STATE
    return DFA(
        states=states,
        start=_macro_name(start_macro),
        alphabet=nfa.alphabet,
        delta=delta,
        accepting=accepting,
    )
