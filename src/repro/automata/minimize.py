"""DFA minimisation: Hopcroft's O(N log N) algorithm and Moore's O(N^2) baseline.

Section 3 of the paper motivates generalized partitioning as the relational
generalisation of Hopcroft's (1971) DFA state-minimisation algorithm, so the
library ships both the classical algorithm (as the deterministic special case
the paper starts from) and the slower textbook refinement by Moore as a
cross-check.
"""

from __future__ import annotations

from collections import deque

from repro.automata.dfa import DFA


def moore_minimize(dfa: DFA) -> DFA:
    """Minimise a DFA with Moore's iterative refinement (O(N^2) per pass)."""
    dfa = dfa.restrict_to_reachable()
    # partition id per state, starting from accepting / non-accepting
    block_of = {state: (state in dfa.accepting) for state in dfa.states}
    alphabet = sorted(dfa.alphabet)
    while True:
        signatures = {
            state: (
                block_of[state],
                tuple(block_of[dfa.transition(state, symbol)] for symbol in alphabet),
            )
            for state in dfa.states
        }
        new_ids: dict[object, int] = {}
        new_block_of = {}
        for state, signature in signatures.items():
            if signature not in new_ids:
                new_ids[signature] = len(new_ids)
            new_block_of[state] = new_ids[signature]
        if len(set(new_block_of.values())) == len(set(block_of.values())):
            block_of = new_block_of
            break
        block_of = new_block_of
    return _quotient(dfa, block_of)


def hopcroft_minimize(dfa: DFA) -> DFA:
    """Minimise a DFA with Hopcroft's partition-refinement algorithm.

    This is the deterministic ancestor of the paper's generalized partitioning
    problem: blocks are split against the *preimage* of a splitter block and
    only the smaller half of each split needs to be re-processed, giving the
    O(N log N) bound (here: O(|Sigma| N log N)).
    """
    dfa = dfa.restrict_to_reachable()
    states = dfa.states
    alphabet = sorted(dfa.alphabet)
    accepting = dfa.accepting & states
    rejecting = states - accepting

    # predecessor map per symbol
    preimage: dict[str, dict[str, set[str]]] = {symbol: {} for symbol in alphabet}
    for state in states:
        for symbol in alphabet:
            preimage[symbol].setdefault(dfa.transition(state, symbol), set()).add(state)

    partition: list[set[str]] = [block for block in (set(accepting), set(rejecting)) if block]
    worklist: deque[frozenset[str]] = deque(frozenset(block) for block in partition)

    while worklist:
        splitter = worklist.popleft()
        for symbol in alphabet:
            affected: set[str] = set()
            for target in splitter:
                affected |= preimage[symbol].get(target, set())
            if not affected:
                continue
            next_partition: list[set[str]] = []
            for block in partition:
                inside = block & affected
                outside = block - affected
                if inside and outside:
                    next_partition.extend((inside, outside))
                    frozen_block = frozenset(block)
                    if frozen_block in worklist:
                        worklist.remove(frozen_block)
                        worklist.extend((frozenset(inside), frozenset(outside)))
                    else:
                        smaller = inside if len(inside) <= len(outside) else outside
                        worklist.append(frozenset(smaller))
                else:
                    next_partition.append(block)
            partition = next_partition

    block_of: dict[str, int] = {}
    for index, block in enumerate(partition):
        for state in block:
            block_of[state] = index
    return _quotient(dfa, block_of)


def _quotient(dfa: DFA, block_of: dict[str, object]) -> DFA:
    """Collapse a DFA along a congruence described by a block labelling."""
    representative: dict[object, str] = {}
    for state in sorted(dfa.states):
        representative.setdefault(block_of[state], state)

    def name(block: object) -> str:
        return f"[{representative[block]}]"

    states = {name(block) for block in representative}
    delta = {}
    accepting = set()
    for block, rep in representative.items():
        if rep in dfa.accepting:
            accepting.add(name(block))
        for symbol in dfa.alphabet:
            delta[(name(block), symbol)] = name(block_of[dfa.transition(rep, symbol)])
    return DFA(
        states=states,
        start=name(block_of[dfa.start]),
        alphabet=dfa.alphabet,
        delta=delta,
        accepting=accepting,
    )
