"""DFA minimisation: Hopcroft's O(N log N) algorithm and Moore's O(N^2) baseline.

Section 3 of the paper motivates generalized partitioning as the relational
generalisation of Hopcroft's (1971) DFA state-minimisation algorithm, so the
library ships both the classical algorithm (as the deterministic special case
the paper starts from) and the slower textbook refinement by Moore as a
cross-check.

Hopcroft's algorithm is not re-implemented here: a DFA is a deterministic
LTS, so :func:`hopcroft_minimize` interns the automaton into the
integer-indexed :class:`~repro.core.lts.LTS` kernel and runs the shared
splitter-queue engine of :mod:`repro.partition.kanellakis_smolka`, which
applies the genuine smaller-half worklist rule exactly because the system is
deterministic.  One engine, two of the paper's problems.
"""

from __future__ import annotations

from repro.automata.dfa import DFA
from repro.core.lts import LTS
from repro.partition.kanellakis_smolka import kanellakis_smolka_refine_lts


def moore_minimize(dfa: DFA) -> DFA:
    """Minimise a DFA with Moore's iterative refinement (O(N^2) per pass)."""
    dfa = dfa.restrict_to_reachable()
    # partition id per state, starting from accepting / non-accepting
    block_of = {state: (state in dfa.accepting) for state in dfa.states}
    alphabet = sorted(dfa.alphabet)
    while True:
        signatures = {
            state: (
                block_of[state],
                tuple(block_of[dfa.transition(state, symbol)] for symbol in alphabet),
            )
            for state in dfa.states
        }
        new_ids: dict[object, int] = {}
        new_block_of = {}
        for state, signature in signatures.items():
            if signature not in new_ids:
                new_ids[signature] = len(new_ids)
            new_block_of[state] = new_ids[signature]
        if len(set(new_block_of.values())) == len(set(block_of.values())):
            block_of = new_block_of
            break
        block_of = new_block_of
    return _quotient(dfa, block_of)


def hopcroft_minimize(dfa: DFA) -> DFA:
    """Minimise a DFA with Hopcroft's partition-refinement algorithm.

    This is the deterministic ancestor of the paper's generalized partitioning
    problem: blocks are split against the *preimage* of a splitter block and
    only the smaller half of each split needs to be re-processed, giving the
    O(N log N) bound (here: O(|Sigma| N log N)).  The refinement itself runs
    on the integer-indexed LTS kernel shared with the relational solvers.
    """
    dfa = dfa.restrict_to_reachable()
    names = sorted(dfa.states)
    state_index = {name: i for i, name in enumerate(names)}
    alphabet = sorted(dfa.alphabet)
    edges = [
        (state_index[state], symbol_id, state_index[dfa.transition(state, symbol)])
        for state in names
        for symbol_id, symbol in enumerate(alphabet)
    ]
    lts = LTS(names, alphabet, edges, start=state_index[dfa.start])

    accepting = dfa.accepting
    block_ids: dict[bool, int] = {}
    block_of = [block_ids.setdefault(name in accepting, len(block_ids)) for name in names]
    part = kanellakis_smolka_refine_lts(lts, block_of, len(block_ids))

    return _quotient(dfa, {names[i]: part.blk[i] for i in range(len(names))})


def _quotient(dfa: DFA, block_of: dict[str, object]) -> DFA:
    """Collapse a DFA along a congruence described by a block labelling."""
    representative: dict[object, str] = {}
    for state in sorted(dfa.states):
        representative.setdefault(block_of[state], state)

    def name(block: object) -> str:
        return f"[{representative[block]}]"

    states = {name(block) for block in representative}
    delta = {}
    accepting = set()
    for block, rep in representative.items():
        if rep in dfa.accepting:
            accepting.add(name(block))
        for symbol in dfa.alphabet:
            delta[(name(block), symbol)] = name(block_of[dfa.transition(rep, symbol)])
    return DFA(
        states=states,
        start=name(block_of[dfa.start]),
        alphabet=dfa.alphabet,
        delta=delta,
        accepting=accepting,
    )
