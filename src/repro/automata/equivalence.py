"""Language equivalence, inclusion and universality for DFAs and NFAs.

These are the classical problems the paper refines:

* DFA equivalence has the almost-linear UNION-FIND algorithm the paper cites
  from Aho, Hopcroft & Ullman (:func:`dfa_equivalent`, the Hopcroft-Karp
  procedure);
* NFA equivalence / universality is PSPACE-complete (Stockmeyer & Meyer 1973)
  and is decided here by determinisation, which is the source of the
  exponential worst cases that the paper's lower bounds inherit
  (:func:`nfa_equivalent`, :func:`nfa_universal`).

Each decision procedure can also report a concrete distinguishing word, which
the higher-level equivalence checkers surface as counterexamples.
"""

from __future__ import annotations

from collections import deque

from repro.automata.dfa import DFA, determinize
from repro.automata.nfa import NFA
from repro.automata.union_find import UnionFind
from repro.core.errors import InvalidProcessError


def dfa_equivalent(first: DFA, second: DFA) -> bool:
    """Language equivalence of two complete DFAs via the Hopcroft-Karp procedure.

    Starting from the pair of start states, pairs of states reachable by the
    same word are merged in a union-find structure; the automata are
    equivalent iff no merged pair mixes an accepting with a non-accepting
    state.  The running time is O(N alpha(N)) for N total states.
    """
    return distinguishing_word(first, second) is None


def distinguishing_word(first: DFA, second: DFA) -> tuple[str, ...] | None:
    """A shortest-ish word accepted by exactly one of the DFAs, or None.

    The word returned is the one labelling the breadth-first path on which the
    Hopcroft-Karp procedure first discovers a conflicting pair.
    """
    if first.alphabet != second.alphabet:
        raise InvalidProcessError("language comparison requires identical alphabets")
    alphabet = sorted(first.alphabet)
    union = UnionFind()
    left_key = ("L", first.start)
    right_key = ("R", second.start)
    union.union(left_key, right_key)
    queue: deque[tuple[str, str, tuple[str, ...]]] = deque([(first.start, second.start, ())])
    while queue:
        left, right, word = queue.popleft()
        if (left in first.accepting) != (right in second.accepting):
            return word
        for symbol in alphabet:
            next_left = first.transition(left, symbol)
            next_right = second.transition(right, symbol)
            if union.union(("L", next_left), ("R", next_right)):
                queue.append((next_left, next_right, word + (symbol,)))
    return None


def dfa_included(first: DFA, second: DFA) -> bool:
    """Whether ``L(first)`` is a subset of ``L(second)``."""
    return first.product(second, accept_mode="difference").is_empty()


def nfa_equivalent(first: NFA, second: NFA, max_states: int | None = None) -> bool:
    """Language equivalence of two NFAs by determinisation.

    This is the PSPACE-complete problem the paper builds on; the subset
    construction makes it exponential in the worst case, which callers can
    bound with ``max_states``.
    """
    return nfa_distinguishing_word(first, second, max_states=max_states) is None


def nfa_distinguishing_word(
    first: NFA, second: NFA, max_states: int | None = None
) -> tuple[str, ...] | None:
    """A word accepted by exactly one of the two NFAs, or None when equivalent."""
    alphabet = first.alphabet | second.alphabet
    left = _with_alphabet(first, alphabet)
    right = _with_alphabet(second, alphabet)
    return distinguishing_word(
        determinize(left, max_states=max_states), determinize(right, max_states=max_states)
    )


def nfa_included(first: NFA, second: NFA, max_states: int | None = None) -> bool:
    """Whether ``L(first)`` is a subset of ``L(second)`` (by determinisation)."""
    alphabet = first.alphabet | second.alphabet
    left = determinize(_with_alphabet(first, alphabet), max_states=max_states)
    right = determinize(_with_alphabet(second, alphabet), max_states=max_states)
    return dfa_included(left, right)


def nfa_universal(nfa: NFA, max_states: int | None = None) -> bool:
    """Whether ``L(nfa) = Sigma*`` -- the PSPACE-complete universality problem.

    This is the problem Lemma 4.2 and Theorem 5.1 reduce from; deciding it by
    complementation of the determinised automaton exhibits exactly the
    exponential behaviour those reductions transfer to ``approx_1`` and to
    failure equivalence.
    """
    dfa = determinize(nfa, max_states=max_states)
    return dfa.complement().is_empty()


def nfa_universality_counterexample(
    nfa: NFA, max_states: int | None = None
) -> tuple[str, ...] | None:
    """A shortest word *not* accepted by the NFA, or None when it is universal."""
    dfa = determinize(nfa, max_states=max_states)
    return dfa.complement().shortest_accepted_word()


def _with_alphabet(nfa: NFA, alphabet: frozenset[str]) -> NFA:
    """Extend an NFA's alphabet (without adding transitions)."""
    if nfa.alphabet == alphabet:
        return nfa
    return NFA(
        states=nfa.states,
        start=nfa.start,
        alphabet=alphabet,
        transitions=nfa.transitions,
        accepting=nfa.accepting,
    )
