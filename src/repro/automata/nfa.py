"""Nondeterministic finite automata (with epsilon moves).

The *standard* model of FSPs is exactly an NFA with empty moves where the
unobservable action tau plays the role of the empty transition (Section 2.1).
This module provides the classical automata view used by the language-level
equivalences (``approx_1`` is NFA equivalence, Proposition 2.2.3(b)) and by
the universality problems underlying the PSPACE-hardness results.

States are strings; the automaton is immutable.  Conversions to and from
:class:`~repro.core.fsp.FSP` treat tau as epsilon and the extension variable
``x`` as acceptance.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.errors import InvalidProcessError
from repro.core.fsp import ACCEPT, FSP, TAU, FSPBuilder


class NFA:
    """An NFA with optional epsilon transitions (labelled ``None``)."""

    __slots__ = ("_states", "_start", "_alphabet", "_transitions", "_accepting", "_succ")

    def __init__(
        self,
        states: Iterable[str],
        start: str,
        alphabet: Iterable[str],
        transitions: Iterable[tuple[str, str | None, str]],
        accepting: Iterable[str],
    ) -> None:
        self._states = frozenset(states)
        self._start = start
        self._alphabet = frozenset(alphabet)
        self._transitions = frozenset(transitions)
        self._accepting = frozenset(accepting)
        if self._start not in self._states:
            raise InvalidProcessError(f"start state {start!r} is not a state")
        if not self._accepting <= self._states:
            raise InvalidProcessError("accepting states must be states")
        succ: dict[tuple[str, str | None], set[str]] = {}
        for src, symbol, dst in self._transitions:
            if src not in self._states or dst not in self._states:
                raise InvalidProcessError(f"transition {(src, symbol, dst)!r} uses unknown states")
            if symbol is not None and symbol not in self._alphabet:
                raise InvalidProcessError(f"transition symbol {symbol!r} is not in the alphabet")
            succ.setdefault((src, symbol), set()).add(dst)
        self._succ = {key: frozenset(value) for key, value in succ.items()}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def states(self) -> frozenset[str]:
        return self._states

    @property
    def start(self) -> str:
        return self._start

    @property
    def alphabet(self) -> frozenset[str]:
        return self._alphabet

    @property
    def transitions(self) -> frozenset[tuple[str, str | None, str]]:
        return self._transitions

    @property
    def accepting(self) -> frozenset[str]:
        return self._accepting

    def successors(self, state: str, symbol: str | None) -> frozenset[str]:
        """Destinations of ``state`` on ``symbol`` (``None`` for epsilon)."""
        return self._succ.get((state, symbol), frozenset())

    # ------------------------------------------------------------------
    # language operations
    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[str]) -> frozenset[str]:
        """The epsilon closure of a set of states."""
        seen = set(states)
        frontier = list(seen)
        while frontier:
            state = frontier.pop()
            for nxt in self.successors(state, None):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def step(self, states: Iterable[str], symbol: str) -> frozenset[str]:
        """One macro-step of the subset construction (closure already applied to input)."""
        moved: set[str] = set()
        for state in states:
            moved |= self.successors(state, symbol)
        return self.epsilon_closure(moved)

    def accepts(self, word: Sequence[str]) -> bool:
        """Whether the automaton accepts ``word`` (a sequence of symbols)."""
        current = self.epsilon_closure({self._start})
        for symbol in word:
            if symbol not in self._alphabet:
                return False
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self._accepting)

    def language_upto(self, max_length: int) -> frozenset[tuple[str, ...]]:
        """All accepted words of length at most ``max_length``.

        Useful for exhaustive cross-checks in the test suite; exponential in
        ``max_length`` so only suitable for small bounds.
        """
        alphabet = sorted(self._alphabet)
        accepted: set[tuple[str, ...]] = set()
        frontier: list[tuple[tuple[str, ...], frozenset[str]]] = [
            ((), self.epsilon_closure({self._start}))
        ]
        while frontier:
            word, macro = frontier.pop()
            if macro & self._accepting:
                accepted.add(word)
            if len(word) >= max_length:
                continue
            for symbol in alphabet:
                nxt = self.step(macro, symbol)
                if nxt:
                    frontier.append((word + (symbol,), nxt))
        return frozenset(accepted)

    def reverse(self) -> "NFA":
        """The reversal automaton (accepts the mirror image of the language)."""
        new_start = "__rev_start__"
        transitions: set[tuple[str, str | None, str]] = {
            (dst, symbol, src) for src, symbol, dst in self._transitions
        }
        for accept in self._accepting:
            transitions.add((new_start, None, accept))
        return NFA(
            states=self._states | {new_start},
            start=new_start,
            alphabet=self._alphabet,
            transitions=transitions,
            accepting={self._start},
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_fsp(cls, fsp: FSP, accepting: Iterable[str] | None = None) -> "NFA":
        """View a (standard) FSP as an NFA.

        Tau-transitions become epsilon transitions.  By default acceptance
        follows the standard-model convention (extension contains ``x``); an
        explicit accepting set can be supplied, which is how the ``approx_k``
        decision procedure builds the per-block languages ``L_i(p)`` of
        Theorem 4.1(b).
        """
        accept = frozenset(accepting) if accepting is not None else fsp.accepting_states()
        transitions = [
            (src, None if action == TAU else action, dst) for src, action, dst in fsp.transitions
        ]
        return cls(
            states=fsp.states,
            start=fsp.start,
            alphabet=fsp.alphabet,
            transitions=transitions,
            accepting=accept,
        )

    def to_fsp(self, all_accepting: bool = False) -> FSP:
        """Convert back to a standard FSP (epsilon becomes tau)."""
        builder = FSPBuilder(alphabet=self._alphabet)
        builder.add_state(self._start)
        for state in self._states:
            builder.add_state(state)
        for src, symbol, dst in self._transitions:
            builder.add_transition(src, TAU if symbol is None else symbol, dst)
        if all_accepting:
            builder.mark_all_accepting()
        else:
            for state in self._accepting:
                builder.add_extension(state, ACCEPT)
        return builder.build(start=self._start)

    def __repr__(self) -> str:
        return (
            f"NFA(states={len(self._states)}, transitions={len(self._transitions)}, "
            f"alphabet={sorted(self._alphabet)})"
        )
