"""A union-find (disjoint set union) structure.

Section 3 of the paper recalls that language equivalence of deterministic
finite automata has an ``O(N alpha(N))`` algorithm based on UNION-FIND
(Aho, Hopcroft & Ullman 1974, Section 4.8) -- the Hopcroft-Karp equivalence
procedure implemented in :mod:`repro.automata.equivalence` uses this
structure.  Path compression and union by rank give the inverse-Ackermann
amortised bound.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable


class UnionFind:
    """Disjoint-set union with path compression and union by rank."""

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._rank: dict[Hashable, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Add a singleton set containing ``element`` (no-op when present)."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def find(self, element: Hashable) -> Hashable:
        """The canonical representative of ``element``'s set."""
        if element not in self._parent:
            self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # path compression
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, first: Hashable, second: Hashable) -> bool:
        """Merge the sets of ``first`` and ``second``.

        Returns True when the two were previously in different sets.
        """
        root_a, root_b = self.find(first), self.find(second)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        return True

    def connected(self, first: Hashable, second: Hashable) -> bool:
        """Whether the two elements currently belong to the same set."""
        return self.find(first) == self.find(second)

    def sets(self) -> list[frozenset[Hashable]]:
        """All current sets as frozensets."""
        groups: dict[Hashable, set[Hashable]] = {}
        for element in self._parent:
            groups.setdefault(self.find(element), set()).add(element)
        return [frozenset(group) for group in groups.values()]
