"""Classical automata substrate: NFA, DFA, minimisation, language equivalence."""

from repro.automata.dfa import DEAD_STATE, DFA, determinize
from repro.automata.equivalence import (
    dfa_equivalent,
    dfa_included,
    distinguishing_word,
    nfa_distinguishing_word,
    nfa_equivalent,
    nfa_included,
    nfa_universal,
    nfa_universality_counterexample,
)
from repro.automata.minimize import hopcroft_minimize, moore_minimize
from repro.automata.nfa import NFA
from repro.automata.union_find import UnionFind

__all__ = [
    "DEAD_STATE",
    "DFA",
    "NFA",
    "UnionFind",
    "determinize",
    "dfa_equivalent",
    "dfa_included",
    "distinguishing_word",
    "hopcroft_minimize",
    "moore_minimize",
    "nfa_distinguishing_word",
    "nfa_equivalent",
    "nfa_included",
    "nfa_universal",
    "nfa_universality_counterexample",
]
