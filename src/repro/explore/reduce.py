"""State-space reduction for the on-the-fly layer: confluence, symmetry, fingerprints.

The lazy products of :mod:`repro.explore.products` keep Section 6's "direct
product of states" *implicit*, but :func:`~repro.explore.onthefly.check_implicit`
still enumerates every interleaving the bisimulation game touches.  For the
protocol workloads of :mod:`repro.protocols` that is the binding constraint:
a quorum-voting instance at ``n = 25`` has on the order of :math:`4^{25}`
product states, almost all of them permutations and reorderings of each
other.  This module supplies the three standard reductions, each as a wrapper
that *is itself* an :class:`~repro.explore.implicit.ImplicitLTS`, so they
compose with the products, the checker and the protocol verbs unchanged:

* **Partial-order reduction** (:class:`ConfluenceReducer`) -- tau-confluence
  prioritisation in the Groote/van de Pol style.  When a state has a
  *strongly confluent* tau move (every other move can be mimicked after it,
  closing the diamond with at most one tau), all other moves are provably
  redundant for weak/branching equivalence and for deadlock/livelock
  reachability, and the reducer keeps only the confluent tau.  Soundness
  conditions enforced here:

  - the prioritised tau must preserve the extension set (the game compares
    ``E(q)`` at every pair);
  - the **cycle proviso**: a tau move into a state whose successors were
    already reduced is never prioritised, so prioritised edges form a DAG
    and a tau cycle can never swallow the rest of the system (the classic
    "ignoring problem" that would make livelock detection unsound).

  Confluence prioritisation is *not* sound for strong bisimilarity (it
  deliberately collapses tau branching), so equivalence checking applies it
  only under the observational notion; reachability (deadlock / livelock)
  search may always use it.

* **Symmetry reduction** (:class:`SymmetryReducer`) -- quotient by a
  declared automorphism group, implemented as canonical-form hashing: every
  state is flattened along the product tree into its tuple of leaf states,
  canonicalised (:class:`RotationSymmetry` minimises over ring rotations,
  :class:`FullPermutationSymmetry` sorts each interchangeable group), and
  rebuilt.  The orbit relation of a label-preserving automorphism group is a
  strong bisimulation, so a label-preserving symmetry is sound for *every*
  notion the checker supports; a symmetry that permutes observable labels
  (rotating a token ring maps ``serve0`` to ``serve1``) still preserves
  deadlock and livelock existence and is accepted for stuck-state search
  only.  Symmetries are *declared* (:func:`annotate_symmetry` on the spec
  root, done by the library builders for the symmetric families), never
  guessed; ``validate=True`` re-checks the generators state by state.

* **Fingerprint frontiers** (:class:`Fingerprinter`) -- the checker's
  visited set stores product *pairs* as nested tuples, which is what runs
  out of memory first on :math:`10^8`-pair explorations.  A fingerprint
  packs two independently salted 64-bit hashes into one ~128-bit integer
  per pair, shrinking the frontier by more than an order of magnitude.  A
  fingerprint collision could silently merge two distinct pairs, so every
  consumer keeps an escape hatch: ``frontier="exact"`` restores full keys,
  and any distinguishing trace or stuck-state trace produced under a
  compact frontier is re-verified by replay against the *unreduced*
  systems before it is reported.

:func:`prepare_operand` is the single dispatch point: it resolves a spec /
FSP / implicit operand, reads the declared symmetry, and stacks the wrappers
requested by a ``reduction`` mode (``"none"``, ``"por"``, ``"symmetry"`` or
``"full"``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP, TAU
from repro.explore.implicit import ImplicitLTS, Move, State, as_implicit
from repro.explore.products import _LazyProduct, _LazyWrapper

__all__ = [
    "FRONTIERS",
    "REDUCTIONS",
    "ConfluenceReducer",
    "Fingerprinter",
    "FullPermutationSymmetry",
    "RotationSymmetry",
    "SymmetryReducer",
    "annotate_symmetry",
    "canonical_bytes",
    "declared_symmetry",
    "normalize_frontier",
    "normalize_reduction",
    "prepare_operand",
    "structural_state_estimate",
]

#: the reduction modes threaded through ``check_implicit`` / ``find_stuck`` /
#: the engine, CLI and service: apply nothing, only partial-order reduction,
#: only symmetry reduction, or both.
REDUCTIONS = ("none", "por", "symmetry", "full")

#: visited-frontier representations: full keys, or ~128-bit fingerprints.
FRONTIERS = ("exact", "compact")


def normalize_reduction(reduction) -> str:
    """Validate a reduction mode (``None`` means ``"none"``)."""
    mode = "none" if reduction is None else str(reduction)
    if mode not in REDUCTIONS:
        raise InvalidProcessError(
            f"unknown reduction {reduction!r}; known: {', '.join(REDUCTIONS)}"
        )
    return mode


def normalize_frontier(frontier) -> str:
    """Validate a frontier representation (``None`` means ``"exact"``)."""
    choice = "exact" if frontier is None else str(frontier)
    if choice not in FRONTIERS:
        raise InvalidProcessError(
            f"unknown frontier {frontier!r}; known: {', '.join(FRONTIERS)}"
        )
    return choice


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
_MASK64 = (1 << 64) - 1
#: the default second-hash salt (the 64-bit golden ratio, an arbitrary odd
#: constant); both halves go through Python's SipHash, so the two 64-bit
#: lanes are independent for any fixed salt.
_FP_SALT = 0x9E3779B97F4A7C15


class Fingerprinter:
    """Hash-compact states into ~128-bit integers.

    ``fp(value)`` packs ``hash(value)`` and ``hash((salt, value))`` into one
    int.  Storing these instead of nested state tuples keeps a visited set's
    size proportional to the *count* of states, not their depth.  Two
    distinct values collide with probability about :math:`2^{-128}` per
    pair -- vanishing for any feasible exploration, but not zero, which is
    why compact-frontier consumers re-verify their traces on the unreduced
    systems (and accept ``frontier="exact"`` as the escape hatch).
    """

    __slots__ = ("salt",)

    def __init__(self, salt: int = _FP_SALT) -> None:
        self.salt = salt

    def __call__(self, value) -> int:
        return ((hash((self.salt, value)) & _MASK64) << 64) | (hash(value) & _MASK64)


# ----------------------------------------------------------------------
# Flattening product states along the composition tree
# ----------------------------------------------------------------------
def _flatten(node: ImplicitLTS, state, out: list) -> None:
    """Append the leaf states of ``state`` (left-to-right) to ``out``."""
    if isinstance(node, _LazyProduct):
        _flatten(node.left, state[0], out)
        _flatten(node.right, state[1], out)
    elif isinstance(node, _LazyWrapper):
        _flatten(node.inner, state, out)
    elif isinstance(node, (SymmetryReducer, ConfluenceReducer)):
        _flatten(node.inner, state, out)
    else:
        out.append(state)


def _unflatten(node: ImplicitLTS, flat: tuple, index: int):
    """Rebuild a product state from ``flat[index:]``; returns ``(state, next)``."""
    if isinstance(node, _LazyProduct):
        left, index = _unflatten(node.left, flat, index)
        right, index = _unflatten(node.right, flat, index)
        return (left, right), index
    if isinstance(node, (_LazyWrapper, SymmetryReducer, ConfluenceReducer)):
        return _unflatten(node.inner, flat, index)
    return flat[index], index + 1


def _leaf_count(node: ImplicitLTS) -> int:
    if isinstance(node, _LazyProduct):
        return _leaf_count(node.left) + _leaf_count(node.right)
    if isinstance(node, (_LazyWrapper, SymmetryReducer, ConfluenceReducer)):
        return _leaf_count(node.inner)
    return 1


def _state_key(state) -> str:
    """A total order on leaf states (FSP states are strings; terms use repr)."""
    if isinstance(state, str):
        return state
    return f"{type(state).__name__}:{state!r}"


# ----------------------------------------------------------------------
# Symmetry declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FullPermutationSymmetry:
    """Arbitrary permutations within each group of leaf positions.

    Declares that the leaves at the positions of each ``group`` are fully
    interchangeable: any permutation within a group, applied to the flat
    leaf-state tuple, is an automorphism of the composed system.  The
    counting-synchroniser quorum systems of :mod:`repro.protocols.model`
    have exactly this shape -- the counter receives any sender's message
    without tracking identity, and every role channel is restricted, so
    permuting the (identical, index-renamed) role machines preserves labels.

    ``canonical`` sorts each group's sub-tuple, i.e. forgets *which* leaf is
    in which local state and keeps only the multiset -- the orbit's least
    representative.
    """

    groups: tuple[tuple[int, ...], ...]
    label_preserving: bool = True

    def __init__(self, groups, label_preserving: bool = True) -> None:
        object.__setattr__(
            self, "groups", tuple(tuple(int(p) for p in group) for group in groups)
        )
        object.__setattr__(self, "label_preserving", bool(label_preserving))
        _check_positions(self.groups, "permutation group")

    @property
    def positions(self) -> tuple[int, ...]:
        return tuple(p for group in self.groups for p in group)

    def canonical(self, flat: tuple) -> tuple:
        out = list(flat)
        for group in self.groups:
            for position, state in zip(
                group, sorted((out[p] for p in group), key=_state_key)
            ):
                out[position] = state
        return tuple(out)

    def generator_images(self, flat: tuple) -> Iterator[tuple]:
        """Adjacent transpositions: enough to generate each group's S_n."""
        for group in self.groups:
            for here, there in zip(group, group[1:]):
                image = list(flat)
                image[here], image[there] = image[there], image[here]
                yield tuple(image)


@dataclass(frozen=True)
class RotationSymmetry:
    """Simultaneous rotation of one or more rings of leaf positions.

    Each ring lists leaf positions in ring order; a rotation by ``k`` moves
    every ring's contents ``k`` places at once (dining philosophers rotate
    the philosopher ring and the fork ring together).  All rings must have
    the same length.  ``canonical`` picks the lexicographically least
    rotation of the flat tuple.

    Ring families typically expose *indexed* observable actions
    (``serve0``, ``eat1``, ...), so rotations are not label-preserving:
    they are sound for deadlock / livelock search (existence and kind are
    rotation-invariant) but are skipped by the equivalence checker, and a
    stuck-state trace found under rotation is a genuine trace *modulo
    rotation* of the indexed labels.
    """

    rings: tuple[tuple[int, ...], ...]
    label_preserving: bool = False

    def __init__(self, rings, label_preserving: bool = False) -> None:
        object.__setattr__(
            self, "rings", tuple(tuple(int(p) for p in ring) for ring in rings)
        )
        object.__setattr__(self, "label_preserving", bool(label_preserving))
        _check_positions(self.rings, "ring")
        lengths = {len(ring) for ring in self.rings}
        if len(lengths) > 1:
            raise InvalidProcessError(
                f"rotation rings must share one length, got {sorted(lengths)}"
            )

    @property
    def positions(self) -> tuple[int, ...]:
        return tuple(p for ring in self.rings for p in ring)

    def _rotate(self, flat: tuple, k: int) -> tuple:
        out = list(flat)
        for ring in self.rings:
            n = len(ring)
            for i, position in enumerate(ring):
                out[ring[(i + k) % n]] = flat[position]
        return tuple(out)

    def canonical(self, flat: tuple) -> tuple:
        length = len(self.rings[0]) if self.rings else 0
        best = flat
        best_key = tuple(_state_key(s) for s in flat)
        for k in range(1, length):
            candidate = self._rotate(flat, k)
            key = tuple(_state_key(s) for s in candidate)
            if key < best_key:
                best, best_key = candidate, key
        return best

    def generator_images(self, flat: tuple) -> Iterator[tuple]:
        if self.rings and len(self.rings[0]) > 1:
            yield self._rotate(flat, 1)


def _check_positions(groups: tuple[tuple[int, ...], ...], what: str) -> None:
    seen: set[int] = set()
    for group in groups:
        if not group:
            raise InvalidProcessError(f"empty {what} in symmetry declaration")
        for position in group:
            if position < 0:
                raise InvalidProcessError(f"negative leaf position {position} in {what}")
            if position in seen:
                raise InvalidProcessError(
                    f"leaf position {position} appears twice across symmetry {what}s"
                )
            seen.add(position)


Symmetry = "FullPermutationSymmetry | RotationSymmetry"

#: the attribute carrying declared symmetries on a spec root.  Spec nodes are
#: plain dataclasses, so the annotation travels with the object (it is
#: in-process metadata: JSON documents and fault rewrites drop it, which is
#: exactly right -- a crashed or mutated instance is no longer symmetric).
_SYMMETRY_ATTR = "_reduction_symmetry"


def annotate_symmetry(spec, *symmetries):
    """Attach declared symmetries to a spec root; returns the spec.

    The declaration is a promise that every generator is an automorphism of
    the composed system; :class:`SymmetryReducer` can re-check it with
    ``validate=True`` (the metamorphic tests do).  Frozen nodes
    (:class:`~repro.explore.system.LeafSpec`) cannot carry annotations --
    wrap them first.
    """
    if not symmetries:
        raise InvalidProcessError("annotate_symmetry needs at least one symmetry")
    for symmetry in symmetries:
        if not isinstance(symmetry, (FullPermutationSymmetry, RotationSymmetry)):
            raise InvalidProcessError(
                f"not a symmetry declaration: {type(symmetry).__name__}"
            )
    try:
        setattr(spec, _SYMMETRY_ATTR, tuple(symmetries))
    except AttributeError:
        raise InvalidProcessError(
            f"cannot annotate a {type(spec).__name__} with a symmetry "
            "(frozen or slotted node); annotate an enclosing operator node"
        ) from None
    return spec


def declared_symmetry(spec) -> tuple | None:
    """The symmetries declared on ``spec``, or None."""
    declared = getattr(spec, _SYMMETRY_ATTR, None)
    return tuple(declared) if declared else None


# ----------------------------------------------------------------------
# Symmetry reduction: canonical-form hashing
# ----------------------------------------------------------------------
class SymmetryReducer(ImplicitLTS):
    """The quotient of an implicit system by declared symmetries.

    States are canonical orbit representatives; every successor is
    canonicalised on the way out, so the reachable set collapses from
    "ordered tuples" to "tuples up to the declared group".  For a
    label-preserving automorphism group the map ``s -> canonical(s)`` is a
    strong bisimulation between the original and the quotient, so verdicts
    under every notion are preserved; see the module docstring for the
    non-label-preserving caveat.

    ``validate=True`` re-derives the automorphism property at every expanded
    state: for each group generator, the image state must have the same
    extension and the same multiset of canonicalised successor targets (and
    identical action labels when the symmetry claims to preserve them).
    This turns a wrong declaration into a loud
    :class:`~repro.core.errors.InvalidProcessError` instead of a silently
    wrong verdict -- the differential tests run every library symmetry
    through it.
    """

    __slots__ = ("inner", "symmetries", "validate", "_canon")

    def __init__(self, inner, symmetry, *, validate: bool = False) -> None:
        self.inner = as_implicit(inner)
        if isinstance(symmetry, (FullPermutationSymmetry, RotationSymmetry)):
            symmetries: tuple = (symmetry,)
        else:
            symmetries = tuple(symmetry)
        if not symmetries:
            raise InvalidProcessError("SymmetryReducer needs at least one symmetry")
        leaves = _leaf_count(self.inner)
        for declared in symmetries:
            beyond = [p for p in declared.positions if p >= leaves]
            if beyond:
                raise InvalidProcessError(
                    f"symmetry positions {beyond} exceed the system's "
                    f"{leaves} leaves"
                )
        self.symmetries = symmetries
        self.validate = bool(validate)
        self._canon: dict = {}

    def canonical(self, state: State) -> State:
        cached = self._canon.get(state)
        if cached is None:
            flat: list = []
            _flatten(self.inner, state, flat)
            canonical = tuple(flat)
            for symmetry in self.symmetries:
                canonical = symmetry.canonical(canonical)
            cached, _ = _unflatten(self.inner, canonical, 0)
            self._canon[state] = cached
        return cached

    def initial(self) -> State:
        return self.canonical(self.inner.initial())

    def successors(self, state: State) -> tuple[Move, ...]:
        if self.validate:
            self._validate(state)
        out: list[Move] = []
        seen: set[Move] = set()
        for action, target in self.inner.successors(state):
            move = (action, self.canonical(target))
            if move not in seen:
                seen.add(move)
                out.append(move)
        return tuple(out)

    def _moves_profile(self, state: State, with_actions: bool):
        profile = []
        for action, target in self.inner.successors(state):
            canon = self.canonical(target)
            profile.append((action, _state_key(canon)) if with_actions else _state_key(canon))
        return sorted(profile)

    def _validate(self, state: State) -> None:
        flat: list = []
        _flatten(self.inner, state, flat)
        base = tuple(flat)
        for symmetry in self.symmetries:
            labelled = symmetry.label_preserving
            reference = self._moves_profile(state, labelled)
            extension = self.inner.extension(state)
            for image_flat in symmetry.generator_images(base):
                image, _ = _unflatten(self.inner, image_flat, 0)
                if self.inner.extension(image) != extension:
                    raise InvalidProcessError(
                        f"symmetry validation failed: generator image of "
                        f"{self.inner.state_name(state)!r} changes the extension set"
                    )
                if self._moves_profile(image, labelled) != reference:
                    raise InvalidProcessError(
                        f"symmetry validation failed: generator image of "
                        f"{self.inner.state_name(state)!r} has different successors "
                        "(the declared group is not an automorphism group)"
                    )

    def extension(self, state: State) -> frozenset[str]:
        return self.inner.extension(state)

    def state_name(self, state: State) -> str:
        return self.inner.state_name(state)

    @property
    def alphabet(self) -> frozenset[str] | None:
        return self.inner.alphabet

    @property
    def variables(self) -> frozenset[str]:
        return self.inner.variables

    def __repr__(self) -> str:
        return f"SymmetryReducer({self.inner!r}, {self.symmetries!r})"


# ----------------------------------------------------------------------
# Partial-order reduction: tau-confluence prioritisation
# ----------------------------------------------------------------------
class ConfluenceReducer(ImplicitLTS):
    """Prioritise confluent tau moves; drop the rest of the fanout.

    A set ``T`` of tau edges is *confluent* when for every edge
    ``p --tau--> p'`` in ``T`` and every other move ``p --a--> q`` there is
    an ``r`` with ``p' --a--> r`` and either ``r = q`` or ``q --tau--> r``
    with that closing edge **also in** ``T``.  Every edge of such a set
    connects branching (hence weak) bisimilar states, so every behaviour of
    ``p`` survives through ``p'`` and the reducer may answer
    ``successors(p) = [(tau, p')]``.  Independent component moves in a lazy
    product commute exactly like this, which is what linearises the
    interleaving diamonds of a restricted protocol composition into a
    single chain.

    The self-reference ("also in T") is load-bearing: with a merely local
    closing step, ``q`` need not be equivalent to its mimic ``r``, and the
    prioritisation can prune a branch that hides a deadlock (the
    differential suite catches exactly this on Byzantine-faulted
    protocols).  Membership in the *greatest* confluent set is certified on
    the fly, coinductively: an edge under evaluation is assumed confluent;
    a failed closing candidate rolls its assumptions back; an edge whose
    own condition fails is definitely non-confluent (assumptions only ever
    help, so failure is assumption-free); and a successful root evaluation
    leaves a self-supporting assumption set -- a post-fixed point, hence
    inside the greatest confluent set -- which is memoised ``True``.

    Two extra conditions keep the prioritisation sound (see the module
    docstring): every certified edge must preserve the extension set (the
    equivalence game compares extensions at every pair), and -- the cycle
    proviso -- a tau edge into a state whose successors were already
    reduced is never *prioritised*, so prioritised edges form a DAG, every
    prioritised chain ends in a fully-expanded state, and a tau cycle can
    never swallow the observable actions (the ignoring problem).  The full
    fanout stays available via :meth:`full_successors` (the escape hatch
    trace replays use).
    """

    __slots__ = ("inner", "_succ", "_chosen", "_edges")

    def __init__(self, inner) -> None:
        self.inner = as_implicit(inner)
        self._succ: dict = {}
        self._chosen: dict = {}
        self._edges: dict = {}

    def full_successors(self, state: State) -> tuple[Move, ...]:
        moves = self._succ.get(state)
        if moves is None:
            moves = tuple(self.inner.successors(state))
            self._succ[state] = moves
        return moves

    def successors(self, state: State) -> tuple[Move, ...]:
        chosen = self._chosen.get(state)
        if chosen is None:
            chosen = self._choose(state)
            self._chosen[state] = chosen
        return chosen

    def _choose(self, state: State) -> tuple[Move, ...]:
        moves = self.full_successors(state)
        if len(moves) < 2:
            return moves
        for action, prime in moves:
            if action != TAU or prime == state:
                continue
            if prime in self._chosen:
                continue  # cycle proviso: never prioritise into a reduced state
            if self._certify((state, prime)):
                return ((TAU, prime),)
        return moves

    def _certify(self, root: tuple[State, State]) -> bool:
        known = self._edges.get(root)
        if known is not None:
            return known
        assumed: dict = {}
        trail: list = []
        if not self._eval(root, assumed, trail):
            return False
        # the surviving assumption set is closed under the confluence
        # condition -- a post-fixed point, so inside the greatest one
        for edge in assumed:
            self._edges[edge] = True
        return True

    def _eval(self, edge: tuple[State, State], assumed: dict, trail: list) -> bool:
        known = self._edges.get(edge)
        if known is not None:
            return known
        if edge in assumed:
            return True  # coinductive hypothesis (greatest fixed point)
        assumed[edge] = True
        trail.append(edge)
        source, prime = edge

        def fail() -> bool:
            self._edges[edge] = False
            mark = trail.index(edge)
            while len(trail) > mark:
                assumed.pop(trail.pop(), None)
            return False

        if self.inner.extension(source) != self.inner.extension(prime):
            return fail()
        prime_moves = self.full_successors(prime)
        for action, other in self.full_successors(source):
            if action == TAU and other == prime:
                continue
            closed = False
            other_taus = None
            for prime_action, landing in prime_moves:
                if prime_action != action:
                    continue
                if landing == other:
                    closed = True
                    break
                if other_taus is None:
                    other_taus = {
                        target
                        for other_action, target in self.full_successors(other)
                        if other_action == TAU
                    }
                if landing in other_taus:
                    mark = len(trail)
                    if self._eval((other, landing), assumed, trail):
                        closed = True
                        break
                    while len(trail) > mark:  # roll back the failed attempt
                        assumed.pop(trail.pop(), None)
            if not closed:
                return fail()
        return True

    def initial(self) -> State:
        return self.inner.initial()

    def extension(self, state: State) -> frozenset[str]:
        return self.inner.extension(state)

    def state_name(self, state: State) -> str:
        return self.inner.state_name(state)

    @property
    def alphabet(self) -> frozenset[str] | None:
        return self.inner.alphabet

    @property
    def variables(self) -> frozenset[str]:
        return self.inner.variables

    def __repr__(self) -> str:
        return f"ConfluenceReducer({self.inner!r})"


# ----------------------------------------------------------------------
# Operand preparation (the single dispatch point)
# ----------------------------------------------------------------------
def _resolve(source) -> tuple[ImplicitLTS, tuple | None]:
    """Coerce a spec / FSP / implicit operand; read its declared symmetry."""
    if isinstance(source, (ImplicitLTS, FSP)):
        return as_implicit(source), None
    from repro.explore.system import SystemSpec, build_implicit

    if isinstance(source, SystemSpec):
        return build_implicit(source), declared_symmetry(source)
    return as_implicit(source), None


def prepare_operand(
    source,
    reduction="none",
    *,
    weak: bool = True,
    for_equivalence: bool = True,
    validate: bool = False,
) -> ImplicitLTS:
    """Build the (possibly reduced) implicit system for one operand.

    ``source`` may be a :class:`~repro.explore.system.SystemSpec` (the only
    form that can carry a symmetry annotation), an FSP, or an implicit
    system.  ``reduction`` is one of :data:`REDUCTIONS`; the soundness
    gates are applied here, not at the call sites:

    * symmetry wraps only when a symmetry is declared, and -- for
      equivalence checking -- only when it is label-preserving;
    * confluence prioritisation wraps for reachability always, but for
      equivalence checking only under a weak notion (``weak=True``).

    An ineligible request degrades to the identity rather than erroring:
    ``reduction="full"`` on an unannotated system is simply partial-order
    reduction, and ``reduction="por"`` under the strong notion is the
    unreduced system.
    """
    mode = normalize_reduction(reduction)
    node, symmetries = _resolve(source)
    if mode in ("symmetry", "full") and symmetries:
        if not for_equivalence or all(s.label_preserving for s in symmetries):
            node = SymmetryReducer(node, symmetries, validate=validate)
    if mode in ("por", "full") and (weak or not for_equivalence):
        node = ConfluenceReducer(node)
    return node


# ----------------------------------------------------------------------
# Measurement and regression-fixture helpers
# ----------------------------------------------------------------------
def structural_state_estimate(spec) -> int:
    """The product of component state counts: an upper-bound estimate of the
    unreduced product size, computable without exploring anything.

    This is the denominator of the benchmark's reduction visit fraction at
    sizes where the unreduced reachable set cannot be enumerated at all
    (quorum voting at ``n = 25`` has a structural estimate near
    :math:`4^{25}`); restriction can only shrink the reachable set below
    it, never grow it.
    """
    from repro.explore.system import (
        HideSpec,
        LeafSpec,
        ProductSpec,
        RelabelSpec,
        RestrictSpec,
        SystemSpec,
        TermSpec,
    )

    if isinstance(spec, FSP):
        return spec.num_states
    if isinstance(spec, LeafSpec):
        return spec.fsp.num_states
    if isinstance(spec, TermSpec):
        return spec.max_states
    if isinstance(spec, ProductSpec):
        return structural_state_estimate(spec.left) * structural_state_estimate(spec.right)
    if isinstance(spec, (RestrictSpec, HideSpec, RelabelSpec)):
        return structural_state_estimate(spec.of)
    if isinstance(spec, _LazyProduct):
        return structural_state_estimate(spec.left) * structural_state_estimate(spec.right)
    if isinstance(spec, (_LazyWrapper, SymmetryReducer, ConfluenceReducer)):
        return structural_state_estimate(spec.inner)
    if isinstance(spec, ImplicitLTS):
        fsp = getattr(spec, "fsp", None)
        if isinstance(fsp, FSP):
            return fsp.num_states
        max_states = getattr(spec, "max_states", None)
        if isinstance(max_states, int):
            return max_states
        raise InvalidProcessError(
            f"cannot estimate the state count of a {type(spec).__name__}"
        )
    if isinstance(spec, SystemSpec):
        raise InvalidProcessError(f"unknown spec node {type(spec).__name__}")
    raise InvalidProcessError(
        f"cannot estimate the state count of a {type(spec).__name__}"
    )


def canonical_bytes(source, *, limit: int = 10_000) -> bytes:
    """A deterministic byte rendering of the reachable canonical quotient.

    Breadth-first over :func:`prepare_operand` with ``reduction="symmetry"``
    (reachability flavour, so non-label-preserving symmetries apply too),
    with the moves of every state sorted -- so the output is byte-identical
    across runs, platforms and hash seeds.  One line per state::

        <state name> :: <action> -> <target name> ; ...

    The metamorphic suite commits these renderings as regression fixtures:
    any change to canonicalisation shows up as a fixture diff, not as a
    silently different search.
    """
    node = prepare_operand(source, "symmetry", for_equivalence=False)
    start = node.initial()
    seen = {start}
    queue: deque = deque([start])
    lines: list[str] = []
    while queue:
        state = queue.popleft()
        moves = sorted(
            ((action, target) for action, target in node.successors(state)),
            key=lambda move: (move[0], node.state_name(move[1])),
        )
        rendered = " ; ".join(
            f"{action} -> {node.state_name(target)}" for action, target in moves
        )
        lines.append(f"{node.state_name(state)} :: {rendered}")
        for _action, target in moves:
            if target not in seen:
                if len(seen) >= limit:
                    raise InvalidProcessError(
                        f"canonical rendering exceeded {limit} states"
                    )
                seen.add(target)
                queue.append(target)
    return ("\n".join(lines) + "\n").encode("utf-8")
