"""repro.explore -- on-the-fly exploration of implicit and composed state spaces.

The "direct product of states" semantics of Section 6's CCS operators is
where state explosion lives: a system of ``k`` parallel components can have
exponentially many product states, and the eager pipeline materialises every
one of them before any solver runs.  This layer sits between
:mod:`repro.core` and :mod:`repro.engine` and makes the product *implicit*:

* :class:`ImplicitLTS` -- a state space given by an initial state and a
  successor function, with adapters for eager FSPs (:class:`FSPAdapter`)
  and direct SOS exploration of CCS terms (:class:`CCSAdapter`);
* lazy products and operators (:class:`LazyCCSProduct`,
  :class:`LazyInterleavingProduct`, :class:`LazySynchronousProduct`,
  :class:`LazyRestriction`, :class:`LazyHiding`, :class:`LazyRelabeling`)
  mirroring :mod:`repro.core.composition` move for move;
* :func:`check_implicit` -- on-the-fly strong / observational equivalence
  (bounded-game deepening plus assumption-set depth-first search), returning
  early with a verified distinguishing trace on inequivalence;
* state-space reductions (:mod:`repro.explore.reduce`) -- tau-confluence
  partial-order reduction (:class:`ConfluenceReducer`), canonical-form
  symmetry quotients (:class:`SymmetryReducer` over declared
  :class:`RotationSymmetry` / :class:`FullPermutationSymmetry`), and
  hash-compacted visited frontiers (:class:`Fingerprinter`), threaded
  through the checker and the protocol verbs as
  ``reduction="none"|"por"|"symmetry"|"full"``;
* :func:`materialize` / :func:`materialize_lts` / :func:`reachable_stats`
  -- bounded bridges back to the eager world;
* :class:`SystemSpec` composition trees with three routes
  (:func:`build_implicit`, :func:`compose_eager`,
  :func:`minimize_compositionally`).

A composed system can be decided without ever building its product:

>>> from repro.core.fsp import from_transitions
>>> from repro.explore import LazyInterleavingProduct, check_implicit
>>> ping = from_transitions([("i", "ping", "i")], start="i", all_accepting=True)
>>> pong = from_transitions([("o", "pong", "o")], start="o", all_accepting=True)
>>> good = LazyInterleavingProduct(ping, pong)
>>> bad = LazyInterleavingProduct(ping, from_transitions(
...     [("o", "pong", "x")], start="o", all_accepting=True))
>>> check_implicit(good, good, "strong").equivalent
True
>>> result = check_implicit(good, bad, "strong")
>>> result.equivalent, result.trace_verified
(False, True)

and the lazy product materialises to exactly the eager construction:

>>> from repro.core.composition import interleaving_product
>>> from repro.explore import materialize
>>> materialize(good) == interleaving_product(ping, pong)
True
"""

from repro.explore.implicit import (
    CCSAdapter,
    ExplorationStats,
    FSPAdapter,
    ImplicitLTS,
    as_implicit,
    materialize,
    materialize_lts,
    reachable_stats,
)
from repro.explore.onthefly import ExploreResult, check_implicit, verify_trace
from repro.explore.reduce import (
    FRONTIERS,
    REDUCTIONS,
    ConfluenceReducer,
    Fingerprinter,
    FullPermutationSymmetry,
    RotationSymmetry,
    SymmetryReducer,
    annotate_symmetry,
    canonical_bytes,
    declared_symmetry,
    normalize_frontier,
    normalize_reduction,
    prepare_operand,
    structural_state_estimate,
)
from repro.explore.products import (
    LazyCCSProduct,
    LazyHiding,
    LazyInterleavingProduct,
    LazyRelabeling,
    LazyRestriction,
    LazySynchronousProduct,
)
from repro.explore.system import (
    HideSpec,
    LeafSpec,
    ProductSpec,
    RelabelSpec,
    RestrictSpec,
    SystemSpec,
    TermSpec,
    build_implicit,
    compose_eager,
    minimize_compositionally,
    spec_from_document,
    spec_to_document,
)

__all__ = [
    "CCSAdapter",
    "ConfluenceReducer",
    "ExplorationStats",
    "ExploreResult",
    "FRONTIERS",
    "FSPAdapter",
    "Fingerprinter",
    "FullPermutationSymmetry",
    "HideSpec",
    "ImplicitLTS",
    "LazyCCSProduct",
    "LazyHiding",
    "LazyInterleavingProduct",
    "LazyRelabeling",
    "LazyRestriction",
    "LazySynchronousProduct",
    "LeafSpec",
    "ProductSpec",
    "REDUCTIONS",
    "RelabelSpec",
    "RestrictSpec",
    "RotationSymmetry",
    "SymmetryReducer",
    "SystemSpec",
    "TermSpec",
    "annotate_symmetry",
    "as_implicit",
    "build_implicit",
    "canonical_bytes",
    "check_implicit",
    "compose_eager",
    "declared_symmetry",
    "materialize",
    "materialize_lts",
    "minimize_compositionally",
    "normalize_frontier",
    "normalize_reduction",
    "prepare_operand",
    "reachable_stats",
    "spec_from_document",
    "spec_to_document",
    "structural_state_estimate",
    "verify_trace",
]
