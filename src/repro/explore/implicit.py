"""Implicit labelled transition systems: state spaces defined by successor functions.

Section 6 of Kanellakis-Smolka extends star expressions with CCS composition,
whose "direct product of states" semantics is exactly where state explosion
lives: the reachable product of ``k`` components can be exponentially larger
than any component.  Every eager route in the library (``core.composition``,
``ccs.semantics.compile_to_fsp``) materialises that product *before* an
equivalence question is even asked.

An :class:`ImplicitLTS` instead describes a state space by an initial state
and a successor function; states are arbitrary hashable values and nothing is
enumerated until somebody asks.  The on-the-fly checker
(:mod:`repro.explore.onthefly`) and the lazy products
(:mod:`repro.explore.products`) work directly on this interface, so a system
with :math:`10^6` product states can be decided while touching a few hundred
of them.

Two bridge adapters connect the implicit world to the existing one:

* :class:`FSPAdapter` views an eager :class:`~repro.core.fsp.FSP` as an
  implicit system (its states are already explicit, but the interface is
  uniform);
* :class:`CCSAdapter` explores a CCS term by direct SOS derivatives
  (:func:`repro.ccs.semantics.derivatives`) -- no ``compile_to_fsp``, no
  up-front state bound.

:func:`materialize` walks the reachable part of an implicit system (bounded
by ``limit``) and emits an ordinary :class:`~repro.core.fsp.FSP`, so every
existing solver, notion and serialisation format applies to explored
systems; :func:`materialize_lts` continues into the integer CSR kernel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass

from repro.ccs.semantics import derivatives
from repro.ccs.syntax import TAU_ACTION, Definitions, Process as CCSTerm
from repro.core.errors import InvalidProcessError, StateSpaceLimitError
from repro.core.fsp import ACCEPT, FSP, TAU
from repro.core.lts import LTS

State = Hashable
Move = tuple[str, State]


class ImplicitLTS(ABC):
    """A state space given by an initial state and a successor function.

    States are arbitrary hashable values private to the implementation
    (strings for :class:`FSPAdapter`, terms for :class:`CCSAdapter`, pairs
    for the lazy products).  An implementation provides:

    * :meth:`initial` -- the start state;
    * :meth:`successors` -- the outgoing ``(action, state)`` moves, where the
      action is an observable label or :data:`~repro.core.fsp.TAU`;
    * :meth:`extension` -- the state's extension set (Definition 2.1.1's
      ``E(q)``; acceptance in the standard model);
    * :meth:`state_name` -- a human-readable name used when materialising.

    :attr:`alphabet` is the declared observable alphabet, or None when it is
    only known a posteriori (CCS terms); :attr:`variables` is the variable
    set ``V``.
    """

    @abstractmethod
    def initial(self) -> State:
        """The start state."""

    @abstractmethod
    def successors(self, state: State) -> Iterable[Move]:
        """The outgoing ``(action, successor)`` moves of ``state``."""

    def extension(self, state: State) -> frozenset[str]:
        """``E(q)`` -- the extension set of ``state`` (empty by default)."""
        return frozenset()

    def state_name(self, state: State) -> str:
        """The name ``state`` receives in a materialised FSP."""
        return str(state)

    @property
    def alphabet(self) -> frozenset[str] | None:
        """The observable alphabet, or None when only discoverable by exploration."""
        return None

    @property
    def variables(self) -> frozenset[str]:
        """The variable set ``V`` of the materialised process."""
        return frozenset({ACCEPT})


class FSPAdapter(ImplicitLTS):
    """An eager :class:`~repro.core.fsp.FSP` viewed through the implicit interface."""

    __slots__ = ("fsp",)

    def __init__(self, fsp: FSP) -> None:
        if not isinstance(fsp, FSP):
            raise InvalidProcessError(f"FSPAdapter wraps an FSP, not {type(fsp).__name__}")
        self.fsp = fsp

    def initial(self) -> str:
        return self.fsp.start

    def successors(self, state: str) -> Iterator[Move]:
        return iter(self.fsp.transitions_from(state))

    def extension(self, state: str) -> frozenset[str]:
        return self.fsp.extension(state)

    def state_name(self, state: str) -> str:
        return state

    @property
    def alphabet(self) -> frozenset[str]:
        return self.fsp.alphabet

    @property
    def variables(self) -> frozenset[str]:
        return self.fsp.variables

    def __repr__(self) -> str:
        return f"FSPAdapter({self.fsp!r})"


class CCSAdapter(ImplicitLTS):
    """Direct SOS exploration of a CCS term -- no ``compile_to_fsp``.

    States are the reachable terms themselves; each successor query runs the
    SOS rules (:func:`repro.ccs.semantics.derivatives`) on demand.  Matching
    the convention of :func:`~repro.ccs.semantics.compile_to_fsp`, every
    state is accepting (CCS terms carry no acceptance information), state
    names are the canonical term strings, and the alphabet defaults to the
    actions actually seen during exploration (pass ``alphabet`` to pin it).

    Recursion plus parallel composition can generate *infinitely* many
    distinct terms (``A := a.(A | A)``); ``max_states`` bounds how many the
    adapter will ever expand, so any exploration driven through it -- a
    bounded materialise, the on-the-fly checker, a service worker --
    terminates with :class:`~repro.core.errors.StateSpaceLimitError` instead
    of running away.
    """

    __slots__ = ("term", "definitions", "max_states", "_alphabet", "_expanded")

    def __init__(
        self,
        term: CCSTerm,
        definitions: Definitions | None = None,
        alphabet: Iterable[str] | None = None,
        max_states: int = 10_000,
    ) -> None:
        self.term = term
        self.definitions = definitions if definitions is not None else Definitions()
        self.max_states = max_states
        self._alphabet = frozenset(alphabet) if alphabet is not None else None
        self._expanded: set[CCSTerm] = set()

    def initial(self) -> CCSTerm:
        return self.term

    def successors(self, state: CCSTerm) -> Iterator[Move]:
        if state not in self._expanded:
            if len(self._expanded) >= self.max_states:
                raise StateSpaceLimitError(
                    f"CCS term exploration exceeded {self.max_states} states"
                )
            self._expanded.add(state)
        for action, successor in derivatives(state, self.definitions):
            yield (TAU if action == TAU_ACTION else action), successor

    def extension(self, state: CCSTerm) -> frozenset[str]:
        return frozenset({ACCEPT})

    def state_name(self, state: CCSTerm) -> str:
        return str(state)

    @property
    def alphabet(self) -> frozenset[str] | None:
        return self._alphabet

    def __repr__(self) -> str:
        return f"CCSAdapter({str(self.term)!r})"


def as_implicit(source) -> ImplicitLTS:
    """Coerce a source to an implicit system (FSPs are wrapped, implicits pass through)."""
    if isinstance(source, ImplicitLTS):
        return source
    if isinstance(source, FSP):
        return FSPAdapter(source)
    raise InvalidProcessError(
        f"cannot view a {type(source).__name__} as an implicit LTS; "
        "expected an ImplicitLTS or FSP"
    )


@dataclass(frozen=True)
class ExplorationStats:
    """What a bounded reachability sweep saw.

    ``complete`` is False when the sweep stopped at ``limit`` states, in
    which case ``states`` / ``transitions`` are lower bounds on the true
    reachable counts.
    """

    states: int
    transitions: int
    complete: bool


def reachable_stats(source, limit: int | None = None) -> ExplorationStats:
    """Count reachable states and transitions without building an FSP.

    >>> from repro.core.fsp import from_transitions
    >>> ring = from_transitions([("a", "go", "b"), ("b", "go", "a")], start="a")
    >>> reachable_stats(ring)
    ExplorationStats(states=2, transitions=2, complete=True)
    """
    node = as_implicit(source)
    start = node.initial()
    seen = {start}
    queue: deque[State] = deque([start])
    transitions = 0
    while queue:
        state = queue.popleft()
        for _action, target in node.successors(state):
            transitions += 1
            if target not in seen:
                if limit is not None and len(seen) >= limit:
                    return ExplorationStats(len(seen), transitions, complete=False)
                seen.add(target)
                queue.append(target)
    return ExplorationStats(len(seen), transitions, complete=True)


def materialize(
    source,
    limit: int | None = None,
    *,
    on_limit: str = "raise",
) -> FSP:
    """Explore the reachable part of an implicit system into an eager FSP.

    Parameters
    ----------
    source:
        An :class:`ImplicitLTS` (or FSP, returned via the identity sweep).
    limit:
        Bound on the number of explored states.  Exceeding it raises
        :class:`~repro.core.errors.StateSpaceLimitError` (like
        ``compile_to_fsp``) unless ``on_limit="truncate"``.
    on_limit:
        ``"raise"`` (default) or ``"truncate"``: truncation keeps the
        explored prefix and drops transitions into unexplored states, which
        *under-approximates* the behaviour -- only use it for inspection.

    The materialised process uses :meth:`ImplicitLTS.state_name` for state
    names (distinct states mapping to one name is rejected -- a name
    collision would silently merge behaviours) and the declared alphabet,
    defaulting to the observable actions actually seen.
    """
    if on_limit not in ("raise", "truncate"):
        raise ValueError(f"on_limit must be 'raise' or 'truncate', not {on_limit!r}")
    node = as_implicit(source)
    start = node.initial()
    names: dict[State, str] = {start: node.state_name(start)}
    owners: dict[str, State] = {names[start]: start}
    queue: deque[State] = deque([start])
    arcs: list[tuple[State, str, State]] = []
    truncated = False
    while queue:
        state = queue.popleft()
        for action, target in node.successors(state):
            if target not in names:
                if limit is not None and len(names) >= limit:
                    if on_limit == "raise":
                        raise StateSpaceLimitError(
                            f"implicit exploration exceeded {limit} states"
                        )
                    truncated = True
                    continue
                name = node.state_name(target)
                previous = owners.setdefault(name, target)
                if previous != target:
                    raise InvalidProcessError(
                        f"state-name collision while materialising: {name!r} names "
                        f"two distinct states"
                    )
                names[target] = name
                queue.append(target)
            arcs.append((state, action, target))
    transitions = {
        (names[src], action, names[dst])
        for src, action, dst in arcs
        if not (truncated and dst not in names)
    }
    used = {action for _src, action, _dst in transitions if action != TAU}
    declared = node.alphabet
    alphabet = used if declared is None else set(declared) | used
    return FSP(
        states=set(names.values()),
        start=names[start],
        alphabet=alphabet,
        transitions=transitions,
        variables=node.variables,
        extensions=[
            (name, variable) for state, name in names.items() for variable in node.extension(state)
        ],
    )


def materialize_lts(source, limit: int | None = None) -> LTS:
    """Materialise into the integer CSR kernel (tau kept as one more action)."""
    return LTS.from_fsp(materialize(source, limit=limit), include_tau=True)
