"""Composition specs: one description, three routes (lazy, eager, compositional).

A :class:`SystemSpec` is a small AST describing a composed system -- leaves
are processes (eager FSPs or CCS terms), internal nodes are the Section 6
operators (CCS composition, interleaving, synchronous product, restriction,
hiding, relabelling).  One spec value drives all three ways the library can
handle a composed system:

* :func:`build_implicit` -- the *lazy* route: an
  :class:`~repro.explore.implicit.ImplicitLTS` whose states materialise only
  as the on-the-fly checker touches them;
* :func:`compose_eager` -- the *eager* route: the classic
  :mod:`repro.core.composition` constructions, building the full product;
* :func:`minimize_compositionally` -- minimise each component under
  observational equivalence *before* composing, re-minimising after every
  operator.  Observational equivalence is a congruence for all the spec
  operators (parallel composition, restriction, hiding, relabelling -- the
  classic caveat about ``+`` does not arise because choice only occurs
  inside leaves), so the result is observationally equivalent to the eager
  composition while the intermediate products stay small.

Specs also have a JSON document form (:func:`spec_from_document` /
:func:`spec_to_document`) used by the ``explore`` CLI subcommand and by the
service when a manifest requests the lazy path; leaf resolution (files,
inline processes, store digests) is delegated to the caller.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.semantics import compile_to_fsp
from repro.ccs.syntax import Definitions, Process as CCSTerm
from repro.core import composition
from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP
from repro.equivalence.minimize import minimize_observational
from repro.explore.implicit import CCSAdapter, FSPAdapter, ImplicitLTS
from repro.explore.products import (
    LazyCCSProduct,
    LazyHiding,
    LazyInterleavingProduct,
    LazyRelabeling,
    LazyRestriction,
    LazySynchronousProduct,
)
from repro.partition import generalized as _generalized
from repro.partition.generalized import Solver
from repro.utils.serialization import from_dict, to_dict

__all__ = [
    "HideSpec",
    "LeafSpec",
    "ProductSpec",
    "RelabelSpec",
    "RestrictSpec",
    "SystemSpec",
    "TermSpec",
    "build_implicit",
    "compose_eager",
    "minimize_compositionally",
    "spec_from_document",
    "spec_to_document",
]


class SystemSpec:
    """Base class of composition-spec nodes (see the module docstring)."""

    def describe(self) -> str:
        """A compact one-line rendering of the composition shape."""
        raise NotImplementedError


@dataclass(frozen=True)
class LeafSpec(SystemSpec):
    """A component given directly as an eager FSP."""

    fsp: FSP
    label: str = ""

    def describe(self) -> str:
        return self.label or f"<{self.fsp.num_states} states>"


@dataclass
class TermSpec(SystemSpec):
    """A component given as a CCS term, explored by direct SOS derivatives."""

    term: CCSTerm
    definitions: Definitions = field(default_factory=Definitions)
    max_states: int = 10_000

    def describe(self) -> str:
        return str(self.term)


#: eager constructor and default extension mode per product operator.
_PRODUCT_OPS = {
    "ccs": (composition.ccs_composition, "union"),
    "interleave": (composition.interleaving_product, "union"),
    "sync": (composition.synchronous_product, "intersection"),
}

_LAZY_PRODUCTS = {
    "ccs": LazyCCSProduct,
    "interleave": LazyInterleavingProduct,
    "sync": LazySynchronousProduct,
}


@dataclass
class ProductSpec(SystemSpec):
    """A binary product: ``op`` is ``"ccs"``, ``"interleave"`` or ``"sync"``."""

    op: str
    left: SystemSpec
    right: SystemSpec
    extension_mode: str | None = None

    def __post_init__(self) -> None:
        if self.op not in _PRODUCT_OPS:
            raise InvalidProcessError(
                f"unknown product operator {self.op!r}; known: {sorted(_PRODUCT_OPS)}"
            )

    @property
    def mode(self) -> str:
        return self.extension_mode or _PRODUCT_OPS[self.op][1]

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


@dataclass
class RestrictSpec(SystemSpec):
    """CCS restriction of the listed channels (and their co-actions)."""

    of: SystemSpec
    channels: frozenset[str]

    def describe(self) -> str:
        return f"({self.of.describe()} \\ {{{', '.join(sorted(self.channels))}}})"


@dataclass
class HideSpec(SystemSpec):
    """Hiding: the listed channels become tau moves."""

    of: SystemSpec
    channels: frozenset[str]

    def describe(self) -> str:
        return f"hide({self.of.describe()}, {{{', '.join(sorted(self.channels))}}})"


@dataclass
class RelabelSpec(SystemSpec):
    """Relabelling of observable channels (co-actions follow automatically)."""

    of: SystemSpec
    mapping: dict[str, str]

    def describe(self) -> str:
        inner = ", ".join(f"{new}/{old}" for old, new in sorted(self.mapping.items()))
        return f"({self.of.describe()}[{inner}])"


# ----------------------------------------------------------------------
# the three routes
# ----------------------------------------------------------------------
def build_implicit(spec: SystemSpec | FSP | ImplicitLTS) -> ImplicitLTS:
    """The lazy route: an implicit system over the spec, nothing materialised."""
    if isinstance(spec, ImplicitLTS):
        return spec
    if isinstance(spec, FSP):
        return FSPAdapter(spec)
    if isinstance(spec, LeafSpec):
        return FSPAdapter(spec.fsp)
    if isinstance(spec, TermSpec):
        return CCSAdapter(spec.term, spec.definitions, max_states=spec.max_states)
    if isinstance(spec, ProductSpec):
        factory = _LAZY_PRODUCTS[spec.op]
        return factory(build_implicit(spec.left), build_implicit(spec.right), spec.mode)
    if isinstance(spec, RestrictSpec):
        return LazyRestriction(build_implicit(spec.of), spec.channels)
    if isinstance(spec, HideSpec):
        return LazyHiding(build_implicit(spec.of), spec.channels)
    if isinstance(spec, RelabelSpec):
        return LazyRelabeling(build_implicit(spec.of), spec.mapping)
    raise InvalidProcessError(f"not a system spec: {type(spec).__name__}")


def compose_eager(spec: SystemSpec | FSP) -> FSP:
    """The eager route: materialise the full composition bottom-up."""
    if isinstance(spec, FSP):
        return spec
    if isinstance(spec, LeafSpec):
        return spec.fsp
    if isinstance(spec, TermSpec):
        return compile_to_fsp(spec.term, spec.definitions, max_states=spec.max_states)
    if isinstance(spec, ProductSpec):
        build = _PRODUCT_OPS[spec.op][0]
        return build(compose_eager(spec.left), compose_eager(spec.right), spec.mode)
    if isinstance(spec, RestrictSpec):
        return composition.restrict(compose_eager(spec.of), spec.channels)
    if isinstance(spec, HideSpec):
        return composition.hide(compose_eager(spec.of), spec.channels)
    if isinstance(spec, RelabelSpec):
        return composition.relabel(compose_eager(spec.of), spec.mapping)
    raise InvalidProcessError(f"not a system spec: {type(spec).__name__}")


#: State count at or above which ``backend="auto"`` dispatches an intermediate
#: quotient to the vectorized numpy kernel.  Below it the Python worklist
#: solvers win on constant factors; above it the kernel's saturation and
#: refinement amortise their array setup (the crossover sits near a few
#: hundred states on the benchmark families).  The canonical value lives in
#: :mod:`repro.partition.generalized` (the engine-wide ``"auto"`` dispatch
#: uses it too); this module-level rebinding stays patchable independently.
VECTOR_STATE_THRESHOLD = _generalized.VECTOR_STATE_THRESHOLD


def _partition_backend(num_states: int, backend: str) -> str:
    """Resolve the partition backend for one intermediate quotient.

    ``"auto"`` picks ``"vector"`` when numpy is importable and the process
    has at least :data:`VECTOR_STATE_THRESHOLD` states, else ``"python"``;
    explicit backend names pass through unchanged.
    """
    if backend != "auto":
        return backend
    from repro.utils.matrices import HAVE_NUMPY

    if HAVE_NUMPY and num_states >= VECTOR_STATE_THRESHOLD:
        return "vector"
    return "python"


def minimize_compositionally(
    spec: SystemSpec | FSP,
    method: Solver | str = Solver.PAIGE_TARJAN,
    backend: str = "auto",
) -> FSP:
    """Minimise components under observational equivalence *before* composing.

    Every leaf is replaced by its observational quotient and every operator
    application is re-quotiented, so no intermediate ever exceeds (minimised
    component) x (minimised component).  The result is observationally
    equivalent to ``compose_eager(spec)`` -- observational equivalence is a
    congruence for the spec operators -- and is itself minimal.  The
    benchmark harness cross-checks this against the eager
    minimise-after-compose route on every scenario family.

    ``backend`` selects the partition engine per intermediate quotient:
    ``"python"`` or ``"vector"`` force one engine everywhere, while the
    default ``"auto"`` routes each quotient by state count -- intermediates
    with at least :data:`VECTOR_STATE_THRESHOLD` states take the vectorized
    kernel when numpy is available, small ones stay on the Python solvers.
    """

    def shrink(process: FSP) -> FSP:
        return minimize_observational(
            process,
            method=method,
            backend=_partition_backend(process.num_states, backend),
        )

    def reduce(node: SystemSpec | FSP) -> FSP:
        if isinstance(node, (FSP, LeafSpec, TermSpec)):
            return shrink(compose_eager(node))
        if isinstance(node, ProductSpec):
            build = _PRODUCT_OPS[node.op][0]
            product = build(reduce(node.left), reduce(node.right), node.mode)
            return shrink(product)
        if isinstance(node, RestrictSpec):
            return shrink(composition.restrict(reduce(node.of), node.channels))
        if isinstance(node, HideSpec):
            return shrink(composition.hide(reduce(node.of), node.channels))
        if isinstance(node, RelabelSpec):
            return shrink(composition.relabel(reduce(node.of), node.mapping))
        raise InvalidProcessError(f"not a system spec: {type(node).__name__}")

    return reduce(spec)


# ----------------------------------------------------------------------
# JSON documents
# ----------------------------------------------------------------------
def _default_leaf_resolver(document: dict[str, Any]) -> FSP:
    if "process" in document:
        return from_dict(document["process"])
    raise InvalidProcessError(
        "this context resolves only inline {'process': ...} leaves; "
        f"got keys {sorted(document)}"
    )


def spec_from_document(
    document: dict[str, Any],
    resolve_leaf: Callable[[dict[str, Any]], FSP] | None = None,
) -> SystemSpec:
    """Parse a JSON system document into a :class:`SystemSpec`.

    Grammar (one object per node)::

        {"op": "ccs" | "interleave" | "sync",
         "left": <node>, "right": <node>, "extension_mode": "union"?}
        {"op": "restrict" | "hide", "of": <node>, "channels": [...]}
        {"op": "relabel", "of": <node>, "mapping": {"old": "new", ...}}
        {"term": "<ccs term>", "definitions": "<Name := term lines>"?,
         "max_states": 10000?}
        any other object                  -- a process leaf, handed to
                                             ``resolve_leaf``

    ``resolve_leaf`` turns leaf references into FSPs; the CLI resolves
    ``{"file": ...}`` against the document's directory, the service resolves
    ``{"digest": ...}`` against its store, and the default accepts inline
    ``{"process": ...}`` encodings only.
    """
    resolve = resolve_leaf if resolve_leaf is not None else _default_leaf_resolver
    if not isinstance(document, dict):
        raise InvalidProcessError(
            f"a system node must be a JSON object, not {type(document).__name__}"
        )
    if "term" in document:
        definitions = document.get("definitions")
        parsed = (
            parse_definitions(definitions)
            if isinstance(definitions, str) and definitions.strip()
            else Definitions()
        )
        try:
            max_states = int(document.get("max_states", 10_000))
        except (TypeError, ValueError):
            raise InvalidProcessError(
                f"'max_states' must be an integer, got {document.get('max_states')!r}"
            ) from None
        return TermSpec(
            term=parse_process(document["term"]),
            definitions=parsed,
            max_states=max_states,
        )
    op = document.get("op")
    if op is None:
        return LeafSpec(resolve(document), label=str(document.get("label", "")))
    if op in _PRODUCT_OPS:
        for side in ("left", "right"):
            if side not in document:
                raise InvalidProcessError(f"product node {op!r} is missing {side!r}")
        return ProductSpec(
            op=op,
            left=spec_from_document(document["left"], resolve),
            right=spec_from_document(document["right"], resolve),
            extension_mode=document.get("extension_mode"),
        )
    if op in ("restrict", "hide"):
        channels = document.get("channels")
        if not isinstance(channels, list):
            raise InvalidProcessError(f"{op!r} node needs a 'channels' list")
        inner = spec_from_document(_require_of(document, op), resolve)
        cls = RestrictSpec if op == "restrict" else HideSpec
        return cls(of=inner, channels=frozenset(str(c) for c in channels))
    if op == "relabel":
        mapping = document.get("mapping")
        if not isinstance(mapping, dict):
            raise InvalidProcessError("'relabel' node needs a 'mapping' object")
        return RelabelSpec(
            of=spec_from_document(_require_of(document, op), resolve),
            mapping={str(old): str(new) for old, new in mapping.items()},
        )
    raise InvalidProcessError(
        f"unknown system operator {op!r}; known: "
        f"{sorted([*_PRODUCT_OPS, 'restrict', 'hide', 'relabel'])}"
    )


def _require_of(document: dict[str, Any], op: str) -> dict[str, Any]:
    inner = document.get("of")
    if inner is None:
        raise InvalidProcessError(f"{op!r} node is missing 'of'")
    return inner


def spec_to_document(spec: SystemSpec | FSP) -> dict[str, Any]:
    """Render a spec as a JSON document (FSP leaves become inline processes)."""
    if isinstance(spec, FSP):
        return {"process": to_dict(spec)}
    if isinstance(spec, LeafSpec):
        document: dict[str, Any] = {"process": to_dict(spec.fsp)}
        if spec.label:
            document["label"] = spec.label
        return document
    if isinstance(spec, TermSpec):
        document = {"term": str(spec.term), "max_states": spec.max_states}
        if spec.definitions.bindings:
            document["definitions"] = "\n".join(
                f"{name} := {term}" for name, term in sorted(spec.definitions.bindings.items())
            )
        return document
    if isinstance(spec, ProductSpec):
        return {
            "op": spec.op,
            "left": spec_to_document(spec.left),
            "right": spec_to_document(spec.right),
            "extension_mode": spec.mode,
        }
    if isinstance(spec, RestrictSpec):
        return {
            "op": "restrict",
            "of": spec_to_document(spec.of),
            "channels": sorted(spec.channels),
        }
    if isinstance(spec, HideSpec):
        return {"op": "hide", "of": spec_to_document(spec.of), "channels": sorted(spec.channels)}
    if isinstance(spec, RelabelSpec):
        return {"op": "relabel", "of": spec_to_document(spec.of), "mapping": dict(spec.mapping)}
    raise InvalidProcessError(f"not a system spec: {type(spec).__name__}")
