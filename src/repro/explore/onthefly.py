"""On-the-fly equivalence checking over implicit state spaces.

The eager pipeline (materialise, saturate, refine) must build the *whole*
reachable space before it answers; for composed systems that is exactly the
product explosion Section 6 warns about.  This module decides strong and
observational equivalence by exploring the *pair* space of two implicit
systems lazily, in the local / on-the-fly style of Fernandez & Mounier:

1. **Bounded-game deepening** -- the bisimulation game is played to depth
   ``k`` for increasing ``k`` (the ``approx_k`` chain of Definition 2.2.1
   made operational).  A challenger win at any depth is a definite
   inequivalence, found after touching only the pairs within ``k`` steps of
   the roots -- a vanishing fraction of a large product.  A game tree that
   closes without ever hitting the depth cutoff is a definite equivalence.
2. **Depth-first search with assumption sets** -- pairs on (or committed by)
   the search are assumed equivalent; each challenger move must be matched
   by some defender response whose sub-search succeeds, with the assumption
   trail rolled back on failure.  Assumptions only ever help *prove*
   equivalence (the coinductive reading of the greatest fixed point), so a
   returned inequivalence is genuine, and on success the surviving
   assumption set is itself a bisimulation.

For the observational notion the challenger plays strong moves and the
defender answers with weak ones (``=a=>`` via memoised tau-closures), with
extension sets compared pairwise -- the asymmetric formulation of weak
bisimulation, equivalent to strong equivalence of the saturated systems of
Theorem 4.1(a).

On inequivalence the checker returns the challenger's action path and
*verifies* it: the path is replayed macro-state by macro-state on both
systems, and when it is a genuine distinguishing trace (one side admits it,
or the reachable extension profiles after it differ) the result is marked
``trace_verified`` -- a certificate checkable without trusting the search.
Branching-only distinctions (``a.(b+c)`` vs ``a.b + a.c``) keep the path as
an unverified explanation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import StateSpaceLimitError
from repro.core.fsp import TAU
from repro.explore.implicit import ImplicitLTS, State, as_implicit
from repro.explore.reduce import (
    Fingerprinter,
    normalize_frontier,
    normalize_reduction,
    prepare_operand,
)

__all__ = ["ExploreResult", "check_implicit", "verify_trace"]

#: Depth schedule of the bounded-game phase.  Shallow differences -- the
#: common case for buggy compositions -- are found within the first few
#: levels while the search still hugs the roots.
_DEEPENING = (1, 2, 3, 4, 6, 8, 12)


@dataclass(frozen=True)
class ExploreResult:
    """The outcome of one on-the-fly check.

    ``trace`` is the challenger's action path on inequivalence (None when
    equivalent); ``trace_verified`` records whether the replay confirmed it
    as a genuine distinguishing trace, and ``trace_in_left`` which side
    admits it (None when verification failed or was vacuous).
    ``pairs_visited`` counts distinct product pairs touched --
    the quantity the benchmark gate compares against the reachable product
    size.  ``left_states`` / ``right_states`` count component states
    explored, ``route`` names the phase that produced the answer, and
    ``reduction`` records the state-space reduction mode the search ran
    under (see :mod:`repro.explore.reduce`).
    """

    equivalent: bool
    notion: str
    trace: tuple[str, ...] | None
    trace_verified: bool
    trace_in_left: bool | None
    pairs_visited: int
    left_states: int
    right_states: int
    route: str
    reduction: str = "none"

    def __bool__(self) -> bool:
        return self.equivalent

    def describe(self) -> str:
        answer = "equivalent" if self.equivalent else "NOT equivalent"
        line = f"{answer} under {self.notion} equivalence ({self.route}, "
        line += f"{self.pairs_visited} pairs visited)"
        if self.trace is not None:
            rendered = ".".join(self.trace) if self.trace else "ε"
            status = "verified distinguishing trace" if self.trace_verified else "witness path"
            line += f"; {status}: {rendered!r}"
        return line


class _Explorer:
    """Memoised successor / tau-closure / weak-move queries over one system."""

    __slots__ = ("node", "_succ", "_ext", "_closure", "_weak")

    def __init__(self, node: ImplicitLTS) -> None:
        self.node = node
        self._succ: dict[State, tuple[tuple[str, State], ...]] = {}
        self._ext: dict[State, frozenset[str]] = {}
        self._closure: dict[State, frozenset[State]] = {}
        self._weak: dict[tuple[State, str], frozenset[State]] = {}

    def successors(self, state: State) -> tuple[tuple[str, State], ...]:
        moves = self._succ.get(state)
        if moves is None:
            moves = tuple(self.node.successors(state))
            self._succ[state] = moves
        return moves

    def extension(self, state: State) -> frozenset[str]:
        ext = self._ext.get(state)
        if ext is None:
            ext = self.node.extension(state)
            self._ext[state] = ext
        return ext

    def closure(self, state: State) -> frozenset[State]:
        """The tau-closure of ``state`` (always contains ``state``)."""
        cached = self._closure.get(state)
        if cached is None:
            seen = {state}
            frontier = [state]
            while frontier:
                current = frontier.pop()
                for action, target in self.successors(current):
                    if action == TAU and target not in seen:
                        seen.add(target)
                        frontier.append(target)
            cached = frozenset(seen)
            self._closure[state] = cached
        return cached

    def weak_successors(self, state: State, action: str) -> frozenset[State]:
        """``{q : state =action=> q}`` -- closure, one strong step, closure."""
        key = (state, action)
        cached = self._weak.get(key)
        if cached is None:
            out: set[State] = set()
            for source in self.closure(state):
                for label, target in self.successors(source):
                    if label == action:
                        out |= self.closure(target)
            cached = frozenset(out)
            self._weak[key] = cached
        return cached

    def responses(self, state: State, action: str, weak: bool) -> tuple[State, ...]:
        """Defender responses to a challenger ``action``-move against ``state``."""
        if not weak:
            return tuple(t for a, t in self.successors(state) if a == action)
        if action == TAU:
            return tuple(self.closure(state))
        return tuple(self.weak_successors(state, action))

    @property
    def states_explored(self) -> int:
        return len(self._succ)


class _Budget(Exception):
    """Internal signal: the pair-visit budget was exhausted."""


def _identity(pair):
    return pair


class _Search:
    """Shared state of one check: explorers, pair budget, game memos."""

    def __init__(
        self,
        left: _Explorer,
        right: _Explorer,
        weak: bool,
        max_pairs: int | None,
        fingerprint: Fingerprinter | None = None,
    ):
        self.left = left
        self.right = right
        self.weak = weak
        self.max_pairs = max_pairs
        #: pair -> memo key.  With a fingerprinter every pair-keyed structure
        #: stores ~128-bit ints instead of nested state tuples, which is what
        #: keeps 10^8-pair frontiers in bounded memory; the identity keeps
        #: the exact behaviour (``frontier="exact"``).
        self.key = fingerprint if fingerprint is not None else _identity
        self.visited: set = set()
        #: definite distinguishing traces per pair (a found distinction never
        #: expires, whatever depth produced it).
        self.dist: dict = {}
        #: pairs where the defender wins the *unbounded* game outright (the
        #: bounded search closed below the cutoff).
        self.indist_complete: set = set()
        #: deepest bound a pair survived without a definite answer.
        self.indist_depth: dict = {}
        #: within-round memo: the depth each pair was already expanded at in
        #: the current deepening round (reset by :meth:`new_round`).  Without
        #: it a pair reached along many paths would be re-expanded once per
        #: path, which is exponential in the depth bound.
        self.round_depth: dict = {}

    def new_round(self) -> None:
        self.round_depth.clear()

    def touch(self, key) -> None:
        if key not in self.visited:
            if self.max_pairs is not None and len(self.visited) >= self.max_pairs:
                raise _Budget()
            self.visited.add(key)

    def challenger_moves(self, p: State, q: State):
        """Both sides' strong moves: ``(from_left, action, successor)``."""
        for action, target in self.left.successors(p):
            yield True, action, target
        for action, target in self.right.successors(q):
            yield False, action, target

    def ext_mismatch(self, p: State, q: State) -> bool:
        return self.left.extension(p) != self.right.extension(q)

    # ------------------------------------------------------------------
    # phase 1: the depth-bounded game
    # ------------------------------------------------------------------
    def bounded(self, p: State, q: State, k: int) -> tuple[tuple[str, ...] | None, bool]:
        """Play the game to depth ``k``; returns ``(trace, complete)``.

        A non-None trace is a *definite* distinction (a challenger win is a
        challenger win at every larger depth).  ``complete=True`` with a
        None trace means the defender wins the unbounded game from here (no
        branch reached the cutoff), so the pair is definitely equivalent.
        """
        pair = self.key((p, q))
        known = self.dist.get(pair)
        if known is not None:
            return known, True
        if pair in self.indist_complete:
            return None, True
        if self.ext_mismatch(p, q):
            self.dist[pair] = ()
            return (), True
        if k <= self.indist_depth.get(pair, -1):
            return None, False
        if k == 0:
            # Depth exhausted -- unless the pair is mutually terminal, in
            # which case the defender has already won outright.
            if not self.left.successors(p) and not self.right.successors(q):
                self.indist_complete.add(pair)
                return None, True
            return None, False
        if k <= self.round_depth.get(pair, -1):
            # Already expanded this round at this depth or deeper (also cuts
            # cycles back into a pair currently on the expansion path)
            # without producing a distinction: nothing new below here.
            return None, False
        self.round_depth[pair] = k
        self.touch(pair)
        complete = True
        for from_left, action, mover_target in self.challenger_moves(p, q):
            defender = self.right if from_left else self.left
            against = q if from_left else p
            answers = defender.responses(against, action, self.weak)
            if not answers:
                trace = (action,)
                self.dist[pair] = trace
                return trace, True
            all_refuted = True
            move_complete = True
            first_sub: tuple[str, ...] | None = None
            for answer in answers:
                sub_pair = (mover_target, answer) if from_left else (answer, mover_target)
                sub, sub_complete = self.bounded(sub_pair[0], sub_pair[1], k - 1)
                if sub is None:
                    all_refuted = False
                    move_complete = sub_complete
                    break
                if first_sub is None:
                    first_sub = sub
            if all_refuted:
                trace = (action,) + (first_sub or ())
                self.dist[pair] = trace
                return trace, True
            complete = complete and move_complete
        if complete:
            self.indist_complete.add(pair)
            return None, True
        if k > self.indist_depth.get(pair, -1):
            self.indist_depth[pair] = k
        return None, False

    # ------------------------------------------------------------------
    # phase 2: depth-first search with an assumption trail
    # ------------------------------------------------------------------
    def dfs(self, p0: State, q0: State) -> tuple[str, ...] | None:
        """Full decision: None means equivalent, a trace means not.

        Implemented as trampolined generators so pair-space depth is not
        limited by the Python recursion limit.  ``assumed`` holds the
        coinductive hypotheses; the trail rolls them back on failure, so a
        surviving assumption set is closed under matching -- a bisimulation.
        """
        assumed: dict = {}
        trail: list = []

        def rollback(mark: int) -> None:
            while len(trail) > mark:
                assumed.pop(trail.pop(), None)

        def visit(p: State, q: State):
            pair = self.key((p, q))
            known = self.dist.get(pair)
            if known is not None:
                return known
            if pair in assumed or pair in self.indist_complete:
                return None
            if self.ext_mismatch(p, q):
                self.dist[pair] = ()
                return ()
            self.touch(pair)
            mark = len(trail)
            assumed[pair] = True
            trail.append(pair)
            for from_left, action, mover_target in self.challenger_moves(p, q):
                defender = self.right if from_left else self.left
                against = q if from_left else p
                answers = defender.responses(against, action, self.weak)
                matched = False
                fail_trace: tuple[str, ...] | None = None
                for answer in answers:
                    sub_pair = (mover_target, answer) if from_left else (answer, mover_target)
                    sub_mark = len(trail)
                    sub = yield sub_pair
                    if sub is None:
                        matched = True
                        break
                    rollback(sub_mark)
                    if fail_trace is None:
                        fail_trace = (action,) + sub
                if not matched:
                    if fail_trace is None:
                        fail_trace = (action,)
                    rollback(mark)
                    self.dist[pair] = fail_trace
                    return fail_trace
            return None

        # Trampoline: each visit() call is a generator yielding child pairs;
        # child results are sent back in, so pair-space depth never touches
        # the Python recursion limit.
        stack = [visit(p0, q0)]
        result: tuple[str, ...] | None = None
        resume = False
        while stack:
            frame = stack[-1]
            try:
                request = frame.send(result) if resume else next(frame)
            except StopIteration as stop:
                result = stop.value
                resume = True
                stack.pop()
                continue
            stack.append(visit(request[0], request[1]))
            resume = False
        return result


def _replay_step(explorer: _Explorer, macro: frozenset, action: str, weak: bool) -> frozenset:
    if weak:
        out: set = set()
        for state in macro:
            out |= explorer.weak_successors(state, action)
        return frozenset(out)
    return frozenset(
        target
        for state in macro
        for label, target in explorer.successors(state)
        if label == action
    )


def _verify_trace(
    left: _Explorer,
    right: _Explorer,
    trace: tuple[str, ...],
    weak: bool,
) -> tuple[bool, bool | None]:
    """Replay the challenger path; returns ``(verified, admitted_by_left)``.

    The path verifies when some prefix is a genuine trace of exactly one
    side, or when the extension profiles reachable after the full path
    differ (both are behavioural differences any bisimulation preserves).
    """
    start_left = left.node.initial()
    start_right = right.node.initial()
    left_macro: frozenset = left.closure(start_left) if weak else frozenset({start_left})
    right_macro: frozenset = right.closure(start_right) if weak else frozenset({start_right})
    steps = tuple(a for a in trace if not (weak and a == TAU))
    for action in steps:
        left_macro = _replay_step(left, left_macro, action, weak)
        right_macro = _replay_step(right, right_macro, action, weak)
        if bool(left_macro) != bool(right_macro):
            return True, bool(left_macro)
    left_profiles = {left.extension(state) for state in left_macro}
    right_profiles = {right.extension(state) for state in right_macro}
    if left_profiles != right_profiles:
        # Some extension set is reachable along the path on one side only;
        # report the side owning an unmatched profile.
        return True, bool(left_profiles - right_profiles)
    return False, None


def verify_trace(
    left,
    right,
    trace,
    notion: str = "observational",
) -> tuple[bool, bool | None]:
    """Re-check a challenger path against two systems from first principles.

    Returns ``(verified, admitted_by_left)`` -- the public face of the
    replay that :func:`check_implicit` runs on its own traces, usable on any
    pair of implicit systems or FSPs (this is what
    :class:`repro.engine.verdict.TraceWitness` calls).
    """
    if notion not in ("strong", "observational"):
        raise ValueError(
            f"trace verification supports 'strong' and 'observational', not {notion!r}"
        )
    return _verify_trace(
        _Explorer(as_implicit(left)),
        _Explorer(as_implicit(right)),
        tuple(trace),
        notion == "observational",
    )


def check_implicit(
    left,
    right,
    notion: str = "observational",
    *,
    max_pairs: int | None = None,
    max_game_depth: int = _DEEPENING[-1],
    reduction: str = "none",
    frontier: str = "exact",
) -> ExploreResult:
    """Decide strong or observational equivalence of two implicit systems.

    Parameters
    ----------
    left, right:
        :class:`~repro.explore.implicit.ImplicitLTS` instances, eager FSPs
        (wrapped automatically), or :class:`~repro.explore.system.SystemSpec`
        trees -- the only operand form that can carry the symmetry
        annotations the reductions use.
    notion:
        ``"strong"`` or ``"observational"``.
    max_pairs:
        Hard bound on distinct pairs explored; exceeding it raises
        :class:`~repro.core.errors.StateSpaceLimitError` (the same contract
        as the other bounded searches in the library).
    max_game_depth:
        Cutoff of the bounded-game phase; differences deeper than this are
        still found, by the DFS phase.
    reduction:
        One of :data:`repro.explore.reduce.REDUCTIONS`.  Only reductions
        that provably preserve the requested notion are applied (see
        :func:`~repro.explore.reduce.prepare_operand`); any distinguishing
        trace found under a reduction is re-verified against the
        *unreduced* systems before it is reported.
    frontier:
        ``"exact"`` keys the visited sets by full state pairs;
        ``"compact"`` by ~128-bit fingerprints, trading an astronomically
        unlikely collision for an order of magnitude less frontier memory
        (the trace replay above doubles as the collision recheck).

    >>> from repro.core.fsp import from_transitions
    >>> spec = from_transitions([("s", "a", "s")], start="s", all_accepting=True)
    >>> impl = from_transitions([("p", "a", "q"), ("q", "a", "p")], start="p",
    ...                         all_accepting=True)
    >>> check_implicit(spec, impl, "strong").equivalent
    True
    """
    if notion not in ("strong", "observational"):
        raise ValueError(
            f"on-the-fly checking supports 'strong' and 'observational', not {notion!r}"
        )
    weak = notion == "observational"
    mode = normalize_reduction(reduction)
    compact = normalize_frontier(frontier) == "compact"
    left_explorer = _Explorer(prepare_operand(left, mode, weak=weak))
    right_explorer = _Explorer(prepare_operand(right, mode, weak=weak))
    search = _Search(
        left_explorer,
        right_explorer,
        weak,
        max_pairs,
        Fingerprinter() if compact else None,
    )
    p0 = left_explorer.node.initial()
    q0 = right_explorer.node.initial()

    def result(equivalent: bool, trace, route: str) -> ExploreResult:
        verified, in_left = (False, None)
        if trace is not None:
            if mode == "none":
                check_left, check_right = left_explorer, right_explorer
            else:
                # The definitive recheck: replay on freshly built, unreduced
                # systems, so neither a reduction bug nor a fingerprint
                # collision can certify a bogus trace.
                check_left = _Explorer(prepare_operand(left, "none"))
                check_right = _Explorer(prepare_operand(right, "none"))
            verified, in_left = _verify_trace(check_left, check_right, trace, weak)
        return ExploreResult(
            equivalent=equivalent,
            notion=notion,
            trace=trace,
            trace_verified=verified,
            trace_in_left=in_left,
            pairs_visited=len(search.visited),
            left_states=left_explorer.states_explored,
            right_states=right_explorer.states_explored,
            route=route,
            reduction=mode,
        )

    try:
        for depth in _DEEPENING:
            if depth > max_game_depth:
                break
            search.new_round()
            trace, complete = search.bounded(p0, q0, depth)
            if trace is not None:
                return result(False, trace, f"bounded-game(k={depth})")
            if complete:
                return result(True, None, f"bounded-game(k={depth})")
        trace = search.dfs(p0, q0)
    except _Budget:
        raise StateSpaceLimitError(
            f"on-the-fly exploration exceeded {max_pairs} pairs"
        ) from None
    if trace is not None:
        return result(False, trace, "dfs")
    return result(True, None, "dfs")
