"""Lazy products and operators over implicit state spaces.

These mirror the eager constructions of :mod:`repro.core.composition` --
synchronous (intersection) product, pure interleaving, CCS parallel
composition, restriction, hiding and relabelling -- but defer all work to
successor queries: a product state ``(l, r)`` exists only while somebody
holds it, and its moves are computed from the component moves on demand.

The mirroring is exact: materialising a lazy product
(:func:`repro.explore.implicit.materialize`) yields an FSP *equal* to the
eager construction on the same components (same pair-naming via
:func:`repro.core.composition.pair_name`, same alphabet and extension
combination), which is what the property tests check on random process
pairs.  The wrappers (:class:`LazyRestriction`, :class:`LazyHiding`,
:class:`LazyRelabeling`) compose freely with the products and with each
other, so an entire composition tree stays implicit end to end.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.core.actions import channel_closure, co_action
from repro.core.composition import pair_name
from repro.core.errors import InvalidProcessError
from repro.core.fsp import TAU
from repro.explore.implicit import ImplicitLTS, Move, State, as_implicit

__all__ = [
    "LazyCCSProduct",
    "LazyHiding",
    "LazyInterleavingProduct",
    "LazyRelabeling",
    "LazyRestriction",
    "LazySynchronousProduct",
]


class _LazyProduct(ImplicitLTS):
    """Shared scaffolding of the three binary products.

    Product states are ``(left_state, right_state)`` tuples; names, alphabets
    and extension sets combine exactly as in the eager constructions
    (:func:`repro.core.composition._explore_product`).
    """

    __slots__ = ("left", "right", "extension_mode")

    def __init__(self, left, right, extension_mode: str) -> None:
        self.left = as_implicit(left)
        self.right = as_implicit(right)
        if extension_mode not in ("union", "intersection"):
            raise InvalidProcessError(f"unknown extension mode {extension_mode!r}")
        self.extension_mode = extension_mode

    def initial(self) -> tuple[State, State]:
        return (self.left.initial(), self.right.initial())

    def extension(self, state: tuple[State, State]) -> frozenset[str]:
        left_ext = self.left.extension(state[0])
        right_ext = self.right.extension(state[1])
        if self.extension_mode == "union":
            return left_ext | right_ext
        return left_ext & right_ext

    def state_name(self, state: tuple[State, State]) -> str:
        return pair_name(self.left.state_name(state[0]), self.right.state_name(state[1]))

    @property
    def variables(self) -> frozenset[str]:
        return self.left.variables | self.right.variables

    def _union_alphabet(self) -> frozenset[str] | None:
        if self.left.alphabet is None or self.right.alphabet is None:
            return None
        return self.left.alphabet | self.right.alphabet

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.left!r}, {self.right!r})"


class LazySynchronousProduct(_LazyProduct):
    """The fully synchronous (intersection) product, explored lazily.

    Both components must move together on shared observable actions; tau
    moves of either side are local.  Mirrors
    :func:`repro.core.composition.synchronous_product` (default extension
    mode ``"intersection"``, the language-intersection reading of
    Section 6).  Both components must declare their alphabets -- the set of
    shared actions cannot be discovered lazily.
    """

    def __init__(self, left, right, extension_mode: str = "intersection") -> None:
        super().__init__(left, right, extension_mode)
        if self.left.alphabet is None or self.right.alphabet is None:
            raise InvalidProcessError(
                "the synchronous product needs both component alphabets declared"
            )

    @property
    def alphabet(self) -> frozenset[str]:
        return self.left.alphabet & self.right.alphabet

    def successors(self, state: tuple[State, State]) -> Iterator[Move]:
        left_state, right_state = state
        shared = self.alphabet
        right_moves = list(self.right.successors(right_state))
        by_action: dict[str, list[State]] = {}
        for action, target in right_moves:
            by_action.setdefault(action, []).append(target)
        for action, target in self.left.successors(left_state):
            if action == TAU:
                yield TAU, (target, right_state)
            elif action in shared:
                for right_target in by_action.get(action, ()):
                    yield action, (target, right_target)
        for target in by_action.get(TAU, ()):
            yield TAU, (left_state, target)


class LazyInterleavingProduct(_LazyProduct):
    """Pure asynchronous interleaving: either component moves, never both at once.

    Mirrors :func:`repro.core.composition.interleaving_product`.
    """

    def __init__(self, left, right, extension_mode: str = "union") -> None:
        super().__init__(left, right, extension_mode)

    @property
    def alphabet(self) -> frozenset[str] | None:
        return self._union_alphabet()

    def successors(self, state: tuple[State, State]) -> Iterator[Move]:
        left_state, right_state = state
        for action, target in self.left.successors(left_state):
            yield action, (target, right_state)
        for action, target in self.right.successors(right_state):
            yield action, (left_state, target)


class LazyCCSProduct(_LazyProduct):
    """CCS parallel composition ``left | right``, explored lazily.

    Interleaving of all moves plus a tau move whenever the components can
    perform complementary actions (``a`` with ``a!``) simultaneously.
    Mirrors :func:`repro.core.composition.ccs_composition` and the SOS rules
    of :mod:`repro.ccs.semantics`.
    """

    def __init__(self, left, right, extension_mode: str = "union") -> None:
        super().__init__(left, right, extension_mode)

    @property
    def alphabet(self) -> frozenset[str] | None:
        return self._union_alphabet()

    def successors(self, state: tuple[State, State]) -> Iterator[Move]:
        left_state, right_state = state
        right_moves = list(self.right.successors(right_state))
        by_action: dict[str, list[State]] = {}
        for action, target in right_moves:
            by_action.setdefault(action, []).append(target)
        for action, target in self.left.successors(left_state):
            yield action, (target, right_state)
            if action != TAU:
                for right_target in by_action.get(co_action(action), ()):
                    yield TAU, (target, right_target)
        for action, target in right_moves:
            yield action, (left_state, target)


class _LazyWrapper(ImplicitLTS):
    """Shared scaffolding of the unary operators (states pass through)."""

    __slots__ = ("inner",)

    def __init__(self, inner) -> None:
        self.inner = as_implicit(inner)

    def initial(self) -> State:
        return self.inner.initial()

    def extension(self, state: State) -> frozenset[str]:
        return self.inner.extension(state)

    def state_name(self, state: State) -> str:
        return self.inner.state_name(state)

    @property
    def variables(self) -> frozenset[str]:
        return self.inner.variables

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


class LazyRestriction(_LazyWrapper):
    """CCS restriction ``P \\ L``: moves on the listed channels (and their
    co-actions) are pruned; tau moves pass.  Mirrors
    :func:`repro.core.composition.restrict`."""

    __slots__ = ("blocked",)

    def __init__(self, inner, channels) -> None:
        super().__init__(inner)
        self.blocked = channel_closure(channels)

    @property
    def alphabet(self) -> frozenset[str] | None:
        declared = self.inner.alphabet
        return None if declared is None else declared - self.blocked

    def successors(self, state: State) -> Iterator[Move]:
        for action, target in self.inner.successors(state):
            if action == TAU or action not in self.blocked:
                yield action, target


class LazyHiding(_LazyWrapper):
    """Hiding: moves on the listed channels become tau moves.  Mirrors
    :func:`repro.core.composition.hide` -- the step that produces the
    tau-rich systems observational equivalence is about."""

    __slots__ = ("hidden",)

    def __init__(self, inner, channels) -> None:
        super().__init__(inner)
        self.hidden = channel_closure(channels)

    @property
    def alphabet(self) -> frozenset[str] | None:
        declared = self.inner.alphabet
        return None if declared is None else declared - self.hidden

    def successors(self, state: State) -> Iterator[Move]:
        for action, target in self.inner.successors(state):
            yield (TAU if action in self.hidden else action), target


class LazyRelabeling(_LazyWrapper):
    """Relabelling ``P[f]``: co-actions follow their channel, tau is fixed.
    Mirrors :func:`repro.core.composition.relabel`."""

    __slots__ = ("mapping",)

    def __init__(self, inner, mapping: Mapping[str, str]) -> None:
        super().__init__(inner)
        if TAU in mapping:
            raise InvalidProcessError("tau cannot be relabelled")
        full: dict[str, str] = {}
        for old, new in mapping.items():
            full[old] = new
            full[co_action(old)] = co_action(new)
        self.mapping = full

    def _rename(self, action: str) -> str:
        if action == TAU:
            return action
        return self.mapping.get(action, action)

    @property
    def alphabet(self) -> frozenset[str] | None:
        declared = self.inner.alphabet
        if declared is None:
            return None
        return frozenset(self._rename(action) for action in declared)

    def successors(self, state: State) -> Iterator[Move]:
        for action, target in self.inner.successors(state):
            yield self._rename(action), target
