"""Flow control for the service: request deadlines and client quotas.

Two production-posture primitives the server and shard workers share:

* **Deadlines.**  A request may carry ``deadline_ms``; the server converts
  it to an *absolute* monotonic instant and threads it through the job spec
  into the worker.  :func:`deadline_scope` enforces it cooperatively inside
  the worker process: an interval timer (``SIGALRM``) raises
  :class:`DeadlineExceeded` at the next Python bytecode once the deadline
  passes, so a long ``check`` aborts mid-refinement with a structured error
  instead of wedging its shard.  Worker processes are forked from the
  server, so ``time.monotonic()`` readings are comparable across the
  process boundary (both read the same system-wide clock).

* **Token buckets.**  :class:`TokenBucket` is the classic rate limiter
  (``rate`` tokens per second, capacity ``burst``): the server keeps one
  per client and answers ``overloaded`` -- with a ``retry_after_ms`` hint
  -- when a client outruns its quota, instead of letting one chatty client
  queue every shard solid.

Everything here is stdlib-only and process-local; the wire vocabulary for
the two rejection shapes lives in :mod:`repro.service.protocol`
(``DEADLINE_EXCEEDED`` / ``OVERLOADED``).
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "DeadlineExceeded",
    "TokenBucket",
    "check_deadline",
    "deadline_scope",
    "remaining_seconds",
]


class DeadlineExceeded(Exception):
    """Raised inside a worker when a job's deadline passes mid-computation."""


#: SIGALRM-based preemption needs an interval timer and must run on the main
#: thread of the process (signal delivery is a main-thread affair); both hold
#: in a ProcessPoolExecutor worker, which is where deadline_scope runs.
_HAVE_ITIMER = hasattr(signal, "setitimer") and hasattr(signal, "SIGALRM")

#: Set while a deadline_scope is active; the handler ignores stray alarms
#: delivered after a scope already disarmed (e.g. a timer that fired in the
#: narrow window between the job body finishing and the timer being cleared).
_ARMED = False


def _on_alarm(signum, frame) -> None:
    if _ARMED:
        raise DeadlineExceeded("deadline expired")


def remaining_seconds(deadline: float | None) -> float | None:
    """Seconds until an absolute monotonic deadline (negative = expired)."""
    if deadline is None:
        return None
    return deadline - time.monotonic()


def check_deadline(deadline: float | None) -> None:
    """Checkpoint form: raise :class:`DeadlineExceeded` if already past."""
    if deadline is not None and time.monotonic() >= deadline:
        raise DeadlineExceeded("deadline expired")


@contextmanager
def deadline_scope(deadline: float | None) -> Iterator[None]:
    """Run a block under an absolute monotonic deadline.

    Raises :class:`DeadlineExceeded` up front when the deadline has already
    passed (a job that sat out its deadline in the queue aborts without
    computing anything), and -- where ``SIGALRM`` is available and we are on
    the main thread -- preemptively from inside the block otherwise.  On
    platforms without interval timers the scope degrades to the entry/exit
    checkpoints of :func:`check_deadline`.
    """
    global _ARMED
    if deadline is None:
        yield
        return
    check_deadline(deadline)
    if not _HAVE_ITIMER or threading.current_thread() is not threading.main_thread():
        try:
            yield
        finally:
            check_deadline(deadline)
        return
    previous = signal.signal(signal.SIGALRM, _on_alarm)
    _ARMED = True
    signal.setitimer(signal.ITIMER_REAL, max(deadline - time.monotonic(), 1e-6))
    try:
        yield
    finally:
        _ARMED = False
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, capacity ``burst``.

    ``try_acquire(n)`` either takes ``n`` tokens and returns 0.0, or leaves
    the bucket untouched and returns the seconds until ``n`` tokens will
    have accumulated (the ``retry_after`` hint).  Refill is computed lazily
    from the monotonic clock, so an idle bucket costs nothing.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` now (returns 0.0) or report the wait in seconds."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            # Even a burst-sized request gets a finite hint: the shortfall
            # against the *capacity* bounds the wait a client should observe.
            shortfall = min(tokens, self.burst) - self._tokens
            return max(shortfall / self.rate, 1e-3)

    @property
    def available(self) -> float:
        """Current token count (after lazy refill); monitoring only."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens
