"""Client-side retry policy for ``overloaded`` responses.

The service answers backpressure with a structured ``overloaded`` error
carrying a ``retry_after_ms`` hint (a full shard queue, a drained quota
bucket).  Surfacing that error straight to the caller makes every script
reinvent the same sleep-and-retry loop -- usually without jitter, so a
thousand throttled clients retry in lockstep and re-create the very spike
that throttled them.

:class:`RetryPolicy` is the one shared implementation: it honours the
server's hint as a *floor*, grows the delay exponentially per attempt, adds
decorrelating jitter, and gives up after a bounded number of attempts or a
bounded total sleep -- whichever comes first -- at which point the last
``overloaded`` error is raised to the caller unchanged.

The schedule for attempt *n* (0-based) is::

    base = max(retry_after_ms, base_delay_ms) * multiplier ** n
    delay = min(base, max_delay_ms) * uniform(1 - jitter, 1 + jitter)

Both the random source and the sleep function are injectable, so the unit
tests assert the exact schedule without sleeping.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable

__all__ = ["DEFAULT_RETRIES", "RetryPolicy"]

#: Default bounded retry budget for clients (attempts after the first try).
DEFAULT_RETRIES = 3


class RetryPolicy:
    """A jittered exponential-backoff schedule for ``overloaded`` replies.

    Parameters
    ----------
    retries:
        How many times to retry after the first attempt (0 disables
        retrying entirely).
    base_delay_ms:
        Floor of the first delay when the server sent no usable
        ``retry_after_ms`` hint.
    max_delay_ms:
        Cap on any single delay (pre-jitter).
    max_total_ms:
        Budget on the *sum* of delays; a retry whose delay would exceed the
        remaining budget is not taken.
    multiplier:
        Exponential growth factor per attempt.
    jitter:
        Relative jitter width: each delay is scaled by a uniform factor in
        ``[1 - jitter, 1 + jitter]``.
    rng:
        Random source (seedable for tests).
    sleep:
        The sleep function (injectable for tests); defaults to
        :func:`time.sleep`.
    """

    def __init__(
        self,
        retries: int = DEFAULT_RETRIES,
        *,
        base_delay_ms: float = 50.0,
        max_delay_ms: float = 5_000.0,
        max_total_ms: float = 30_000.0,
        multiplier: float = 2.0,
        jitter: float = 0.25,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if base_delay_ms <= 0 or max_delay_ms <= 0 or max_total_ms <= 0:
            raise ValueError("delay bounds must be positive")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.retries = retries
        self.base_delay_ms = base_delay_ms
        self.max_delay_ms = max_delay_ms
        self.max_total_ms = max_total_ms
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    def delay_ms(self, attempt: int, retry_after_ms: float | None) -> float:
        """The delay before retry ``attempt`` (0-based), jitter applied.

        The server's ``retry_after_ms`` hint is a floor, never a ceiling:
        backing off *less* than the hint just earns another rejection.
        """
        hint = float(retry_after_ms) if retry_after_ms and retry_after_ms > 0 else 0.0
        base = max(hint, self.base_delay_ms) * (self.multiplier**attempt)
        capped = min(base, self.max_delay_ms)
        if self.jitter:
            capped *= self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return capped

    def run(self, fn: Callable[[], Any], *, is_overloaded: Callable[[Exception], Any]) -> Any:
        """Call ``fn`` under this policy.

        ``is_overloaded(error)`` inspects an exception and returns the
        server's ``retry_after_ms`` hint (or ``None``) when the error is a
        retryable ``overloaded`` reply, or ``False`` when it is not.  Any
        non-retryable error propagates immediately; a retryable one is
        retried until the attempt or total-sleep budget runs out, then the
        last error is re-raised.
        """
        spent_ms = 0.0
        for attempt in range(self.retries + 1):
            try:
                return fn()
            except Exception as error:
                verdict = is_overloaded(error)
                if verdict is False or attempt >= self.retries:
                    raise
                hint = verdict if isinstance(verdict, (int, float)) else None
                delay = self.delay_ms(attempt, hint)
                if spent_ms + delay > self.max_total_ms:
                    raise
                spent_ms += delay
                self._sleep(delay / 1000.0)
        raise AssertionError("unreachable")  # pragma: no cover
