"""Content-addressed on-disk process store with a bounded in-memory cache.

A :class:`ProcessStore` maps the content digest of an FSP
(:func:`repro.utils.serialization.content_digest` -- SHA-256 over the
canonical JSON encoding, so structurally equal processes share one address)
to a JSON file under its root directory::

    <root>/<hex[:2]>/<hex>.json

Clients upload a process once (the ``store`` RPC) and reference it by digest
in thousands of subsequent checks; every shard worker opens the same
directory read-only and resolves digests on demand.  Because entries are
content-addressed they are immutable -- a digest can be cached forever
without invalidation, which is what makes the per-worker in-memory LRU
(bounded by ``max_cached``) safe.

Writes are atomic (temp file + ``os.replace``), so a crashed writer can
leave a stale ``*.tmp*`` file behind but never a truncated entry; readers
re-verify the digest of whatever they load and reject corrupted files.

The store keeps a **startup index**: one directory scan at construction
builds the in-memory set of on-disk digests, after which membership tests
and ``cache_info()["on_disk"]`` are O(1) instead of re-globbing the tree on
every call.  The index is advisory, not authoritative -- ``get`` always
reads the file itself, and a membership miss falls back to one ``stat`` so
entries published by *another* process into the same root are still found
(shard workers share their root with the server front end).  Files whose
names are not well-formed ``<64 hex>.json`` under the right fan-out
directory are skipped by the scan, so one corrupt or foreign file cannot
poison the index.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from collections.abc import Iterator
from pathlib import Path

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP
from repro.utils.serialization import canonical_bytes, content_digest, loads

#: In-memory LRU bound used when the caller does not pick one.
DEFAULT_MAX_CACHED = 256


def _split(digest: str) -> str:
    """The hex part of a ``sha256:<hex>`` digest (validated)."""
    prefix, _, hex_part = digest.partition(":")
    if prefix != "sha256" or len(hex_part) != 64 or not all(
        c in "0123456789abcdef" for c in hex_part
    ):
        raise KeyError(f"malformed digest {digest!r}")
    return hex_part


class ProcessStore:
    """A content-addressed process store rooted at one directory.

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).
    max_cached:
        Bound on the in-memory digest -> FSP cache (LRU eviction; evicted
        entries reload transparently from disk).
    """

    def __init__(self, root: str | Path, max_cached: int = DEFAULT_MAX_CACHED) -> None:
        if max_cached < 1:
            raise ValueError("max_cached must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_cached = max_cached
        self._cache: OrderedDict[str, FSP] = OrderedDict()
        # The server uploads from worker threads (asyncio.to_thread) while
        # its event loop reads cache_info; entries are immutable, so only
        # the LRU bookkeeping needs the lock.
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._index: set[str] = self._scan_index()

    def _scan_index(self) -> set[str]:
        """One startup scan of the tree: every well-formed entry's digest.

        Only names shaped ``<fan>/<64 hex>.json`` with ``<fan>`` equal to the
        first two hex characters are indexed; stale ``*.tmp*`` files from
        crashed writers and any foreign files are ignored.
        """
        index: set[str] = set()
        for path in self.root.glob("??/*.json"):
            stem = path.stem
            if (
                len(stem) == 64
                and all(c in "0123456789abcdef" for c in stem)
                and path.parent.name == stem[:2]
            ):
                index.add("sha256:" + stem)
        return index

    def reindex(self) -> int:
        """Rebuild the startup index from disk; returns the entry count."""
        fresh = self._scan_index()
        with self._lock:
            self._index = fresh
            return len(fresh)

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        """Where an entry with this digest lives (whether or not it exists)."""
        hex_part = _split(digest)
        return self.root / hex_part[:2] / f"{hex_part}.json"

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            if digest in self._cache or digest in self._index:
                return True
        # Index miss: probe the disk once so entries published by another
        # process (same root, different ProcessStore) are still visible, and
        # fold a hit back into the index.
        try:
            found = self.path_for(digest).exists()
        except KeyError:
            return False
        if found:
            with self._lock:
                self._index.add(digest)
        return found

    def digests(self) -> Iterator[str]:
        """All indexed digests (sorted for determinism)."""
        with self._lock:
            snapshot = sorted(self._index)
        yield from snapshot

    # ------------------------------------------------------------------
    # put / get
    # ------------------------------------------------------------------
    def put(self, fsp: FSP) -> str:
        """Store a process; returns its digest.  Idempotent by construction."""
        digest = content_digest(fsp)
        path = self.path_for(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: a reader either sees nothing or the full entry.
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(canonical_bytes(fsp))
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except FileNotFoundError:
                    pass
                raise
        self._remember(digest, fsp)
        with self._lock:
            self._index.add(digest)
        return digest

    def get(self, digest: str) -> FSP:
        """The process stored under ``digest`` (memory first, then disk).

        Raises
        ------
        KeyError
            If the digest is malformed or nothing is stored under it.
        InvalidProcessError
            If the on-disk entry does not hash back to its address
            (corruption or tampering).
        """
        with self._lock:
            cached = self._cache.get(digest)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(digest)
                return cached
        path = self.path_for(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise KeyError(f"no stored process with digest {digest!r}") from None
        with self._lock:
            self._misses += 1
        try:
            fsp = loads(text)
        except InvalidProcessError:
            raise
        except Exception as error:
            # Unparsable bytes are corruption too -- same contract as a
            # hash mismatch, so callers handle one exception, not json's.
            raise InvalidProcessError(f"store entry {path} is corrupt: {error}") from None
        actual = content_digest(fsp)
        if actual != digest:
            raise InvalidProcessError(
                f"store entry {path} is corrupt: content hashes to {actual}, not its address"
            )
        self._remember(digest, fsp)
        with self._lock:
            self._index.add(digest)
        return fsp

    def _remember(self, digest: str, fsp: FSP) -> None:
        with self._lock:
            self._cache[digest] = fsp
            self._cache.move_to_end(digest)
            while len(self._cache) > self.max_cached:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, int]:
        """Occupancy and hit counters of the in-memory layer."""
        with self._lock:
            cached, hits, misses = len(self._cache), self._hits, self._misses
            on_disk = len(self._index)
        return {
            "cached": cached,
            "max_cached": self.max_cached,
            "hits": hits,
            "misses": misses,
            "on_disk": on_disk,
        }

    def __repr__(self) -> str:
        return f"ProcessStore(root={str(self.root)!r}, cached={len(self._cache)}/{self.max_cached})"
