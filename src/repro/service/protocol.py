"""The service wire protocol: newline-delimited JSON frames over a socket.

One request or response per line, UTF-8, terminated by ``\\n`` (documented in
``docs/service-protocol.md``).  A request is::

    {"id": <scalar>, "op": <operation name>, "params": {...}}

and every request gets exactly one response, either::

    {"id": <echoed>, "ok": true, "result": {...}}
    {"id": <echoed>, "ok": false, "error": {"code": "...", "message": "..."}}

``id`` is chosen by the client (any JSON scalar) and echoed verbatim so
pipelined requests can be matched to their responses; requests on one
connection are answered in order.  Frames larger than
:data:`MAX_FRAME_BYTES` are rejected -- the bound exists so a client cannot
make the server buffer unbounded garbage, and it is far above any realistic
process upload.

Processes inside ``params`` are *references*: either an inline serialised
FSP (``{"process": {...}}``, the :func:`repro.utils.serialization.to_dict`
encoding) or a content address into the server's store
(``{"digest": "sha256:..."}``) obtained from a prior ``store`` request.
A check operand may also be a *composed system*
(``{"system": {...}}``, the :func:`repro.explore.spec_from_document`
grammar, with leaves that are themselves process references) -- composed
operands run through the on-the-fly route of :mod:`repro.explore` unless the
check sets ``on_the_fly`` to false, so the server never materialises the
product.

This module is shared by the server, the client and the protocol tests, so
framing and error vocabulary live in exactly one place.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.fsp import FSP
from repro.utils.serialization import from_dict, to_dict

#: Upper bound on one frame (request or response line), in bytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Default TCP port of the service (no IANA meaning; memorable: PODC'83).
#: Lives here -- not in :mod:`repro.service.server` -- so the CLI parser can
#: show it without importing the asyncio/multiprocessing stack.
DEFAULT_PORT = 8319

#: The operations the server understands (``docs/service-protocol.md``).
OPERATIONS = ("ping", "store", "check", "check_many", "minimize", "classify", "stats", "metrics")

# -- error codes -------------------------------------------------------
#: request line was not valid JSON, not an object, or missing/over-long.
BAD_REQUEST = "bad_request"
#: ``op`` is not one of :data:`OPERATIONS`.
UNKNOWN_OP = "unknown_op"
#: an inline process violates Definition 2.1.1 or is malformed.
INVALID_PROCESS = "invalid_process"
#: a ``digest`` reference names nothing in the server's store.
UNKNOWN_DIGEST = "unknown_digest"
#: the check itself was rejected (unknown notion, bad parameter, signature
#: mismatch, state-space bound exceeded).
CHECK_FAILED = "check_failed"
#: the request's deadline passed before (or while) the worker served it.
DEADLINE_EXCEEDED = "deadline_exceeded"
#: the server is shedding load: a shard queue is full or the client has
#: outrun its token-bucket quota (``error.data.retry_after_ms`` hints when
#: to try again).
OVERLOADED = "overloaded"
#: unexpected server-side failure (a bug; the message carries the repr).
INTERNAL = "internal"

ERROR_CODES = (
    BAD_REQUEST,
    UNKNOWN_OP,
    INVALID_PROCESS,
    UNKNOWN_DIGEST,
    CHECK_FAILED,
    DEADLINE_EXCEEDED,
    OVERLOADED,
    INTERNAL,
)


class ProtocolError(Exception):
    """A malformed frame (bad JSON, wrong shape, over-long line)."""


class ServiceError(Exception):
    """A structured error response, as raised client-side.

    ``code`` is one of :data:`ERROR_CODES`; ``message`` is human-readable;
    ``data`` carries optional machine-readable context (e.g. the
    ``retry_after_ms`` backpressure hint on :data:`OVERLOADED`).
    """

    def __init__(self, code: str, message: str, data: dict[str, Any] | None = None) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.data = data

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the joined string)
        # into the three-parameter __init__; shard workers raise these across
        # the process boundary, so spell the constructor call out.
        return (ServiceError, (self.code, self.message, self.data))


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(document: dict[str, Any]) -> bytes:
    """One wire frame: minimal-separator JSON plus the terminating newline."""
    return json.dumps(document, separators=(",", ":"), ensure_ascii=False).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one received line into a JSON object.

    Raises
    ------
    ProtocolError
        If the line exceeds :data:`MAX_FRAME_BYTES`, is not valid JSON, or
        is not a JSON object.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES} byte limit")
    try:
        document = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise ProtocolError(f"frame must be a JSON object, not {type(document).__name__}")
    return document


# ----------------------------------------------------------------------
# requests and responses
# ----------------------------------------------------------------------
def request_frame(request_id: Any, op: str, params: dict[str, Any] | None = None) -> bytes:
    """Encode one request line."""
    return encode_frame({"id": request_id, "op": op, "params": params or {}})


def ok_response(request_id: Any, result: dict[str, Any]) -> bytes:
    """Encode one success response line."""
    return encode_frame({"id": request_id, "ok": True, "result": result})


def error_response(
    request_id: Any, code: str, message: str, data: dict[str, Any] | None = None
) -> bytes:
    """Encode one error response line (``data`` is optional extra context)."""
    error: dict[str, Any] = {"code": code, "message": message}
    if data:
        error["data"] = data
    return encode_frame({"id": request_id, "ok": False, "error": error})


def parse_request(line: bytes) -> tuple[Any, str, dict[str, Any]]:
    """Validate a request line into ``(id, op, params)``.

    Raises
    ------
    ProtocolError
        On framing problems (the caller cannot even echo an id).
    ServiceError
        With :data:`BAD_REQUEST` / :data:`UNKNOWN_OP` when the frame is
        well-formed JSON but not a valid request.
    """
    document = decode_frame(line)
    op, params = validate_request(document)
    return document.get("id"), op, params


def validate_request(document: dict[str, Any]) -> tuple[str, dict[str, Any]]:
    """The ``(op, params)`` of an already-decoded request object.

    Split from :func:`parse_request` so the server can extract the request
    id from the frame *before* validation -- an error response echoes the id
    even when the op is unknown.
    """
    op = document.get("op")
    if not isinstance(op, str):
        raise ServiceError(BAD_REQUEST, "request must carry a string 'op' field")
    if op not in OPERATIONS:
        raise ServiceError(UNKNOWN_OP, f"unknown op {op!r}; supported: {', '.join(OPERATIONS)}")
    params = document.get("params", {})
    if not isinstance(params, dict):
        raise ServiceError(BAD_REQUEST, "'params' must be a JSON object when present")
    return op, params


def parse_response(line: bytes) -> tuple[Any, dict[str, Any]]:
    """Validate a response line into ``(id, result)``.

    Raises
    ------
    ProtocolError
        On framing problems.
    ServiceError
        Re-raised from an ``ok: false`` response, carrying its code.
    """
    document = decode_frame(line)
    if document.get("ok") is True:
        result = document.get("result")
        if not isinstance(result, dict):
            raise ProtocolError("success response must carry a 'result' object")
        return document.get("id"), result
    error = document.get("error")
    if not isinstance(error, dict):
        raise ProtocolError("response is neither ok nor carries an 'error' object")
    data = error.get("data")
    raise ServiceError(
        str(error.get("code", INTERNAL)),
        str(error.get("message", "unspecified error")),
        data if isinstance(data, dict) else None,
    )


# ----------------------------------------------------------------------
# process references
# ----------------------------------------------------------------------
def process_ref(source) -> dict[str, Any]:
    """Encode a process reference for a request.

    An :class:`FSP` is inlined (``{"process": {...}}``); a ``sha256:...``
    string becomes a digest reference; a
    :class:`~repro.explore.system.SystemSpec` becomes a composed-system
    reference (``{"system": {...}}``); a dict that already *is* a reference
    (has a ``digest``, ``process``, ``system`` or ``scenario`` key, the wire
    shapes of ``docs/service-protocol.md``) passes through unchanged, and any
    other dict is assumed to be a serialised FSP and is inlined.
    """
    if isinstance(source, FSP):
        return {"process": to_dict(source)}
    if isinstance(source, str):
        if not source.startswith("sha256:"):
            raise ValueError(f"digest references must start with 'sha256:', got {source!r}")
        return {"digest": source}
    if isinstance(source, dict):
        if (
            "digest" in source
            or "process" in source
            or "system" in source
            or "scenario" in source
        ):
            return source
        return {"process": source}
    from repro.explore.system import SystemSpec, spec_to_document

    if isinstance(source, SystemSpec):
        return {"system": spec_to_document(source)}
    raise TypeError(f"cannot encode a process reference from {type(source).__name__}")


def resolve_operand(ref: Any, store=None):
    """Decode a check operand: an FSP, or a composed-system spec.

    ``{"system": {...}}`` references parse into a
    :class:`~repro.explore.system.SystemSpec` whose leaves resolve through
    :func:`resolve_ref` (inline processes and, given a ``store``, digests);
    ``{"scenario": {...}}`` references build a protocol-library scenario
    system (:func:`repro.protocols.system_from_document`); everything else
    behaves exactly like :func:`resolve_ref`.
    """
    if isinstance(ref, dict) and "scenario" in ref:
        from repro.core.errors import ReproError
        from repro.protocols import system_from_document

        try:
            return system_from_document(ref["scenario"])
        except ReproError as error:
            raise ServiceError(
                INVALID_PROCESS, f"scenario reference rejected: {error}"
            ) from None
    if isinstance(ref, dict) and "system" in ref:
        # ReproError covers the whole parse surface: malformed documents
        # (InvalidProcessError) and unparsable {"term": ...} leaves
        # (ExpressionError) are both client input errors, not server bugs.
        from repro.core.errors import ReproError
        from repro.explore.system import spec_from_document

        try:
            return spec_from_document(ref["system"], lambda leaf: resolve_ref(leaf, store))
        except ServiceError:
            raise  # a leaf's digest/process error keeps its own code
        except ReproError as error:
            raise ServiceError(INVALID_PROCESS, f"system reference rejected: {error}") from None
    return resolve_ref(ref, store)


def resolve_ref(ref: Any, store=None) -> FSP:
    """Decode a process reference received in a request.

    ``store`` (anything with a ``get(digest) -> FSP``) resolves digest
    references; without one, digest references are rejected.

    Raises
    ------
    ServiceError
        :data:`INVALID_PROCESS` for malformed inline processes,
        :data:`UNKNOWN_DIGEST` for unresolvable digests.
    """
    if not isinstance(ref, dict):
        raise ServiceError(
            INVALID_PROCESS,
            f"a process reference must be an object with 'process' or 'digest', "
            f"not {type(ref).__name__}",
        )
    if "process" in ref:
        try:
            return from_dict(ref["process"])
        except Exception as error:  # InvalidProcessError, KeyError, TypeError
            raise ServiceError(INVALID_PROCESS, f"inline process rejected: {error}") from None
    if "digest" in ref:
        digest = ref["digest"]
        if store is None:
            raise ServiceError(UNKNOWN_DIGEST, "this endpoint has no process store")
        try:
            return store.get(digest)
        except KeyError:
            raise ServiceError(
                UNKNOWN_DIGEST, f"no stored process with digest {digest!r}"
            ) from None
    raise ServiceError(INVALID_PROCESS, "a process reference needs a 'process' or 'digest' key")
