"""The service metrics layer: counters, gauges, histograms, trace records.

A deliberately small, stdlib-only metrics registry in the Prometheus data
model: monotonic :class:`Counter` families, :class:`Gauge` families (direct
``set`` or callback-backed, so queue depths can be read at scrape time), and
cumulative-bucket :class:`Histogram` families for latencies.  Families are
keyed by a fixed label schema (``("op",)``, ``("shard",)``, ...) and child
series are created on first use, so instrumentation sites stay one-liners::

    registry = MetricsRegistry()
    requests = registry.counter("repro_requests_total", "requests by op", ("op",))
    requests.labels("check").inc()

Two export surfaces, both fed from one :meth:`MetricsRegistry.snapshot`:

* the ``metrics`` RPC returns the snapshot as JSON (machine-readable, same
  transport as every other op);
* :meth:`MetricsRegistry.render` produces the Prometheus text exposition
  format (version 0.0.4) served by the server's ``--metrics-port`` HTTP
  endpoint.

:class:`TraceLog` is the structured per-request trace sink behind the
server's ``--trace`` flag: one JSON object per line with the request id,
op, client, shard, queue wait, engine time and cache provenance -- the
record an operator greps when a p99 regression needs explaining.

All mutation is guarded by one registry lock; the server touches metrics
from the event loop, ``asyncio.to_thread`` workers and executor done-
callbacks, so thread safety is part of the contract (the monotonicity test
in ``tests/service/test_metrics.py`` hammers exactly this).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, IO

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceLog",
]

#: Latency buckets in seconds: sub-millisecond cache hits through the
#: multi-second poison checks the deadline layer exists to bound.
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_key(label_names: tuple[str, ...], values: tuple) -> tuple[str, ...]:
    if len(values) != len(label_names):
        raise ValueError(f"expected labels {label_names}, got {len(values)} value(s)")
    return tuple(str(value) for value in values)


class Counter:
    """One monotonic counter series (a child of a counter family)."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """One gauge series: a settable value or a scrape-time callback."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the gauge from ``fn`` at snapshot/render time."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            if self._fn is not None:
                return float(self._fn())
            return self._value


class Histogram:
    """One cumulative-bucket histogram series (Prometheus semantics)."""

    def __init__(self, lock: threading.Lock, buckets: tuple[float, ...]) -> None:
        self._lock = lock
        self.buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # +inf is the last slot
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[index] += 1
                    break
            else:
                self._counts[-1] += 1

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            cumulative: list[int] = []
            running = 0
            for count in self._counts:
                running += count
                cumulative.append(running)
            return {
                "buckets": {
                    **{str(bound): cumulative[i] for i, bound in enumerate(self.buckets)},
                    "+Inf": cumulative[-1],
                },
                "sum": round(self._sum, 6),
                "count": self._count,
            }

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            running = 0
            for index, count in enumerate(self._counts):
                running += count
                if running >= target:
                    if index < len(self.buckets):
                        return self.buckets[index]
                    return float("inf")
            return float("inf")


class _Family:
    """A named metric family: one child series per label-value tuple."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.label_names = label_names
        self.buckets = buckets
        self._lock = lock
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, *values) -> Any:
        key = _label_key(self.label_names, values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "counter":
                    child = Counter(self._lock)
                elif self.kind == "gauge":
                    child = Gauge(self._lock)
                else:
                    child = Histogram(self._lock, self.buckets)
                self._children[key] = child
        return child

    def series(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """All metric families of one server, with JSON and Prometheus exports."""

    def __init__(self) -> None:
        # One reentrant lock for the whole registry: metric updates are
        # nanosecond-cheap increments, and a single lock keeps snapshot()
        # internally consistent without per-series juggling.
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    def _family(self, name: str, help_text: str, kind: str, label_names, buckets=None) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    name,
                    help_text,
                    kind,
                    tuple(label_names),
                    self._lock,
                    tuple(buckets) if buckets is not None else DEFAULT_BUCKETS,
                )
                self._families[name] = family
            elif family.kind != kind or family.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.label_names}"
                )
        return family

    def counter(self, name: str, help_text: str, label_names=()) -> _Family:
        return self._family(name, help_text, "counter", label_names)

    def gauge(self, name: str, help_text: str, label_names=()) -> _Family:
        return self._family(name, help_text, "gauge", label_names)

    def histogram(self, name: str, help_text: str, label_names=(), buckets=None) -> _Family:
        return self._family(name, help_text, "histogram", label_names, buckets)

    # ------------------------------------------------------------------
    # export surfaces
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-compatible dump of every series (the ``metrics`` RPC)."""
        out: dict[str, Any] = {}
        with self._lock:
            families = list(self._families.values())
        for family in families:
            series = []
            for key, child in family.series():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    series.append({"labels": labels, **child.snapshot()})
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help_text,
                "series": series,
            }
        return out

    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = list(self._families.values())
        for family in families:
            lines.append(f"# HELP {family.name} {family.help_text}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.series():
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    snap = child.snapshot()
                    for bound, count in snap["buckets"].items():
                        bucket_labels = _render_labels({**labels, "le": bound})
                        lines.append(f"{family.name}_bucket{bucket_labels} {count}")
                    rendered = _render_labels(labels)
                    lines.append(f"{family.name}_sum{rendered} {_format_value(snap['sum'])}")
                    lines.append(f"{family.name}_count{rendered} {snap['count']}")
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class TraceLog:
    """Structured per-request trace records: one JSON object per line.

    Enabled by ``repro serve --trace``.  Records are written with a lock so
    concurrent connections interleave whole lines, never fragments; the
    wall-clock timestamp is recorded (monotonic readings are meaningless
    across processes reading the log).
    """

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def record(self, **fields: Any) -> None:
        entry = {"ts": round(time.time(), 6), **fields}
        line = json.dumps(entry, separators=(",", ":"), default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()
