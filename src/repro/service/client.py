"""A small synchronous client for the equivalence service.

:class:`ServiceClient` speaks the NDJSON protocol of
:mod:`repro.service.protocol` over one TCP connection.  It is deliberately
synchronous -- the CLI, tests and most scripts want a blocking call per
question -- and deliberately thin: requests go out, responses come back, and
``ok: false`` responses are raised as
:class:`~repro.service.protocol.ServiceError` with their error code intact.

The idiomatic heavy-traffic shape is *store once, check by digest*::

    with ServiceClient(port=8319) as client:
        digest = client.store(big_process)          # upload once
        for candidate in candidates:                # then reference forever
            answer = client.check(digest, candidate, "observational")
            print(answer["equivalent"], answer["shard"])

Digest references keep the per-check payload tiny and -- because the server
routes checks by the left process's digest -- every one of these checks
lands on the shard whose engine already holds ``big_process`` hot.

``overloaded`` responses (a full shard queue, a drained quota bucket) are
retried transparently: the client honours the server's ``retry_after_ms``
hint with jittered exponential backoff under a bounded budget
(:class:`~repro.service.retry.RetryPolicy`), and only surfaces the error
once the budget is spent.  Pass ``overload_retries=0`` to see every
rejection immediately (load generators and backpressure tests want this).
"""

from __future__ import annotations

import socket
from typing import Any

from repro.core.fsp import FSP
from repro.service import protocol
from repro.service.protocol import DEFAULT_PORT
from repro.service.retry import DEFAULT_RETRIES, RetryPolicy
from repro.utils.serialization import from_dict

#: Reference shapes accepted everywhere a process goes: an FSP (inlined), a
#: ``sha256:...`` digest string, or an already-serialised FSP dict.
ProcessLike = FSP | str | dict


def _overload_hint(error: Exception) -> Any:
    """RetryPolicy predicate: retryable iff the error is ``overloaded``."""
    if isinstance(error, protocol.ServiceError) and error.code == protocol.OVERLOADED:
        hint = (error.data or {}).get("retry_after_ms")
        return hint if isinstance(hint, (int, float)) else None
    return False


class ServiceClient:
    """One connection to a running equivalence service.

    ``overload_retries`` bounds how many times an ``overloaded`` response is
    retried (with jittered backoff honouring the server's ``retry_after_ms``)
    before the error surfaces; ``retry_policy`` swaps in a fully custom
    :class:`~repro.service.retry.RetryPolicy` and overrides it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float | None = 60.0,
        *,
        overload_retries: int = DEFAULT_RETRIES,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._next_id = 0
        self._retry = (
            retry_policy if retry_policy is not None else RetryPolicy(overload_retries)
        )

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(self, op: str, params: dict[str, Any] | None = None) -> dict[str, Any]:
        """Send one request and block for its response.

        ``overloaded`` responses are retried under the client's
        :class:`~repro.service.retry.RetryPolicy` before surfacing.

        Raises
        ------
        ServiceError
            If the server answered ``ok: false`` (after any retries).
        ProtocolError
            If the response could not be parsed, or the connection died.
        """
        return self._retry.run(
            lambda: self._request_once(op, params), is_overloaded=_overload_hint
        )

    def _request_once(self, op: str, params: dict[str, Any] | None = None) -> dict[str, Any]:
        self._next_id += 1
        request_id = self._next_id
        self._socket.sendall(protocol.request_frame(request_id, op, params))
        line = self._reader.readline(protocol.MAX_FRAME_BYTES + 2)
        if not line:
            raise protocol.ProtocolError("server closed the connection")
        if not line.endswith(b"\n"):
            raise protocol.ProtocolError("response frame exceeds the size limit")
        response_id, result = protocol.parse_response(line)
        if response_id != request_id:
            raise protocol.ProtocolError(
                f"response id {response_id!r} does not match request id {request_id!r}"
            )
        return result

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        """Liveness probe; returns the server's version and shard count."""
        return self.request("ping")

    def store(self, process: FSP | dict) -> str:
        """Upload a process; returns its content digest for later references."""
        ref = protocol.process_ref(process)
        return self.request("store", {"process": ref["process"]})["digest"]

    def check(
        self,
        left: ProcessLike,
        right: ProcessLike,
        notion: str = "observational",
        *,
        align: bool = True,
        witness: bool = False,
        on_the_fly: bool | None = None,
        reduction: str | None = None,
        deadline_ms: float | None = None,
        **params: Any,
    ) -> dict[str, Any]:
        """Decide one equivalence; returns the serialised verdict dict.

        Operands may also be composed systems
        (:class:`~repro.explore.system.SystemSpec` values or
        ``{"system": ...}`` documents); those default to the server's
        on-the-fly route, and ``on_the_fly`` overrides the route either way.
        ``reduction`` requests a state-space reduction on the lazy route
        (``"none"``/``"por"``/``"symmetry"``/``"full"``; the mode actually
        applied comes back in the verdict's ``reduction`` field).
        ``deadline_ms`` bounds the check: past it, the worker aborts
        cooperatively and the call raises a ``deadline_exceeded``
        :class:`~repro.service.protocol.ServiceError`.
        """
        request: dict[str, Any] = {
            "left": protocol.process_ref(left),
            "right": protocol.process_ref(right),
            "notion": notion,
            "align": align,
            "witness": witness,
            "params": params,
        }
        if on_the_fly is not None:
            request["on_the_fly"] = on_the_fly
        if reduction is not None:
            request["reduction"] = reduction
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        return self.request("check", request)

    def check_many(
        self,
        checks: list[tuple | dict],
        *,
        notion: str = "observational",
        align: bool = True,
        witness: bool = False,
        reduction: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict[str, Any]:
        """Run a manifest of checks; returns ``{"results": [...], "summary": {...}}``.

        Each entry is ``(left, right)``, ``(left, right, notion)``, or a dict
        with ``left`` / ``right`` / optional ``notion`` / ``params``.
        ``reduction`` sets the batch-default state-space reduction (each
        entry may override it).  ``deadline_ms`` applies one absolute
        deadline to the whole batch; checks that miss it report
        ``deadline_exceeded`` inline.
        """
        encoded = []
        for index, item in enumerate(checks):
            if isinstance(item, dict):
                entry = dict(item)
                entry["left"] = protocol.process_ref(entry["left"])
                entry["right"] = protocol.process_ref(entry["right"])
            elif isinstance(item, (tuple, list)) and len(item) in (2, 3):
                entry = {
                    "left": protocol.process_ref(item[0]),
                    "right": protocol.process_ref(item[1]),
                }
                if len(item) == 3:
                    entry["notion"] = item[2]
            else:
                raise ValueError(
                    f"check #{index} must be (left, right[, notion]) or a mapping"
                )
            encoded.append(entry)
        params: dict[str, Any] = {
            "checks": encoded,
            "notion": notion,
            "align": align,
            "witness": witness,
        }
        if reduction is not None:
            params["reduction"] = reduction
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.request("check_many", params)

    def minimize(self, process: ProcessLike, notion: str = "observational") -> FSP:
        """The quotient of a process under strong/observational equivalence."""
        result = self.request(
            "minimize", {"process": protocol.process_ref(process), "notion": notion}
        )
        return from_dict(result["process"])

    def classify(self, process: ProcessLike) -> list[str]:
        """The model classes of a process (Fig. 1a hierarchy), as strings."""
        return self.request("classify", {"process": protocol.process_ref(process)})["classes"]

    def stats(self) -> dict[str, Any]:
        """Server totals plus per-shard engine/store cache statistics."""
        return self.request("stats")

    def metrics(self) -> dict[str, Any]:
        """The server's metrics registry snapshot (the ``metrics`` RPC)."""
        return self.request("metrics")["metrics"]
