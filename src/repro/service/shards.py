"""The sharded worker pool: one single-process executor + engine per shard.

Kanellakis-Smolka checks over independent pairs are embarrassingly parallel,
but the engine's speed on server-style traffic comes from its *caches* --
and a naive shared pool scatters each process's checks across workers, so
every worker pays to compile the same artifacts.  A :class:`ShardPool`
instead owns ``num_shards`` :class:`~concurrent.futures.ProcessPoolExecutor`
instances of one worker process each, and routes every check by the content
digest of its left process (:func:`repro.utils.serialization.content_digest`).
The routing is therefore *sticky*: all checks touching a given process land
on the same worker, whose private bounded :class:`~repro.engine.Engine`
keeps that process's quotients, kernels and verdicts hot, while the shards
together multiply both the usable CPU and the aggregate cache capacity.

Worker lifecycle
----------------

Each worker is initialised (fork start method where available, so source
checkouts and pre-imported state carry over cheaply) with its shard index,
the shared read-only :class:`~repro.service.store.ProcessStore` root, and
its engine's cache bounds.  Job payloads are plain dicts and the results are
JSON-compatible dicts, so the inter-process traffic stays small; process
*references* resolve inside the worker against the content-addressed store,
which is exactly what lets a client upload a process once and check it
thousands of times without re-shipping it.

A crashed worker (OOM-killed, segfaulted C extension, ``os._exit``) breaks
its executor; :meth:`ShardPool.run` and :meth:`ShardPool.run_async` revive
the shard with a fresh executor -- the replacement worker starts with cold
caches but the content-addressed store still has every uploaded process --
and retry the job once before giving up.  Only genuine worker death
(:class:`~concurrent.futures.process.BrokenProcessPool`) takes that path:
every job submitted to a shard runs under :func:`_guarded`, which converts
*job-level* failures -- including exceptions that would not survive the
pickle trip home and would otherwise poison the executor -- into structured
:class:`~repro.service.protocol.ServiceError` replies, so a deterministic
bad job answers once instead of being replayed against a fresh worker.

Service hardening (deadlines, backpressure, work-stealing)
----------------------------------------------------------

* Check specs may carry an absolute monotonic ``deadline``; the worker
  aborts cooperatively (:func:`repro.service.flow.deadline_scope`) with a
  ``deadline_exceeded`` error -- before computing if the job out-queued its
  deadline, preemptively mid-refinement otherwise -- so slow-poison jobs
  cannot wedge a shard.
* ``max_queue`` bounds each shard's submitted-but-unfinished depth; the
  pool answers ``overloaded`` (with a retry hint) instead of queueing
  unboundedly.
* ``steal_threshold`` enables digest-affinity-preserving work-stealing:
  when a job's home shard is backed up, the job migrates to the least
  loaded shard *only if* it is store-referenced (any worker can resolve it
  against the shared store) and cache-cold on its home shard (its routing
  key has not been dispatched there recently -- stealing a cache-hot job
  would squander exactly the affinity the routing exists to build).  A
  stolen job whose host crashes falls back to its home shard once.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.service import flow, protocol
from repro.service.store import ProcessStore

try:  # pragma: no cover - always available on the supported platforms
    _MP_CONTEXT = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover - non-posix fallback
    _MP_CONTEXT = multiprocessing.get_context()

#: Default per-shard engine cache bounds (deliberately modest: the point of
#: sharding is that each worker only needs to hold *its* slice of the
#: working set, and per-worker memory is the budget operators actually set).
DEFAULT_MAX_PROCESSES = 64
DEFAULT_MAX_VERDICTS = 1024

#: Per-shard LRU of recently dispatched routing keys -- the pool-side proxy
#: for "this digest is hot in that worker's engine cache" that work-stealing
#: consults.  Sized above the per-shard engine bounds so the proxy errs
#: toward keeping affinity.
RECENT_KEYS_PER_SHARD = 128

#: Extra seconds the server waits past a request's deadline for the worker's
#: own structured ``deadline_exceeded`` reply (which carries shard/queue
#: telemetry) before answering on its behalf.
DEADLINE_GRACE_SECONDS = 0.5


def routing_key_of(spec: dict[str, Any]) -> str | None:
    """The affinity key of one check spec (``None`` = unroutable).

    A digest reference is its own key; an inline process or composed system
    is keyed by the digest of its canonically-serialised JSON.  The canonical
    separators match ``utils.serialization.canonical_bytes``, so an inline
    copy of a stored process routes to the same shard as its digest
    reference (the cache-affinity promise); composed-system and scenario
    documents hash the same way, keeping repeated questions about one system
    on one worker.  The cluster coordinator keys its node ring walk with the
    same function, so shard affinity and node affinity agree.
    """
    ref = spec.get("left")
    if isinstance(ref, dict):
        if isinstance(ref.get("digest"), str):
            return ref["digest"]
        if "process" in ref or "system" in ref or "scenario" in ref:
            body = ref.get("process", ref.get("system", ref.get("scenario")))
            canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
            return "sha256:" + hashlib.sha256(canonical.encode()).hexdigest()
    return None


# ----------------------------------------------------------------------
# worker-side state and job functions (top level: they must pickle)
# ----------------------------------------------------------------------
_WORKER: dict[str, Any] = {}


def _init_worker(
    shard_index: int,
    store_root: str | None,
    max_processes: int,
    max_verdicts: int,
    node_name: str | None = None,
) -> None:
    """Executor initializer: one engine (and store view) per worker process."""
    from repro.engine import Engine

    _WORKER["shard"] = shard_index
    _WORKER["engine"] = Engine(max_processes=max_processes, max_verdicts=max_verdicts)
    _WORKER["store"] = ProcessStore(store_root) if store_root is not None else None
    _WORKER["checks"] = 0
    _WORKER["node"] = node_name


def _worker_resolve(ref: Any):
    return protocol.resolve_ref(ref, _WORKER.get("store"))


def _check_failed(error: Exception) -> protocol.ServiceError:
    return protocol.ServiceError(protocol.CHECK_FAILED, str(error))


def _guarded(fn, *args) -> Any:
    """Run one job, converting every job-level failure to a ServiceError.

    This is the worker-side half of the crash-recovery contract: the parent
    retries a shard's job on a fresh executor *only* for
    :class:`BrokenProcessPool`, i.e. genuine worker death.  For that to be
    sound, no mere job exception may ever break the executor -- and an
    exception that fails to unpickle in the parent (third-party classes with
    required constructor arguments are the classic case) does exactly that:
    it kills the executor's result-handler thread, and the old code then
    replayed the deterministic poison job against a brand-new worker.
    Wrapping every submission here turns any such failure into a
    :class:`~repro.service.protocol.ServiceError`, whose ``__reduce__``
    guarantees the pickle round-trip, so a bad job answers once with a
    structured error and the worker lives on.
    """
    try:
        return fn(*args)
    except protocol.ServiceError:
        raise
    except flow.DeadlineExceeded:
        raise protocol.ServiceError(
            protocol.DEADLINE_EXCEEDED,
            "job deadline expired in the worker",
            {"shard": _WORKER.get("shard")},
        ) from None
    except Exception as error:
        raise protocol.ServiceError(
            protocol.INTERNAL, f"job raised {type(error).__name__}: {error}"
        ) from None


def _worker_check(spec: dict[str, Any]) -> dict[str, Any]:
    """Run one check inside the worker; returns a JSON-compatible verdict.

    Composed-system operands (``{"system": ...}`` references) take the
    on-the-fly route of :mod:`repro.explore` by default -- the product is
    never materialised in the worker -- as does any check whose manifest
    entry sets ``on_the_fly``; setting it to false instead composes the
    system eagerly and runs the classic cached route.
    """
    from repro.core.errors import ReproError
    from repro.explore.system import SystemSpec, compose_eager

    enqueued = spec.get("enqueued")
    queue_wait = max(0.0, time.monotonic() - enqueued) if enqueued is not None else None
    # The scope covers operand resolution too: a store read for a job that
    # already out-queued its deadline is work the client will never see.
    with flow.deadline_scope(spec.get("deadline")):
        left = protocol.resolve_operand(spec["left"], _WORKER.get("store"))
        right = protocol.resolve_operand(spec["right"], _WORKER.get("store"))
        engine = _WORKER["engine"]
        composed = isinstance(left, SystemSpec) or isinstance(right, SystemSpec)
        on_the_fly = spec.get("on_the_fly")
        lazy = bool(on_the_fly) or (on_the_fly is None and composed)
        reduction = spec.get("reduction")
        try:
            if lazy:
                extra = dict(spec.get("params", {}))
                if reduction is not None:
                    extra["reduction"] = reduction
                verdict = engine.check_on_the_fly(
                    left,
                    right,
                    spec.get("notion", "observational"),
                    witness=bool(spec.get("witness", False)),
                    **extra,
                )
            else:
                if isinstance(left, SystemSpec):
                    left = compose_eager(left)
                if isinstance(right, SystemSpec):
                    right = compose_eager(right)
                verdict = engine.check(
                    left,
                    right,
                    spec.get("notion", "observational"),
                    align=bool(spec.get("align", True)),
                    witness=bool(spec.get("witness", False)),
                    **spec.get("params", {}),
                )
        except flow.DeadlineExceeded:
            raise
        except (ReproError, ValueError, TypeError) as error:
            raise _check_failed(error) from None
    _WORKER["checks"] += 1
    result = verdict.to_dict()
    if lazy:
        result["route"] = verdict.stats.details.get("route")
        result["pairs_visited"] = verdict.stats.details.get("pairs_visited")
        result["reduction"] = verdict.stats.details.get("reduction")
    result["shard"] = _WORKER["shard"]
    result["pid"] = os.getpid()
    if queue_wait is not None:
        result["queue_wait"] = round(queue_wait, 6)
    return result


def _worker_minimize(ref: Any, notion: str) -> dict[str, Any]:
    """Minimise one process inside the worker; returns the serialised quotient."""
    from repro.core.errors import ReproError
    from repro.utils.serialization import to_dict

    fsp = _worker_resolve(ref)
    try:
        minimal = _WORKER["engine"].minimize(fsp, notion=notion)
    except (ReproError, ValueError, TypeError) as error:
        raise _check_failed(error) from None
    return {
        "process": to_dict(minimal),
        "notion": notion,
        "states_before": fsp.num_states,
        "states_after": minimal.num_states,
        "shard": _WORKER["shard"],
    }


def _worker_classify(ref: Any) -> dict[str, Any]:
    """Classify one process inside the worker (Fig. 1a model hierarchy)."""
    from repro.core.classify import classify

    fsp = _worker_resolve(ref)
    return {
        "classes": sorted(str(model) for model in classify(fsp)),
        "states": fsp.num_states,
        "transitions": fsp.num_transitions,
        "shard": _WORKER["shard"],
    }


def _worker_stats() -> dict[str, Any]:
    """This worker's engine/store cache statistics (the ``stats`` RPC)."""
    store = _WORKER.get("store")
    return {
        "shard": _WORKER["shard"],
        "pid": os.getpid(),
        "checks": _WORKER["checks"],
        "engine": _WORKER["engine"].export_stats(node=_WORKER.get("node")),
        "store": store.cache_info() if store is not None else None,
    }


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class ShardPool:
    """``num_shards`` single-worker executors with digest-sticky routing."""

    def __init__(
        self,
        num_shards: int | None = None,
        store_root: str | os.PathLike | None = None,
        *,
        max_processes: int = DEFAULT_MAX_PROCESSES,
        max_verdicts: int = DEFAULT_MAX_VERDICTS,
        max_queue: int | None = None,
        steal_threshold: int | None = None,
        node_name: str | None = None,
    ) -> None:
        if num_shards is None:
            num_shards = max(1, os.cpu_count() or 1)
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be positive (or None for unbounded)")
        if steal_threshold is not None and steal_threshold < 1:
            raise ValueError("steal_threshold must be positive (or None to disable)")
        self.num_shards = num_shards
        self.store_root = str(store_root) if store_root is not None else None
        self.max_processes = max_processes
        self.max_verdicts = max_verdicts
        #: Backpressure bound: a shard refuses new checks (``overloaded``)
        #: once this many of its jobs are submitted-but-unfinished.
        self.max_queue = max_queue
        #: Work-stealing trigger: a stealable check leaves a home shard whose
        #: depth reached this bound for the least loaded shard.
        self.steal_threshold = steal_threshold
        #: Cluster-node identity stamped into each worker's exported engine
        #: stats (``None`` for the single-node service).
        self.node_name = node_name
        self._lock = threading.Lock()
        self._generations = [0] * num_shards
        self._depths = [0] * num_shards
        self._recent: list[OrderedDict[str, None]] = [OrderedDict() for _ in range(num_shards)]
        self._executors = [self._new_executor(index) for index in range(num_shards)]
        self._revivals = 0
        self._steals = 0
        self._overloads = 0

    def _new_executor(self, index: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=_MP_CONTEXT,
            initializer=_init_worker,
            initargs=(
                index,
                self.store_root,
                self.max_processes,
                self.max_verdicts,
                self.node_name,
            ),
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """The shard a routing key maps to (stable across runs and hosts).

        For a ``sha256:...`` content digest the hex itself is the hash; any
        other key is SHA-256'd first, so arbitrary strings route uniformly.
        """
        hex_part = ""
        if key.startswith("sha256:"):
            hex_part = key[len("sha256:") :]
        try:
            return int(hex_part[:16], 16) % self.num_shards
        except ValueError:
            # Not (valid) digest hex -- including malformed digests a client
            # sent: route by hashing the raw key so the worker's store lookup
            # gets to reject it with a proper unknown_digest error.
            hex_part = hashlib.sha256(key.encode("utf-8")).hexdigest()
            return int(hex_part[:16], 16) % self.num_shards

    def route_check(self, spec: dict[str, Any]) -> int:
        """The shard one check spec belongs to: keyed by its left process.

        Routing by the *left* reference means every manifest shaped ``one
        process vs many candidates`` stays entirely on one worker, whose
        engine then serves the repeated side from cache.

        Inline processes route by the digest of their canonically-serialised
        JSON, which equals the content digest whenever the dict came from
        ``to_dict`` (every library client does).  A hand-rolled client that
        inlines the same process with *unsorted* component lists still gets
        a deterministic shard, just not necessarily the digest's one --
        affinity is best-effort for non-canonical encodings, correctness is
        unaffected.
        """
        key = self.routing_key(spec)
        return self.shard_of(key) if key is not None else 0

    def routing_key(self, spec: dict[str, Any]) -> str | None:
        """The affinity key of one check spec (``None`` = unroutable, shard 0).

        Delegates to the module-level :func:`routing_key_of`, which the
        cluster coordinator shares so node affinity and shard affinity agree.
        """
        return routing_key_of(spec)

    # ------------------------------------------------------------------
    # submission with crash recovery
    # ------------------------------------------------------------------
    def submit(self, shard: int, fn, *args) -> Future:
        """Submit a raw job to one shard (no retry -- see :meth:`run`).

        Every job runs under :func:`_guarded` (so only worker death breaks
        the executor) and is counted against the shard's queue depth until
        its future resolves.
        """
        with self._lock:
            self._depths[shard] += 1
        try:
            future = self._executors[shard].submit(_guarded, fn, *args)
        except BaseException:
            self._job_done(shard)
            raise
        future.add_done_callback(lambda _future, shard=shard: self._job_done(shard))
        return future

    def _job_done(self, shard: int) -> None:
        with self._lock:
            if self._depths[shard] > 0:
                self._depths[shard] -= 1

    def revive(self, shard: int, generation: int) -> None:
        """Replace a broken shard executor (idempotent per generation)."""
        with self._lock:
            if self._generations[shard] != generation:
                return  # someone already revived this shard
            broken = self._executors[shard]
            self._generations[shard] += 1
            self._executors[shard] = self._new_executor(shard)
            self._revivals += 1
        broken.shutdown(wait=False, cancel_futures=True)

    def run(self, shard: int, fn, *args) -> Any:
        """Run one job on one shard, reviving the worker once if it crashed."""
        generation = self._generations[shard]
        try:
            return self.submit(shard, fn, *args).result()
        except BrokenProcessPool:
            self.revive(shard, generation)
            return self.submit(shard, fn, *args).result()

    async def run_async(self, shard: int, fn, *args) -> Any:
        """Awaitable :meth:`run` (used by the asyncio server)."""
        generation = self._generations[shard]
        try:
            return await asyncio.wrap_future(self.submit(shard, fn, *args))
        except BrokenProcessPool:
            self.revive(shard, generation)
            return await asyncio.wrap_future(self.submit(shard, fn, *args))

    # ------------------------------------------------------------------
    # the check-shaped surface (what the server and benchmarks call)
    # ------------------------------------------------------------------
    def plan_check(self, spec: dict[str, Any]) -> tuple[int, int]:
        """``(home, dispatch)`` shards for one spec, after flow control.

        The dispatch shard is the home shard unless work-stealing moves the
        job: with ``steal_threshold`` set, a *store-referenced* check (its
        left operand is a digest any worker resolves against the shared
        store) that is *cache-cold* on a backed-up home shard (its routing
        key was not dispatched there recently) migrates to the least loaded
        shard.  Hot or inline jobs stay home -- stealing them would squander
        exactly the affinity the digest routing exists to build.

        Raises
        ------
        ServiceError
            :data:`~repro.service.protocol.OVERLOADED` when ``max_queue`` is
            set and the chosen shard's queue is full; ``error.data`` carries
            a ``retry_after_ms`` hint.
        """
        home = self.route_check(spec)
        key = self.routing_key(spec)
        left = spec.get("left")
        store_referenced = isinstance(left, dict) and isinstance(left.get("digest"), str)
        with self._lock:
            shard = home
            if (
                self.steal_threshold is not None
                and store_referenced
                and self._depths[home] >= self.steal_threshold
                and key not in self._recent[home]
            ):
                target = min(range(self.num_shards), key=self._depths.__getitem__)
                if self._depths[target] < self._depths[home]:
                    shard = target
                    self._steals += 1
            if self.max_queue is not None and self._depths[shard] >= self.max_queue:
                self._overloads += 1
                depth = self._depths[shard]
                raise protocol.ServiceError(
                    protocol.OVERLOADED,
                    f"shard {shard} queue is full ({depth} jobs, max_queue={self.max_queue})",
                    {"retry_after_ms": 100, "shard": shard, "queue_depth": depth},
                )
            if key is not None:
                recent = self._recent[shard]
                recent[key] = None
                recent.move_to_end(key)
                if len(recent) > RECENT_KEYS_PER_SHARD:
                    recent.popitem(last=False)
        return home, shard

    def submit_check(
        self, spec: dict[str, Any], *, deadline: float | None = None
    ) -> tuple[int, int, dict[str, Any], Future]:
        """Plan and submit one check; ``(home, dispatch, job, future)``.

        The submitted job is a copy of ``spec`` stamped with its enqueue
        instant (for the worker's ``queue_wait`` telemetry) and, when given,
        the absolute monotonic ``deadline`` the worker enforces.
        """
        home, shard = self.plan_check(spec)
        job = dict(spec)
        job["enqueued"] = time.monotonic()
        if deadline is not None:
            job["deadline"] = deadline
        generation = self._generations[shard]
        try:
            future = self.submit(shard, _worker_check, job)
        except BrokenProcessPool:
            # The dispatch shard broke before accepting this job (a crash
            # left its executor unusable): revive it and fall back to the
            # home shard right away.
            self.revive(shard, generation)
            future = self.submit(home, _worker_check, job)
        return home, shard, job, future

    def check(self, spec: dict[str, Any], *, deadline: float | None = None) -> dict[str, Any]:
        """Run one check spec on its planned shard (blocking).

        A crashed dispatch shard is revived and the job retried once -- on
        its *home* shard, so a stolen job's fallback lands where its store
        reference is routed.
        """
        home, shard, job, future = self.submit_check(spec, deadline=deadline)
        generation = self._generations[shard]
        try:
            return future.result()
        except BrokenProcessPool:
            self.revive(shard, generation)
            return self.submit(home, _worker_check, job).result()

    async def run_async_check(
        self, spec: dict[str, Any], *, deadline: float | None = None
    ) -> dict[str, Any]:
        """Awaitable :meth:`check` with a deadline-bounded wait.

        The worker's own cooperative abort normally answers first (its
        ``deadline_exceeded`` error carries shard telemetry); the server-side
        :func:`asyncio.wait_for` at deadline + grace is the backstop for a
        worker stuck somewhere signals cannot reach.
        """
        home, shard, job, future = self.submit_check(spec, deadline=deadline)
        generation = self._generations[shard]
        try:
            return await self._await_job(future, deadline)
        except BrokenProcessPool:
            self.revive(shard, generation)
            return await self._await_job(self.submit(home, _worker_check, job), deadline)

    @staticmethod
    async def _await_job(future: Future, deadline: float | None) -> Any:
        wrapped = asyncio.wrap_future(future)
        remaining = flow.remaining_seconds(deadline)
        if remaining is None:
            return await wrapped
        try:
            return await asyncio.wait_for(wrapped, timeout=remaining + DEADLINE_GRACE_SECONDS)
        except asyncio.TimeoutError:
            raise protocol.ServiceError(
                protocol.DEADLINE_EXCEEDED,
                "deadline expired before the worker answered",
            ) from None

    def check_many(self, specs: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Fan a manifest out across the shards; results in manifest order.

        Jobs are submitted shard-sticky and collected in order; a shard that
        crashes mid-manifest is revived and its affected specs are re-run
        once each.
        """
        generations = list(self._generations)
        futures = []
        for spec in specs:
            shard = self.route_check(spec)
            futures.append((spec, shard, self.submit(shard, _worker_check, spec)))
        results = []
        for spec, shard, future in futures:
            try:
                results.append(future.result())
            except BrokenProcessPool:
                # One crash breaks every future still pending on that shard;
                # the stale generation snapshot makes revive() a no-op for
                # all of them but the first, so the shard restarts once per
                # crash, not once per affected spec.
                self.revive(shard, generations[shard])
                results.append(self.submit(shard, _worker_check, spec).result())
        return results

    def stats(self) -> list[dict[str, Any]]:
        """Per-shard worker statistics (engine + store cache info)."""
        return [self.run(shard, _worker_stats) for shard in range(self.num_shards)]

    def warm_up(self) -> None:
        """Fork every worker now (a no-op job per shard, awaited together).

        Executors spawn their worker lazily on first submit; forking that
        late -- from a process that has meanwhile started an asyncio loop
        and helper threads -- risks the classic fork-with-threads hazards.
        The server calls this before accepting connections so the forks
        happen while the process is still quiet (revival forks after a
        worker crash remain lazy, the rare case).
        """
        for future in [self.submit(shard, _worker_stats) for shard in range(self.num_shards)]:
            future.result()

    @property
    def revivals(self) -> int:
        """How many crashed shard workers have been replaced so far."""
        return self._revivals

    @property
    def steals(self) -> int:
        """How many checks migrated off their home shard so far."""
        return self._steals

    @property
    def overloads(self) -> int:
        """How many checks were refused with ``overloaded`` so far."""
        return self._overloads

    def queue_depths(self) -> list[int]:
        """Submitted-but-unfinished jobs per shard (a point-in-time read)."""
        with self._lock:
            return list(self._depths)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        for executor in self._executors:
            executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ShardPool(num_shards={self.num_shards}, store_root={self.store_root!r}, "
            f"max_queue={self.max_queue}, steal_threshold={self.steal_threshold}, "
            f"revivals={self._revivals}, steals={self._steals})"
        )
