"""The sharded worker pool: one single-process executor + engine per shard.

Kanellakis-Smolka checks over independent pairs are embarrassingly parallel,
but the engine's speed on server-style traffic comes from its *caches* --
and a naive shared pool scatters each process's checks across workers, so
every worker pays to compile the same artifacts.  A :class:`ShardPool`
instead owns ``num_shards`` :class:`~concurrent.futures.ProcessPoolExecutor`
instances of one worker process each, and routes every check by the content
digest of its left process (:func:`repro.utils.serialization.content_digest`).
The routing is therefore *sticky*: all checks touching a given process land
on the same worker, whose private bounded :class:`~repro.engine.Engine`
keeps that process's quotients, kernels and verdicts hot, while the shards
together multiply both the usable CPU and the aggregate cache capacity.

Worker lifecycle
----------------

Each worker is initialised (fork start method where available, so source
checkouts and pre-imported state carry over cheaply) with its shard index,
the shared read-only :class:`~repro.service.store.ProcessStore` root, and
its engine's cache bounds.  Job payloads are plain dicts and the results are
JSON-compatible dicts, so the inter-process traffic stays small; process
*references* resolve inside the worker against the content-addressed store,
which is exactly what lets a client upload a process once and check it
thousands of times without re-shipping it.

A crashed worker (OOM-killed, segfaulted C extension, ``os._exit``) breaks
its executor; :meth:`ShardPool.run` and :meth:`ShardPool.run_async` revive
the shard with a fresh executor -- the replacement worker starts with cold
caches but the content-addressed store still has every uploaded process --
and retry the job once before giving up.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.service import protocol
from repro.service.store import ProcessStore

try:  # pragma: no cover - always available on the supported platforms
    _MP_CONTEXT = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover - non-posix fallback
    _MP_CONTEXT = multiprocessing.get_context()

#: Default per-shard engine cache bounds (deliberately modest: the point of
#: sharding is that each worker only needs to hold *its* slice of the
#: working set, and per-worker memory is the budget operators actually set).
DEFAULT_MAX_PROCESSES = 64
DEFAULT_MAX_VERDICTS = 1024


# ----------------------------------------------------------------------
# worker-side state and job functions (top level: they must pickle)
# ----------------------------------------------------------------------
_WORKER: dict[str, Any] = {}


def _init_worker(
    shard_index: int,
    store_root: str | None,
    max_processes: int,
    max_verdicts: int,
) -> None:
    """Executor initializer: one engine (and store view) per worker process."""
    from repro.engine import Engine

    _WORKER["shard"] = shard_index
    _WORKER["engine"] = Engine(max_processes=max_processes, max_verdicts=max_verdicts)
    _WORKER["store"] = ProcessStore(store_root) if store_root is not None else None
    _WORKER["checks"] = 0


def _worker_resolve(ref: Any):
    return protocol.resolve_ref(ref, _WORKER.get("store"))


def _check_failed(error: Exception) -> protocol.ServiceError:
    return protocol.ServiceError(protocol.CHECK_FAILED, str(error))


def _worker_check(spec: dict[str, Any]) -> dict[str, Any]:
    """Run one check inside the worker; returns a JSON-compatible verdict.

    Composed-system operands (``{"system": ...}`` references) take the
    on-the-fly route of :mod:`repro.explore` by default -- the product is
    never materialised in the worker -- as does any check whose manifest
    entry sets ``on_the_fly``; setting it to false instead composes the
    system eagerly and runs the classic cached route.
    """
    from repro.core.errors import ReproError
    from repro.explore.system import SystemSpec, compose_eager

    left = protocol.resolve_operand(spec["left"], _WORKER.get("store"))
    right = protocol.resolve_operand(spec["right"], _WORKER.get("store"))
    engine = _WORKER["engine"]
    composed = isinstance(left, SystemSpec) or isinstance(right, SystemSpec)
    on_the_fly = spec.get("on_the_fly")
    lazy = bool(on_the_fly) or (on_the_fly is None and composed)
    try:
        if lazy:
            verdict = engine.check_on_the_fly(
                left,
                right,
                spec.get("notion", "observational"),
                witness=bool(spec.get("witness", False)),
                **spec.get("params", {}),
            )
        else:
            if isinstance(left, SystemSpec):
                left = compose_eager(left)
            if isinstance(right, SystemSpec):
                right = compose_eager(right)
            verdict = engine.check(
                left,
                right,
                spec.get("notion", "observational"),
                align=bool(spec.get("align", True)),
                witness=bool(spec.get("witness", False)),
                **spec.get("params", {}),
            )
    except (ReproError, ValueError, TypeError) as error:
        raise _check_failed(error) from None
    _WORKER["checks"] += 1
    result = verdict.to_dict()
    if lazy:
        result["route"] = verdict.stats.details.get("route")
        result["pairs_visited"] = verdict.stats.details.get("pairs_visited")
    result["shard"] = _WORKER["shard"]
    result["pid"] = os.getpid()
    return result


def _worker_minimize(ref: Any, notion: str) -> dict[str, Any]:
    """Minimise one process inside the worker; returns the serialised quotient."""
    from repro.core.errors import ReproError
    from repro.utils.serialization import to_dict

    fsp = _worker_resolve(ref)
    try:
        minimal = _WORKER["engine"].minimize(fsp, notion=notion)
    except (ReproError, ValueError, TypeError) as error:
        raise _check_failed(error) from None
    return {
        "process": to_dict(minimal),
        "notion": notion,
        "states_before": fsp.num_states,
        "states_after": minimal.num_states,
        "shard": _WORKER["shard"],
    }


def _worker_classify(ref: Any) -> dict[str, Any]:
    """Classify one process inside the worker (Fig. 1a model hierarchy)."""
    from repro.core.classify import classify

    fsp = _worker_resolve(ref)
    return {
        "classes": sorted(str(model) for model in classify(fsp)),
        "states": fsp.num_states,
        "transitions": fsp.num_transitions,
        "shard": _WORKER["shard"],
    }


def _worker_stats() -> dict[str, Any]:
    """This worker's engine/store cache statistics (the ``stats`` RPC)."""
    store = _WORKER.get("store")
    return {
        "shard": _WORKER["shard"],
        "pid": os.getpid(),
        "checks": _WORKER["checks"],
        "engine": _WORKER["engine"].export_stats(),
        "store": store.cache_info() if store is not None else None,
    }


# ----------------------------------------------------------------------
# the pool
# ----------------------------------------------------------------------
class ShardPool:
    """``num_shards`` single-worker executors with digest-sticky routing."""

    def __init__(
        self,
        num_shards: int | None = None,
        store_root: str | os.PathLike | None = None,
        *,
        max_processes: int = DEFAULT_MAX_PROCESSES,
        max_verdicts: int = DEFAULT_MAX_VERDICTS,
    ) -> None:
        if num_shards is None:
            num_shards = max(1, os.cpu_count() or 1)
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        self.num_shards = num_shards
        self.store_root = str(store_root) if store_root is not None else None
        self.max_processes = max_processes
        self.max_verdicts = max_verdicts
        self._lock = threading.Lock()
        self._generations = [0] * num_shards
        self._executors = [self._new_executor(index) for index in range(num_shards)]
        self._revivals = 0

    def _new_executor(self, index: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=_MP_CONTEXT,
            initializer=_init_worker,
            initargs=(index, self.store_root, self.max_processes, self.max_verdicts),
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """The shard a routing key maps to (stable across runs and hosts).

        For a ``sha256:...`` content digest the hex itself is the hash; any
        other key is SHA-256'd first, so arbitrary strings route uniformly.
        """
        hex_part = ""
        if key.startswith("sha256:"):
            hex_part = key[len("sha256:") :]
        try:
            return int(hex_part[:16], 16) % self.num_shards
        except ValueError:
            # Not (valid) digest hex -- including malformed digests a client
            # sent: route by hashing the raw key so the worker's store lookup
            # gets to reject it with a proper unknown_digest error.
            hex_part = hashlib.sha256(key.encode("utf-8")).hexdigest()
            return int(hex_part[:16], 16) % self.num_shards

    def route_check(self, spec: dict[str, Any]) -> int:
        """The shard one check spec belongs to: keyed by its left process.

        Routing by the *left* reference means every manifest shaped ``one
        process vs many candidates`` stays entirely on one worker, whose
        engine then serves the repeated side from cache.

        Inline processes route by the digest of their canonically-serialised
        JSON, which equals the content digest whenever the dict came from
        ``to_dict`` (every library client does).  A hand-rolled client that
        inlines the same process with *unsorted* component lists still gets
        a deterministic shard, just not necessarily the digest's one --
        affinity is best-effort for non-canonical encodings, correctness is
        unaffected.
        """
        ref = spec.get("left")
        if isinstance(ref, dict):
            if isinstance(ref.get("digest"), str):
                return self.shard_of(ref["digest"])
            if "process" in ref or "system" in ref:
                # Canonical separators match utils.serialization.canonical_bytes,
                # so an inline copy of a stored process routes to the same
                # shard as its digest reference (the cache-affinity promise);
                # composed-system documents hash the same way, keeping
                # repeated questions about one system on one worker.
                body = ref.get("process", ref.get("system"))
                canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
                return self.shard_of("sha256:" + hashlib.sha256(canonical.encode()).hexdigest())
        return 0

    # ------------------------------------------------------------------
    # submission with crash recovery
    # ------------------------------------------------------------------
    def submit(self, shard: int, fn, *args) -> Future:
        """Submit a raw job to one shard (no retry -- see :meth:`run`)."""
        return self._executors[shard].submit(fn, *args)

    def revive(self, shard: int, generation: int) -> None:
        """Replace a broken shard executor (idempotent per generation)."""
        with self._lock:
            if self._generations[shard] != generation:
                return  # someone already revived this shard
            broken = self._executors[shard]
            self._generations[shard] += 1
            self._executors[shard] = self._new_executor(shard)
            self._revivals += 1
        broken.shutdown(wait=False, cancel_futures=True)

    def run(self, shard: int, fn, *args) -> Any:
        """Run one job on one shard, reviving the worker once if it crashed."""
        generation = self._generations[shard]
        try:
            return self.submit(shard, fn, *args).result()
        except BrokenProcessPool:
            self.revive(shard, generation)
            return self.submit(shard, fn, *args).result()

    async def run_async(self, shard: int, fn, *args) -> Any:
        """Awaitable :meth:`run` (used by the asyncio server)."""
        generation = self._generations[shard]
        try:
            return await asyncio.wrap_future(self.submit(shard, fn, *args))
        except BrokenProcessPool:
            self.revive(shard, generation)
            return await asyncio.wrap_future(self.submit(shard, fn, *args))

    # ------------------------------------------------------------------
    # the check-shaped surface (what the server and benchmarks call)
    # ------------------------------------------------------------------
    def check(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Run one check spec on its routed shard."""
        return self.run(self.route_check(spec), _worker_check, spec)

    def check_many(self, specs: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Fan a manifest out across the shards; results in manifest order.

        Jobs are submitted shard-sticky and collected in order; a shard that
        crashes mid-manifest is revived and its affected specs are re-run
        once each.
        """
        generations = list(self._generations)
        futures = []
        for spec in specs:
            shard = self.route_check(spec)
            futures.append((spec, shard, self.submit(shard, _worker_check, spec)))
        results = []
        for spec, shard, future in futures:
            try:
                results.append(future.result())
            except BrokenProcessPool:
                # One crash breaks every future still pending on that shard;
                # the stale generation snapshot makes revive() a no-op for
                # all of them but the first, so the shard restarts once per
                # crash, not once per affected spec.
                self.revive(shard, generations[shard])
                results.append(self.submit(shard, _worker_check, spec).result())
        return results

    def stats(self) -> list[dict[str, Any]]:
        """Per-shard worker statistics (engine + store cache info)."""
        return [self.run(shard, _worker_stats) for shard in range(self.num_shards)]

    def warm_up(self) -> None:
        """Fork every worker now (a no-op job per shard, awaited together).

        Executors spawn their worker lazily on first submit; forking that
        late -- from a process that has meanwhile started an asyncio loop
        and helper threads -- risks the classic fork-with-threads hazards.
        The server calls this before accepting connections so the forks
        happen while the process is still quiet (revival forks after a
        worker crash remain lazy, the rare case).
        """
        for future in [self.submit(shard, _worker_stats) for shard in range(self.num_shards)]:
            future.result()

    @property
    def revivals(self) -> int:
        """How many crashed shard workers have been replaced so far."""
        return self._revivals

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        for executor in self._executors:
            executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ShardPool(num_shards={self.num_shards}, store_root={self.store_root!r}, "
            f"revivals={self._revivals})"
        )
