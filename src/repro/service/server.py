"""The asyncio equivalence server: NDJSON RPCs fanned out over shard workers.

:class:`EquivalenceServer` owns one :class:`~repro.service.store.ProcessStore`
(where ``store`` uploads land) and one
:class:`~repro.service.shards.ShardPool` (where every check, minimisation and
classification actually runs).  The asyncio side never computes anything --
each connection is a cheap coroutine that parses frames, routes jobs to the
pool, and streams responses back -- so thousands of idle connections cost
almost nothing and the CPU-bound work saturates the worker processes.

Requests on one connection are answered in order (clients may pipeline);
``check_many`` fans its specs out across shards concurrently and reassembles
the results in manifest order, reporting per-check errors inline so one bad
spec cannot poison a 10,000-check batch.

See ``docs/service-protocol.md`` for the wire format and a copy-pasteable
session, and :mod:`repro.service.client` for the matching client.
"""

from __future__ import annotations

import asyncio
import tempfile
from typing import Any

from repro import __version__
from repro.service import protocol
from repro.service.protocol import DEFAULT_PORT
from repro.service.shards import (
    DEFAULT_MAX_PROCESSES,
    DEFAULT_MAX_VERDICTS,
    ShardPool,
    _worker_check,
    _worker_classify,
    _worker_minimize,
)
from repro.service.store import ProcessStore


class EquivalenceServer:
    """A line-delimited-JSON equivalence-checking server.

    Parameters
    ----------
    host, port:
        Listen address; port 0 picks a free port (see :attr:`port` after
        :meth:`start`).
    store_root:
        Directory of the content-addressed process store, shared with every
        shard worker.  None creates a private temporary directory that lives
        as long as the server object.
    num_shards:
        Worker count of the shard pool (default: one per CPU).
    max_processes, max_verdicts:
        Per-shard engine cache bounds.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        store_root: str | None = None,
        num_shards: int | None = None,
        max_processes: int = DEFAULT_MAX_PROCESSES,
        max_verdicts: int = DEFAULT_MAX_VERDICTS,
    ) -> None:
        self.host = host
        self.port = port
        self._tempdir: tempfile.TemporaryDirectory | None = None
        if store_root is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-service-")
            store_root = self._tempdir.name
        # The front-end store only ever *writes* (digest resolution happens
        # in the shard workers against their own instances), so a large
        # in-memory cache here would just pin dead uploads.
        self.store = ProcessStore(store_root, max_cached=8)
        self.pool = ShardPool(
            num_shards,
            store_root,
            max_processes=max_processes,
            max_verdicts=max_verdicts,
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections = 0
        self._requests = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (updates :attr:`port`)."""
        # Fork all shard workers before the loop gets busy (threads + fork
        # do not mix; see ShardPool.warm_up) -- also moves the start-up cost
        # out of the first request's latency.  Deliberately synchronous: a
        # helper thread here would itself widen the fork window.
        self.pool.warm_up()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_FRAME_BYTES + 2,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` entry point)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.pool.shutdown()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # StreamReader's limit tripped: the frame is over-long.
                    writer.write(
                        protocol.error_response(
                            None, protocol.BAD_REQUEST, "frame exceeds the size limit"
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # EOF: client closed the connection
                if line.strip() == b"":
                    continue
                writer.write(await self._respond(line))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client vanished
            pass
        except asyncio.CancelledError:
            # Server shutdown with this connection open.  Returning normally
            # (instead of propagating) keeps asyncio.streams' connection
            # callback from logging a spurious traceback per connection.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # CancelledError: server shutdown with this connection open;
                # the socket is already closed, a traceback would be noise.
                pass

    async def _respond(self, line: bytes) -> bytes:
        """One request line in, one response line out (never raises)."""
        request_id: Any = None
        try:
            document = protocol.decode_frame(line)
            request_id = document.get("id")
            op, params = protocol.validate_request(document)
            self._requests += 1
            result = await self._dispatch(op, params)
            return protocol.ok_response(request_id, result)
        except protocol.ProtocolError as error:
            return protocol.error_response(request_id, protocol.BAD_REQUEST, str(error))
        except protocol.ServiceError as error:
            return protocol.error_response(request_id, error.code, error.message)
        except Exception as error:  # last-resort guard: a bug must not kill the connection
            return protocol.error_response(request_id, protocol.INTERNAL, repr(error))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _dispatch(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        if op == "ping":
            return {"pong": True, "version": __version__, "shards": self.pool.num_shards}
        if op == "store":
            return await self._op_store(params)
        if op == "check":
            return await self._op_check(params)
        if op == "check_many":
            return await self._op_check_many(params)
        if op == "minimize":
            return await self._op_minimize(params)
        if op == "classify":
            return await self._op_classify(params)
        if op == "stats":
            return await self._op_stats()
        raise protocol.ServiceError(protocol.UNKNOWN_OP, f"unhandled op {op!r}")  # unreachable

    async def _op_store(self, params: dict[str, Any]) -> dict[str, Any]:
        ref = params.get("process")
        if ref is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "store needs a 'process' (inline serialised FSP)"
            )

        def put() -> dict[str, Any]:
            # Validation, digesting and the disk write are CPU/IO work; run
            # them off the event loop so a large upload cannot stall other
            # connections (the store's cache bookkeeping is lock-protected).
            fsp = protocol.resolve_ref({"process": ref})
            digest = self.store.put(fsp)
            return {
                "digest": digest,
                "states": fsp.num_states,
                "transitions": fsp.num_transitions,
            }

        return await asyncio.to_thread(put)

    @staticmethod
    def _check_spec(params: dict[str, Any], defaults: dict[str, Any]) -> dict[str, Any]:
        """Normalise one check's parameters into a worker job spec."""
        spec = {
            "left": params.get("left"),
            "right": params.get("right"),
            "notion": params.get("notion", defaults.get("notion", "observational")),
            "align": bool(params.get("align", defaults.get("align", True))),
            "witness": bool(params.get("witness", defaults.get("witness", False))),
            # None means "decide by operand shape": composed-system operands
            # take the lazy route, plain processes the cached eager route.
            "on_the_fly": params.get("on_the_fly", defaults.get("on_the_fly")),
            "params": params.get("params", {}),
        }
        if spec["left"] is None or spec["right"] is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "a check needs 'left' and 'right' process references"
            )
        if not isinstance(spec["params"], dict):
            raise protocol.ServiceError(protocol.BAD_REQUEST, "'params' must be a JSON object")
        return spec

    async def _op_check(self, params: dict[str, Any]) -> dict[str, Any]:
        spec = self._check_spec(params, {})
        shard = self.pool.route_check(spec)
        return await self.pool.run_async(shard, _worker_check, spec)

    async def _op_check_many(self, params: dict[str, Any]) -> dict[str, Any]:
        checks = params.get("checks")
        if not isinstance(checks, list):
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "check_many needs a 'checks' list of check objects"
            )
        defaults = {
            "notion": params.get("notion", "observational"),
            "align": params.get("align", True),
            "witness": params.get("witness", False),
            "on_the_fly": params.get("on_the_fly"),
        }
        specs = []
        for index, item in enumerate(checks):
            if not isinstance(item, dict):
                raise protocol.ServiceError(
                    protocol.BAD_REQUEST, f"check #{index} must be an object"
                )
            specs.append(self._check_spec(item, defaults))

        async def one(spec: dict[str, Any]) -> dict[str, Any]:
            from concurrent.futures.process import BrokenProcessPool

            try:
                return await self.pool.run_async(self.pool.route_check(spec), _worker_check, spec)
            except protocol.ServiceError as error:
                # Per-check failure: reported inline, the batch continues.
                return {"error": {"code": error.code, "message": error.message}}
            except BrokenProcessPool:
                # The spec killed its worker even after the revive-and-retry:
                # report it inline rather than poisoning the whole batch.
                return {
                    "error": {
                        "code": protocol.INTERNAL,
                        "message": "worker process crashed while serving this check",
                    }
                }
            except Exception as error:
                # Any other worker-side failure (e.g. a corrupt store entry)
                # is also confined to its own slot of the batch.
                return {"error": {"code": protocol.INTERNAL, "message": repr(error)}}

        results = await asyncio.gather(*(one(spec) for spec in specs))
        equivalent = sum(1 for r in results if r.get("equivalent") is True)
        failed = sum(1 for r in results if "error" in r)
        return {
            "results": list(results),
            "summary": {
                "checks": len(results),
                "equivalent": equivalent,
                "inequivalent": len(results) - equivalent - failed,
                "failed": failed,
            },
        }

    async def _op_minimize(self, params: dict[str, Any]) -> dict[str, Any]:
        ref = params.get("process")
        if ref is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "minimize needs a 'process' reference"
            )
        notion = params.get("notion", "observational")
        shard = self.pool.route_check({"left": ref})
        return await self.pool.run_async(shard, _worker_minimize, ref, notion)

    async def _op_classify(self, params: dict[str, Any]) -> dict[str, Any]:
        ref = params.get("process")
        if ref is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "classify needs a 'process' reference"
            )
        shard = self.pool.route_check({"left": ref})
        return await self.pool.run_async(shard, _worker_classify, ref)

    async def _op_stats(self) -> dict[str, Any]:
        from repro.service.shards import _worker_stats

        shard_stats = await asyncio.gather(
            *(
                self.pool.run_async(shard, _worker_stats)
                for shard in range(self.pool.num_shards)
            )
        )
        return {
            "server": {
                "version": __version__,
                "shards": self.pool.num_shards,
                "connections": self._connections,
                "requests": self._requests,
                "revivals": self.pool.revivals,
                "store": self.store.cache_info(),
            },
            "shards": list(shard_stats),
        }


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    store_root: str | None = None,
    num_shards: int | None = None,
    max_processes: int = DEFAULT_MAX_PROCESSES,
    max_verdicts: int = DEFAULT_MAX_VERDICTS,
) -> None:
    """Blocking entry point used by ``repro serve`` (Ctrl-C to stop)."""

    async def main() -> None:
        server = EquivalenceServer(
            host,
            port,
            store_root=store_root,
            num_shards=num_shards,
            max_processes=max_processes,
            max_verdicts=max_verdicts,
        )
        await server.start()
        print(
            f"repro service on {server.host}:{server.port} "
            f"({server.pool.num_shards} shard(s), store at {server.store.root})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
