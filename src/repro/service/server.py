"""The asyncio equivalence server: NDJSON RPCs fanned out over shard workers.

:class:`EquivalenceServer` owns one :class:`~repro.service.store.ProcessStore`
(where ``store`` uploads land) and one
:class:`~repro.service.shards.ShardPool` (where every check, minimisation and
classification actually runs).  The asyncio side never computes anything --
each connection is a cheap coroutine that parses frames, routes jobs to the
pool, and streams responses back -- so thousands of idle connections cost
almost nothing and the CPU-bound work saturates the worker processes.

Requests on one connection are answered in order (clients may pipeline);
``check_many`` fans its specs out across shards concurrently and reassembles
the results in manifest order, reporting per-check errors inline so one bad
spec cannot poison a 10,000-check batch.

Production posture
------------------

* **Deadlines.**  ``check``/``check_many``/``minimize``/``classify`` accept
  ``deadline_ms``; checks thread the deadline into the worker for
  cooperative cancellation (:mod:`repro.service.flow`), the rest get a
  server-side watchdog.  Either way the client sees a structured
  ``deadline_exceeded`` error instead of an unbounded wait.
* **Quotas.**  With ``quota_rps`` set, each client address draws compute
  requests from a token bucket (``check_many`` costs one token per check)
  and is answered ``overloaded`` -- with ``retry_after_ms`` -- when it
  outruns its rate.  Combined with the pool's bounded queues this is the
  backpressure story: reject early, never wedge.
* **Metrics.**  One :class:`~repro.service.metrics.MetricsRegistry` counts
  requests/errors per op, times requests, queue waits and engine seconds,
  and gauges live queue depths; exported by the ``metrics`` RPC (JSON) and,
  with ``metrics_port``, a Prometheus-text HTTP endpoint.  ``trace_stream``
  additionally logs one JSON record per request (id, op, client, shard,
  queue wait, engine time, cache provenance).

See ``docs/service-protocol.md`` for the wire format and a copy-pasteable
session, and :mod:`repro.service.client` for the matching client.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from collections import OrderedDict
from typing import IO, Any

from repro import __version__
from repro.service import flow, protocol
from repro.service.metrics import MetricsRegistry, TraceLog
from repro.service.protocol import DEFAULT_PORT
from repro.service.shards import (
    DEFAULT_MAX_PROCESSES,
    DEFAULT_MAX_VERDICTS,
    ShardPool,
    _worker_classify,
    _worker_minimize,
)
from repro.service.store import ProcessStore

#: Most-recently-active client addresses with live token buckets; beyond
#: this, the coldest bucket is evicted (a returning client simply starts a
#: fresh, full bucket).
MAX_QUOTA_CLIENTS = 1024

#: Operations that never cost quota tokens: they are O(1) reads a client
#: needs precisely when it is being throttled.
QUOTA_EXEMPT_OPS = frozenset({"ping", "stats", "metrics"})


class EquivalenceServer:
    """A line-delimited-JSON equivalence-checking server.

    Parameters
    ----------
    host, port:
        Listen address; port 0 picks a free port (see :attr:`port` after
        :meth:`start`).
    store_root:
        Directory of the content-addressed process store, shared with every
        shard worker.  None creates a private temporary directory that lives
        as long as the server object.
    num_shards:
        Worker count of the shard pool (default: one per CPU).
    max_processes, max_verdicts:
        Per-shard engine cache bounds.
    max_queue, steal_threshold:
        Shard-pool flow control (see :class:`~repro.service.shards.ShardPool`):
        bounded per-shard queues and the work-stealing trigger.  Both default
        to off, preserving the pre-hardening behaviour.
    quota_rps, quota_burst:
        Per-client token-bucket quota (requests/second and burst capacity);
        ``quota_rps=None`` disables quotas, ``quota_burst=None`` defaults to
        twice the rate.
    metrics_port:
        Port for the Prometheus-text HTTP endpoint (0 picks a free port;
        None disables it).  Bound on the same host as the service.
    trace_stream:
        A text stream for per-request JSON trace records (``--trace`` passes
        stderr); None disables tracing.
    node_name:
        Cluster-node identity of this server (``repro cluster serve-node
        --name``).  Reported by ``ping``/``stats`` and stamped into each
        worker's exported engine stats so a gateway scraping several nodes
        renders their counters as distinct ``node=``-labelled series.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        store_root: str | None = None,
        num_shards: int | None = None,
        max_processes: int = DEFAULT_MAX_PROCESSES,
        max_verdicts: int = DEFAULT_MAX_VERDICTS,
        max_queue: int | None = None,
        steal_threshold: int | None = None,
        quota_rps: float | None = None,
        quota_burst: float | None = None,
        metrics_port: int | None = None,
        trace_stream: IO[str] | None = None,
        node_name: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.metrics_port = metrics_port
        self.node_name = node_name
        self._tempdir: tempfile.TemporaryDirectory | None = None
        if store_root is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-service-")
            store_root = self._tempdir.name
        # The front-end store only ever *writes* (digest resolution happens
        # in the shard workers against their own instances), so a large
        # in-memory cache here would just pin dead uploads.
        self.store = ProcessStore(store_root, max_cached=8)
        self.pool = ShardPool(
            num_shards,
            store_root,
            max_processes=max_processes,
            max_verdicts=max_verdicts,
            max_queue=max_queue,
            steal_threshold=steal_threshold,
            node_name=node_name,
        )
        if quota_rps is not None and quota_rps <= 0:
            raise ValueError("quota_rps must be positive (or None to disable quotas)")
        self._quota_rps = quota_rps
        self._quota_burst = quota_burst if quota_burst is not None else (
            2.0 * quota_rps if quota_rps is not None else None
        )
        # Buckets live on the event-loop thread only, so no lock is needed.
        self._buckets: OrderedDict[str, flow.TokenBucket] = OrderedDict()
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._connections = 0
        self._open_connections = 0
        self._requests = 0
        self._trace = TraceLog(trace_stream) if trace_stream is not None else None
        self.registry = MetricsRegistry()
        self._init_metrics()

    def _init_metrics(self) -> None:
        registry = self.registry
        self._m_requests = registry.counter(
            "repro_service_requests_total", "Requests served, by op", ("op",)
        )
        self._m_errors = registry.counter(
            "repro_service_errors_total", "Error responses, by op and code", ("op", "code")
        )
        self._m_request_seconds = registry.histogram(
            "repro_service_request_seconds", "End-to-end request latency, by op", ("op",)
        )
        self._m_queue_wait = registry.histogram(
            "repro_service_queue_wait_seconds", "Check queue wait, by shard", ("shard",)
        )
        self._m_engine_seconds = registry.histogram(
            "repro_service_engine_seconds", "Engine time per check, by notion", ("notion",)
        )
        self._m_cache = registry.counter(
            "repro_service_check_cache_total", "Check verdict cache hits/misses", ("outcome",)
        )
        registry.gauge(
            "repro_service_open_connections", "Currently open client connections"
        ).labels().set_function(lambda: self._open_connections)
        registry.gauge(
            "repro_service_pool_revivals", "Crashed shard workers replaced"
        ).labels().set_function(lambda: self.pool.revivals)
        registry.gauge(
            "repro_service_pool_steals", "Checks migrated off their home shard"
        ).labels().set_function(lambda: self.pool.steals)
        registry.gauge(
            "repro_service_pool_overloads", "Checks refused by full shard queues"
        ).labels().set_function(lambda: self.pool.overloads)
        depth = registry.gauge(
            "repro_service_shard_queue_depth", "Submitted-but-unfinished jobs, by shard", ("shard",)
        )
        for shard in range(self.pool.num_shards):
            depth.labels(str(shard)).set_function(
                lambda shard=shard: self.pool.queue_depths()[shard]
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (updates :attr:`port`)."""
        # Fork all shard workers before the loop gets busy (threads + fork
        # do not mix; see ShardPool.warm_up) -- also moves the start-up cost
        # out of the first request's latency.  Deliberately synchronous: a
        # helper thread here would itself widen the fork window.
        self.pool.warm_up()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_FRAME_BYTES + 2,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, self.host, self.metrics_port
            )
            self.metrics_port = self._metrics_server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``repro serve`` entry point)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        self.pool.shutdown()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        self._open_connections += 1
        peername = writer.get_extra_info("peername")
        peer = str(peername[0]) if isinstance(peername, tuple) and peername else "unknown"
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # StreamReader's limit tripped: the frame is over-long.
                    writer.write(
                        protocol.error_response(
                            None, protocol.BAD_REQUEST, "frame exceeds the size limit"
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break  # EOF: client closed the connection
                if line.strip() == b"":
                    continue
                writer.write(await self._respond(line, peer))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client vanished
            pass
        except asyncio.CancelledError:
            # Server shutdown with this connection open.  Returning normally
            # (instead of propagating) keeps asyncio.streams' connection
            # callback from logging a spurious traceback per connection.
            pass
        finally:
            self._open_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # CancelledError: server shutdown with this connection open;
                # the socket is already closed, a traceback would be noise.
                pass

    async def _respond(self, line: bytes, peer: str = "unknown") -> bytes:
        """One request line in, one response line out (never raises)."""
        request_id: Any = None
        op: str | None = None
        started = time.monotonic()
        try:
            document = protocol.decode_frame(line)
            request_id = document.get("id")
            op, params = protocol.validate_request(document)
            self._requests += 1
            self._enforce_quota(peer, op, params)
            result = await self._dispatch(op, params)
            self._observe(op, None, started)
            self._trace_record(request_id, peer, op, "ok", started, result)
            return protocol.ok_response(request_id, result)
        except protocol.ProtocolError as error:
            self._observe(op, protocol.BAD_REQUEST, started)
            self._trace_record(request_id, peer, op, protocol.BAD_REQUEST, started, None)
            return protocol.error_response(request_id, protocol.BAD_REQUEST, str(error))
        except protocol.ServiceError as error:
            self._observe(op, error.code, started)
            self._trace_record(request_id, peer, op, error.code, started, None)
            return protocol.error_response(request_id, error.code, error.message, error.data)
        except Exception as error:  # last-resort guard: a bug must not kill the connection
            self._observe(op, protocol.INTERNAL, started)
            self._trace_record(request_id, peer, op, protocol.INTERNAL, started, None)
            return protocol.error_response(request_id, protocol.INTERNAL, repr(error))

    # ------------------------------------------------------------------
    # flow control and observability
    # ------------------------------------------------------------------
    def _enforce_quota(self, peer: str, op: str, params: dict[str, Any]) -> None:
        """Charge one client's token bucket for a compute op (or reject)."""
        if self._quota_rps is None or op in QUOTA_EXEMPT_OPS:
            return
        bucket = self._buckets.get(peer)
        if bucket is None:
            assert self._quota_burst is not None
            bucket = flow.TokenBucket(self._quota_rps, self._quota_burst)
            self._buckets[peer] = bucket
            if len(self._buckets) > MAX_QUOTA_CLIENTS:
                self._buckets.popitem(last=False)
        self._buckets.move_to_end(peer)
        cost = 1.0
        if op == "check_many":
            checks = params.get("checks")
            if isinstance(checks, list):
                cost = float(max(1, len(checks)))
        wait = bucket.try_acquire(cost)
        if wait > 0:
            raise protocol.ServiceError(
                protocol.OVERLOADED,
                f"client quota exceeded ({self._quota_rps:g} requests/s)",
                {"retry_after_ms": int(wait * 1000) + 1},
            )

    def _observe(self, op: str | None, code: str | None, started: float) -> None:
        label = op or "invalid"
        self._m_requests.labels(label).inc()
        self._m_request_seconds.labels(label).observe(time.monotonic() - started)
        if code is not None:
            self._m_errors.labels(label, code).inc()

    def _observe_check(self, result: dict[str, Any]) -> None:
        """Fold one successful check result into the histograms."""
        queue_wait = result.get("queue_wait")
        if isinstance(queue_wait, (int, float)):
            self._m_queue_wait.labels(str(result.get("shard", "?"))).observe(float(queue_wait))
        seconds = result.get("seconds")
        if isinstance(seconds, (int, float)):
            self._m_engine_seconds.labels(str(result.get("notion", "?"))).observe(float(seconds))
        if "from_cache" in result:
            self._m_cache.labels("hit" if result.get("from_cache") else "miss").inc()

    def _trace_record(
        self,
        request_id: Any,
        peer: str,
        op: str | None,
        status: str,
        started: float,
        result: dict[str, Any] | None,
    ) -> None:
        if self._trace is None:
            return
        fields: dict[str, Any] = {
            "id": request_id,
            "peer": peer,
            "op": op or "invalid",
            "status": status,
            "seconds": round(time.monotonic() - started, 6),
        }
        if isinstance(result, dict) and "shard" in result:
            fields["shard"] = result.get("shard")
            if "queue_wait" in result:
                fields["queue_wait"] = result.get("queue_wait")
            if "seconds" in result:
                fields["engine_seconds"] = result.get("seconds")
            if "from_cache" in result:
                fields["cache"] = "hit" if result.get("from_cache") else "miss"
        self._trace.record(**fields)

    @staticmethod
    def _deadline_from(params: dict[str, Any]) -> float | None:
        """``deadline_ms`` (a duration) as an absolute monotonic instant."""
        value = params.get("deadline_ms")
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "'deadline_ms' must be a positive number of milliseconds"
            )
        return time.monotonic() + float(value) / 1000.0

    async def _run_with_watchdog(self, shard: int, deadline: float | None, fn, *args) -> Any:
        """``pool.run_async`` bounded by a server-side deadline.

        Used by ops whose workers do not thread deadlines internally
        (minimize/classify): the job itself is not cancelled, but the client
        gets its structured timeout instead of an unbounded wait.
        """
        coro = self.pool.run_async(shard, fn, *args)
        remaining = flow.remaining_seconds(deadline)
        if remaining is None:
            return await coro
        try:
            return await asyncio.wait_for(coro, timeout=max(remaining, 0.0))
        except asyncio.TimeoutError:
            raise protocol.ServiceError(
                protocol.DEADLINE_EXCEEDED, "deadline expired before the worker answered"
            ) from None

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _dispatch(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        if op == "ping":
            pong = {"pong": True, "version": __version__, "shards": self.pool.num_shards}
            if self.node_name is not None:
                pong["node"] = self.node_name
            return pong
        if op == "store":
            return await self._op_store(params)
        if op == "check":
            return await self._op_check(params)
        if op == "check_many":
            return await self._op_check_many(params)
        if op == "minimize":
            return await self._op_minimize(params)
        if op == "classify":
            return await self._op_classify(params)
        if op == "stats":
            return await self._op_stats()
        if op == "metrics":
            return {"metrics": self.registry.snapshot()}
        raise protocol.ServiceError(protocol.UNKNOWN_OP, f"unhandled op {op!r}")  # unreachable

    async def _op_store(self, params: dict[str, Any]) -> dict[str, Any]:
        ref = params.get("process")
        if ref is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "store needs a 'process' (inline serialised FSP)"
            )

        def put() -> dict[str, Any]:
            # Validation, digesting and the disk write are CPU/IO work; run
            # them off the event loop so a large upload cannot stall other
            # connections (the store's cache bookkeeping is lock-protected).
            fsp = protocol.resolve_ref({"process": ref})
            digest = self.store.put(fsp)
            return {
                "digest": digest,
                "states": fsp.num_states,
                "transitions": fsp.num_transitions,
            }

        return await asyncio.to_thread(put)

    @staticmethod
    def _check_spec(params: dict[str, Any], defaults: dict[str, Any]) -> dict[str, Any]:
        """Normalise one check's parameters into a worker job spec."""
        spec = {
            "left": params.get("left"),
            "right": params.get("right"),
            "notion": params.get("notion", defaults.get("notion", "observational")),
            "align": bool(params.get("align", defaults.get("align", True))),
            "witness": bool(params.get("witness", defaults.get("witness", False))),
            # None means "decide by operand shape": composed-system operands
            # take the lazy route, plain processes the cached eager route.
            "on_the_fly": params.get("on_the_fly", defaults.get("on_the_fly")),
            "params": params.get("params", {}),
        }
        reduction = params.get("reduction", defaults.get("reduction"))
        if reduction is not None:
            # Validated here so a typo answers as bad_request instead of
            # silently running the unreduced route in the worker.
            from repro.core.errors import InvalidProcessError
            from repro.explore.reduce import normalize_reduction

            try:
                spec["reduction"] = normalize_reduction(reduction)
            except InvalidProcessError as error:
                raise protocol.ServiceError(protocol.BAD_REQUEST, str(error)) from None
        if spec["left"] is None or spec["right"] is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "a check needs 'left' and 'right' process references"
            )
        if not isinstance(spec["params"], dict):
            raise protocol.ServiceError(protocol.BAD_REQUEST, "'params' must be a JSON object")
        return spec

    async def _op_check(self, params: dict[str, Any]) -> dict[str, Any]:
        spec = self._check_spec(params, {})
        deadline = self._deadline_from(params)
        result = await self.pool.run_async_check(spec, deadline=deadline)
        self._observe_check(result)
        return result

    async def _op_check_many(self, params: dict[str, Any]) -> dict[str, Any]:
        checks = params.get("checks")
        if not isinstance(checks, list):
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "check_many needs a 'checks' list of check objects"
            )
        defaults = {
            "notion": params.get("notion", "observational"),
            "align": params.get("align", True),
            "witness": params.get("witness", False),
            "on_the_fly": params.get("on_the_fly"),
            "reduction": params.get("reduction"),
        }
        # One deadline for the whole batch: every spec gets the same
        # absolute instant, so stragglers abort together.
        deadline = self._deadline_from(params)
        specs = []
        for index, item in enumerate(checks):
            if not isinstance(item, dict):
                raise protocol.ServiceError(
                    protocol.BAD_REQUEST, f"check #{index} must be an object"
                )
            specs.append(self._check_spec(item, defaults))

        async def one(spec: dict[str, Any]) -> dict[str, Any]:
            from concurrent.futures.process import BrokenProcessPool

            try:
                result = await self.pool.run_async_check(spec, deadline=deadline)
                self._observe_check(result)
                return result
            except protocol.ServiceError as error:
                # Per-check failure: reported inline, the batch continues.
                inline: dict[str, Any] = {"code": error.code, "message": error.message}
                if error.data:
                    inline["data"] = error.data
                return {"error": inline}
            except BrokenProcessPool:
                # The spec killed its worker even after the revive-and-retry:
                # report it inline rather than poisoning the whole batch.
                return {
                    "error": {
                        "code": protocol.INTERNAL,
                        "message": "worker process crashed while serving this check",
                    }
                }
            except Exception as error:
                # Any other worker-side failure (e.g. a corrupt store entry)
                # is also confined to its own slot of the batch.
                return {"error": {"code": protocol.INTERNAL, "message": repr(error)}}

        results = await asyncio.gather(*(one(spec) for spec in specs))
        equivalent = sum(1 for r in results if r.get("equivalent") is True)
        failed = sum(1 for r in results if "error" in r)
        return {
            "results": list(results),
            "summary": {
                "checks": len(results),
                "equivalent": equivalent,
                "inequivalent": len(results) - equivalent - failed,
                "failed": failed,
            },
        }

    async def _op_minimize(self, params: dict[str, Any]) -> dict[str, Any]:
        ref = params.get("process")
        if ref is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "minimize needs a 'process' reference"
            )
        notion = params.get("notion", "observational")
        deadline = self._deadline_from(params)
        shard = self.pool.route_check({"left": ref})
        return await self._run_with_watchdog(shard, deadline, _worker_minimize, ref, notion)

    async def _op_classify(self, params: dict[str, Any]) -> dict[str, Any]:
        ref = params.get("process")
        if ref is None:
            raise protocol.ServiceError(
                protocol.BAD_REQUEST, "classify needs a 'process' reference"
            )
        deadline = self._deadline_from(params)
        shard = self.pool.route_check({"left": ref})
        return await self._run_with_watchdog(shard, deadline, _worker_classify, ref)

    async def _op_stats(self) -> dict[str, Any]:
        from repro.service.shards import _worker_stats

        shard_stats = await asyncio.gather(
            *(
                self.pool.run_async(shard, _worker_stats)
                for shard in range(self.pool.num_shards)
            )
        )
        return {
            "server": {
                "version": __version__,
                "node": self.node_name,
                "shards": self.pool.num_shards,
                "connections": self._connections,
                "requests": self._requests,
                "revivals": self.pool.revivals,
                "steals": self.pool.steals,
                "overloads": self.pool.overloads,
                "queue_depths": self.pool.queue_depths(),
                "quota_clients": len(self._buckets),
                "store": self.store.cache_info(),
            },
            "shards": list(shard_stats),
        }

    # ------------------------------------------------------------------
    # the Prometheus scrape endpoint
    # ------------------------------------------------------------------
    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """A deliberately minimal HTTP/1.1 responder: any GET gets the text.

        This is a scrape endpoint, not a web server: one request per
        connection, headers are read and discarded, and the response always
        closes the connection (Prometheus handles both politely).
        """
        try:
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if not line or line in (b"\r\n", b"\n"):
                    break
            body = self.registry.render().encode("utf-8")
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    store_root: str | None = None,
    num_shards: int | None = None,
    max_processes: int = DEFAULT_MAX_PROCESSES,
    max_verdicts: int = DEFAULT_MAX_VERDICTS,
    max_queue: int | None = None,
    steal_threshold: int | None = None,
    quota_rps: float | None = None,
    quota_burst: float | None = None,
    metrics_port: int | None = None,
    trace_stream: IO[str] | None = None,
    node_name: str | None = None,
) -> None:
    """Blocking entry point used by ``repro serve`` (Ctrl-C to stop)."""

    async def main() -> None:
        server = EquivalenceServer(
            host,
            port,
            store_root=store_root,
            num_shards=num_shards,
            max_processes=max_processes,
            max_verdicts=max_verdicts,
            max_queue=max_queue,
            steal_threshold=steal_threshold,
            quota_rps=quota_rps,
            quota_burst=quota_burst,
            metrics_port=metrics_port,
            trace_stream=trace_stream,
            node_name=node_name,
        )
        await server.start()
        extras = ""
        if server.metrics_port is not None:
            extras = f", metrics on :{server.metrics_port}"
        name = f" [{server.node_name}]" if server.node_name else ""
        print(
            f"repro service{name} on {server.host}:{server.port} "
            f"({server.pool.num_shards} shard(s), store at {server.store.root}{extras})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
