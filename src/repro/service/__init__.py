"""The async equivalence service: shard workers behind an NDJSON socket API.

This package turns the in-process :mod:`repro.engine` facade into a
long-lived network service:

* :mod:`repro.service.protocol` -- the newline-delimited-JSON wire format,
  error vocabulary and process-reference encoding (one module shared by
  server, client and tests; prose spec in ``docs/service-protocol.md``);
* :mod:`repro.service.store` -- :class:`ProcessStore`, the content-addressed
  on-disk process store (upload once, reference by ``sha256:...`` digest);
* :mod:`repro.service.shards` -- :class:`ShardPool`, single-worker process
  executors with digest-sticky routing, per-worker bounded engines, and
  crash recovery;
* :mod:`repro.service.flow` -- request deadlines (cooperative cancellation
  inside the workers) and :class:`TokenBucket` client quotas;
* :mod:`repro.service.metrics` -- :class:`MetricsRegistry` (counters,
  gauges, latency histograms; JSON and Prometheus-text exports) and the
  per-request :class:`~repro.service.metrics.TraceLog`;
* :mod:`repro.service.server` -- :class:`EquivalenceServer` /
  :func:`serve`, the asyncio front end (``repro serve`` on the CLI);
* :mod:`repro.service.client` -- :class:`ServiceClient`, the synchronous
  client (``repro client`` on the CLI);
* :mod:`repro.service.retry` -- :class:`RetryPolicy`, the shared jittered
  backoff schedule clients apply to ``overloaded`` responses.

Quick start (two terminals)::

    $ python -m repro serve --port 8319 --shards 4 --store /tmp/repro-store

    >>> from repro.service import ServiceClient          # doctest: +SKIP
    >>> client = ServiceClient(port=8319)                # doctest: +SKIP
    >>> digest = client.store(my_process)                # doctest: +SKIP
    >>> client.check(digest, other_process)["equivalent"]  # doctest: +SKIP
"""

import importlib
from typing import Any

__all__ = [
    "DEFAULT_PORT",
    "EquivalenceServer",
    "MetricsRegistry",
    "ProcessStore",
    "ProtocolError",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ShardPool",
    "TokenBucket",
    "serve",
]

#: Exported name -> defining submodule.  Resolution is lazy (PEP 562) so
#: that importing the lightweight pieces -- the CLI parser only needs
#: ``protocol.DEFAULT_PORT`` -- does not drag in the asyncio server and the
#: multiprocessing pool machinery.
_EXPORTS = {
    "DEFAULT_PORT": "repro.service.protocol",
    "ProtocolError": "repro.service.protocol",
    "ServiceError": "repro.service.protocol",
    "ProcessStore": "repro.service.store",
    "TokenBucket": "repro.service.flow",
    "MetricsRegistry": "repro.service.metrics",
    "ShardPool": "repro.service.shards",
    "EquivalenceServer": "repro.service.server",
    "serve": "repro.service.server",
    "ServiceClient": "repro.service.client",
    "RetryPolicy": "repro.service.retry",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
