"""Classification of FSPs into the model hierarchy of Fig. 1a / Appendix A.

The paper distinguishes ten model classes of finite state processes:

========================  =====================================================
``GENERAL``               the unrestricted model of Definition 2.1.1
``OBSERVABLE``            no tau-transitions
``STANDARD``              ``V = {x}``: every state is accepting or not
``DETERMINISTIC``         observable with exactly one transition per action
``RESTRICTED``            standard with every state accepting
``RESTRICTED_OBSERVABLE`` restricted and observable
``ROU``                   restricted, observable, unary (``|Sigma| = 1``)
``STANDARD_OBSERVABLE``   standard and observable
``SOU``                   standard, observable, unary (``|Sigma| = 1``)
``FINITE_TREE``           restricted, underlying graph is a tree rooted at p0
========================  =====================================================

The functions in this module are pure predicates on :class:`~repro.core.fsp.FSP`
values plus a :func:`classify` driver that returns the full set of classes a
process belongs to, and :func:`require` used by algorithms to enforce the
paper's preconditions.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

from repro.core.errors import ModelClassError
from repro.core.fsp import ACCEPT, FSP, TAU


class ModelClass(enum.Enum):
    """The model classes of Appendix A, Table I."""

    GENERAL = "general"
    OBSERVABLE = "observable"
    STANDARD = "standard"
    DETERMINISTIC = "deterministic"
    RESTRICTED = "restricted"
    RESTRICTED_OBSERVABLE = "restricted observable"
    ROU = "restricted observable unary"
    STANDARD_OBSERVABLE = "standard observable"
    SOU = "standard observable unary"
    FINITE_TREE = "finite tree"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The containment hierarchy of Fig. 1a: a class maps to the classes that
#: directly contain it.  ``GENERAL`` is the top element.
HIERARCHY: dict[ModelClass, frozenset[ModelClass]] = {
    ModelClass.GENERAL: frozenset(),
    ModelClass.OBSERVABLE: frozenset({ModelClass.GENERAL}),
    ModelClass.STANDARD: frozenset({ModelClass.GENERAL}),
    ModelClass.DETERMINISTIC: frozenset({ModelClass.OBSERVABLE}),
    ModelClass.RESTRICTED: frozenset({ModelClass.STANDARD}),
    ModelClass.STANDARD_OBSERVABLE: frozenset({ModelClass.STANDARD, ModelClass.OBSERVABLE}),
    ModelClass.RESTRICTED_OBSERVABLE: frozenset(
        {ModelClass.RESTRICTED, ModelClass.STANDARD_OBSERVABLE}
    ),
    ModelClass.ROU: frozenset({ModelClass.RESTRICTED_OBSERVABLE}),
    ModelClass.SOU: frozenset({ModelClass.STANDARD_OBSERVABLE}),
    ModelClass.FINITE_TREE: frozenset({ModelClass.RESTRICTED}),
}


def is_observable(fsp: FSP) -> bool:
    """True when the process has no tau-transitions (the *observable* model)."""
    return not fsp.has_tau()


def is_standard(fsp: FSP) -> bool:
    """True when ``V`` is (a subset of) ``{x}`` -- the *standard* model.

    The paper fixes ``V = {x}`` exactly; we accept ``V`` being empty as well
    because a process that never mentions any variable carries the same
    information as one with an unused ``x``.
    """
    return fsp.variables <= frozenset({ACCEPT})


def is_deterministic(fsp: FSP) -> bool:
    """True for the *deterministic* model.

    Per Appendix A the deterministic model consists of observable FSPs with
    exactly one transition for each symbol of ``Sigma`` from every state.
    """
    if not is_observable(fsp):
        return False
    for state in fsp.states:
        for action in fsp.alphabet:
            if len(fsp.successors(state, action)) != 1:
                return False
    return True


def is_restricted(fsp: FSP) -> bool:
    """True for the *restricted* model: standard with every state accepting."""
    if not is_standard(fsp):
        return False
    return all(fsp.is_accepting(state) for state in fsp.states)


def is_restricted_observable(fsp: FSP) -> bool:
    """True for restricted observable processes."""
    return is_restricted(fsp) and is_observable(fsp)


def is_rou(fsp: FSP) -> bool:
    """True for the restricted observable unary (r.o.u.) model: ``|Sigma| = 1``."""
    return is_restricted_observable(fsp) and len(fsp.alphabet) == 1


def is_standard_observable(fsp: FSP) -> bool:
    """True for standard observable processes (classical NFAs without epsilon)."""
    return is_standard(fsp) and is_observable(fsp)


def is_sou(fsp: FSP) -> bool:
    """True for the standard observable unary (s.o.u.) model: ``|Sigma| = 1``."""
    return is_standard_observable(fsp) and len(fsp.alphabet) == 1


def is_finite_tree(fsp: FSP) -> bool:
    """True when the process is restricted and its graph is a tree rooted at p0.

    Every state must be reachable from the start state by exactly one path and
    no state may have two incoming transitions (in particular there are no
    cycles and the start state has no incoming transition).
    """
    if not is_restricted(fsp):
        return False
    indegree: dict[str, int] = {state: 0 for state in fsp.states}
    for src, _action, dst in fsp.transitions:
        indegree[dst] += 1
    if indegree[fsp.start] != 0:
        return False
    if any(count > 1 for count in indegree.values()):
        return False
    # With in-degree <= 1 everywhere and 0 at the root, acyclicity plus full
    # reachability is equivalent to every non-root state having in-degree 1
    # and all states being reachable from the root.
    if fsp.reachable_states() != fsp.states:
        return False
    return all(count == 1 for state, count in indegree.items() if state != fsp.start)


def has_dead_states(fsp: FSP) -> bool:
    """True when some state has no outgoing transitions (a *dead* state).

    Dead states play a central role in the reductions of Theorem 4.1(c) and
    Theorem 5.1.
    """
    return any(not fsp.enabled_actions(state) for state in fsp.states)


def dead_states(fsp: FSP) -> frozenset[str]:
    """The set of states devoid of outgoing transitions."""
    return frozenset(state for state in fsp.states if not fsp.enabled_actions(state))


def classify(fsp: FSP) -> frozenset[ModelClass]:
    """Return every model class of Appendix A that the process belongs to."""
    classes = {ModelClass.GENERAL}
    if is_observable(fsp):
        classes.add(ModelClass.OBSERVABLE)
    if is_standard(fsp):
        classes.add(ModelClass.STANDARD)
    if is_deterministic(fsp):
        classes.add(ModelClass.DETERMINISTIC)
    if is_restricted(fsp):
        classes.add(ModelClass.RESTRICTED)
    if is_standard_observable(fsp):
        classes.add(ModelClass.STANDARD_OBSERVABLE)
    if is_restricted_observable(fsp):
        classes.add(ModelClass.RESTRICTED_OBSERVABLE)
    if is_rou(fsp):
        classes.add(ModelClass.ROU)
    if is_sou(fsp):
        classes.add(ModelClass.SOU)
    if is_finite_tree(fsp):
        classes.add(ModelClass.FINITE_TREE)
    return frozenset(classes)


_PREDICATES = {
    ModelClass.GENERAL: lambda fsp: True,
    ModelClass.OBSERVABLE: is_observable,
    ModelClass.STANDARD: is_standard,
    ModelClass.DETERMINISTIC: is_deterministic,
    ModelClass.RESTRICTED: is_restricted,
    ModelClass.RESTRICTED_OBSERVABLE: is_restricted_observable,
    ModelClass.ROU: is_rou,
    ModelClass.STANDARD_OBSERVABLE: is_standard_observable,
    ModelClass.SOU: is_sou,
    ModelClass.FINITE_TREE: is_finite_tree,
}


def belongs_to(fsp: FSP, model: ModelClass) -> bool:
    """Whether ``fsp`` belongs to ``model``."""
    return bool(_PREDICATES[model](fsp))


def require(fsp: FSP, model: ModelClass, context: str = "") -> None:
    """Raise :class:`ModelClassError` unless ``fsp`` belongs to ``model``.

    Algorithms whose correctness depends on the paper's model preconditions
    (for example failure equivalence on the restricted model) call this at
    their entry points so that misuse fails loudly instead of returning a
    meaningless answer.
    """
    if not belongs_to(fsp, model):
        actual = ", ".join(sorted(str(c) for c in classify(fsp)))
        where = f" ({context})" if context else ""
        raise ModelClassError(
            f"process is not in the {model.value} model{where}; it belongs to: {actual}"
        )


def require_same_signature(first: FSP, second: FSP) -> None:
    """Check that two FSPs share ``Sigma`` and ``V``.

    Every equivalence in the paper is defined for states of FSPs *having the
    same Sigma and V*.  Comparisons of processes over different alphabets are
    almost always a bug at the call site (a missing
    :meth:`~repro.core.fsp.FSP.with_alphabet`), so we refuse them.
    """
    if first.alphabet != second.alphabet:
        raise ModelClassError(
            "processes must share the action alphabet Sigma: "
            f"{sorted(first.alphabet)} vs {sorted(second.alphabet)}"
        )
    if first.variables != second.variables:
        raise ModelClassError(
            "processes must share the variable set V: "
            f"{sorted(first.variables)} vs {sorted(second.variables)}"
        )


def hierarchy_table(classes: Iterable[ModelClass] = tuple(ModelClass)) -> str:
    """Render the containment hierarchy of Fig. 1a as a text table.

    Used by ``benchmarks/bench_classify.py`` to regenerate the content of
    Appendix A, Table I.
    """
    lines = ["model class                      contained in"]
    lines.append("-" * 60)
    for model in classes:
        parents = HIERARCHY[model]
        parent_text = ", ".join(sorted(str(p) for p in parents)) or "(top)"
        lines.append(f"{model.value:<32} {parent_text}")
    return "\n".join(lines)
