"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single exception type at API boundaries.  More specific subclasses
describe the three failure categories that appear throughout the code base:

* :class:`InvalidProcessError` -- a finite state process (FSP) violates the
  structural constraints of Definition 2.1.1 of the paper (unknown states in
  transitions, start state missing, an action that collides with the
  unobservable action, ...).
* :class:`ModelClassError` -- an algorithm that is only defined for a
  restricted model class (observable, restricted, r.o.u., ...) was handed a
  process outside that class.
* :class:`ExpressionError` -- a star expression or CCS term could not be
  parsed or evaluated.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the library."""


class InvalidProcessError(ReproError):
    """An FSP violates the structural constraints of Definition 2.1.1."""


class ModelClassError(ReproError):
    """A process lies outside the model class required by an algorithm.

    The paper defines several equivalences only on sub-models (strong
    equivalence on observable FSPs, failure equivalence on restricted FSPs).
    Algorithms that insist on the paper's preconditions raise this error when
    the precondition is violated, naming both the required and the actual
    model class in the message.
    """


class ExpressionError(ReproError):
    """A star expression or CCS term is syntactically or semantically invalid."""


class StateSpaceLimitError(ReproError):
    """State-space exploration exceeded a caller-imposed bound.

    Raised by the CCS term compiler and by the subset constructions used for
    language and failure equivalence when the number of generated states
    exceeds the ``max_states`` argument.  The partially explored object is not
    returned because a truncated state space would silently give wrong
    equivalence answers.
    """
