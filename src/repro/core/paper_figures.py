"""Executable renderings of the example processes in the paper's figures.

The paper uses a handful of small processes to illustrate the model hierarchy
(Fig. 1b), to separate the equivalence notions from one another (Fig. 2), and
as gadgets inside the hardness reductions (Fig. 5b *chaos*, Fig. 5d the
*trivial NFA*).  This module reconstructs each of them as
:class:`~repro.core.fsp.FSP` values so that tests and benchmarks can verify
the properties the paper claims for them.

Where the scanned figure is not legible enough to recover the exact graph
(parts of Fig. 1b), we build a canonical representative of the advertised
model class and document the intent; the properties exercised by the paper
(class membership, the failure set of the finite-tree example, the
equivalence/inequivalence pattern of Fig. 2) are preserved.
"""

from __future__ import annotations

from repro.core.fsp import FSP, TAU, FSPBuilder, from_transitions


# ----------------------------------------------------------------------
# Figure 1b -- one example process per model class
# ----------------------------------------------------------------------
def fig1b_general() -> FSP:
    """A general FSP: uses a tau-transition and a non-trivial extension set.

    The figure's general example carries the extension ``{x, y}`` on one state
    and mixes observable and unobservable moves.
    """
    builder = FSPBuilder(alphabet={"a", "b", "c"}, variables={"x", "y"})
    builder.add_transition("p0", "a", "p1")
    builder.add_transition("p0", TAU, "p2")
    builder.add_transition("p1", "b", "p3")
    builder.add_transition("p2", "c", "p3")
    builder.add_transition("p3", TAU, "p0")
    builder.add_extension("p1", "x")
    builder.add_extension("p1", "y")
    builder.add_extension("p3", "x")
    return builder.build(start="p0")


def fig1b_observable() -> FSP:
    """An observable FSP: no tau-moves, arbitrary extensions."""
    builder = FSPBuilder(alphabet={"a", "b"}, variables={"x", "y"})
    builder.add_transition("q0", "a", "q1")
    builder.add_transition("q0", "b", "q2")
    builder.add_transition("q1", "a", "q2")
    builder.add_transition("q2", "b", "q0")
    builder.add_extension("q1", "y")
    builder.add_extension("q2", "x")
    return builder.build(start="q0")


def fig1b_standard() -> FSP:
    """A standard FSP: a classical NFA with empty moves (accepting = ``{x}``)."""
    return from_transitions(
        [
            ("s0", "a", "s1"),
            ("s0", TAU, "s2"),
            ("s1", "b", "s2"),
            ("s2", "a", "s0"),
        ],
        start="s0",
        accepting=["s1"],
    )


def fig1b_deterministic() -> FSP:
    """A deterministic FSP: exactly one transition per action from every state."""
    return from_transitions(
        [
            ("d0", "a", "d1"),
            ("d0", "b", "d0"),
            ("d1", "a", "d0"),
            ("d1", "b", "d1"),
        ],
        start="d0",
        accepting=["d1"],
    )


def fig1b_restricted() -> FSP:
    """A restricted FSP: every state accepting, some transitions missing."""
    return from_transitions(
        [
            ("r0", "a", "r1"),
            ("r1", "b", "r0"),
            ("r1", "a", "r2"),
        ],
        start="r0",
        all_accepting=True,
    )


def fig1b_rou() -> FSP:
    """A restricted observable unary FSP over the single action ``a``."""
    return from_transitions(
        [
            ("u0", "a", "u1"),
            ("u1", "a", "u1"),
        ],
        start="u0",
        all_accepting=True,
    )


def fig1b_finite_tree() -> FSP:
    """The finite-tree example whose failures Section 2.1 computes.

    Over ``Sigma = {a, b, c}`` the tree is::

        t0 --a--> t1 --b--> t2
                  t1 --c--> t3

    with every state accepting.  Its failure set at the root is

    ``{epsilon} x 2^{b,c}  u  {a} x 2^{a}  u  {ab} x 2^Sigma  u  {ac} x 2^Sigma``.
    """
    return from_transitions(
        [
            ("t0", "a", "t1"),
            ("t1", "b", "t2"),
            ("t1", "c", "t3"),
        ],
        start="t0",
        all_accepting=True,
        alphabet={"a", "b", "c"},
    )


def fig1b_examples() -> dict[str, FSP]:
    """All Fig. 1b example processes keyed by the class they illustrate."""
    return {
        "general": fig1b_general(),
        "observable": fig1b_observable(),
        "standard": fig1b_standard(),
        "deterministic": fig1b_deterministic(),
        "restricted": fig1b_restricted(),
        "restricted observable unary": fig1b_rou(),
        "finite tree": fig1b_finite_tree(),
    }


# ----------------------------------------------------------------------
# Figure 2 -- r.o.u. processes separating the equivalence notions
# ----------------------------------------------------------------------
def fig2_language_pair() -> tuple[FSP, FSP]:
    """Two r.o.u. processes that are language (``approx_1``) equivalent but not
    failure equivalent (and hence not observationally equivalent).

    Both accept exactly ``{epsilon, a, aa}`` (every state is accepting), but
    the second process can, after one ``a``, reach a state that refuses ``a``
    while the first cannot.
    """
    first = from_transitions(
        [
            ("p0", "a", "p1"),
            ("p1", "a", "p2"),
        ],
        start="p0",
        all_accepting=True,
    )
    second = from_transitions(
        [
            ("q0", "a", "q1"),
            ("q1", "a", "q2"),
            ("q0", "a", "q3"),
        ],
        start="q0",
        all_accepting=True,
    )
    return first, second


def fig2_failure_pair() -> tuple[FSP, FSP]:
    """Two r.o.u. processes that are failure equivalent but not observationally
    equivalent.

    The processes are the representative FSPs of the star expressions
    ``a.(a u a.a)`` and ``a.a u a.a.a`` with every state accepting.  They have
    identical failures yet the states reached after the first ``a`` cannot be
    matched by any bisimulation.
    """
    first = from_transitions(
        [
            ("p0", "a", "p1"),
            ("p1", "a", "p2"),
            ("p1", "a", "p3"),
            ("p3", "a", "p4"),
        ],
        start="p0",
        all_accepting=True,
    )
    second = from_transitions(
        [
            ("q0", "a", "q1"),
            ("q1", "a", "q2"),
            ("q0", "a", "q3"),
            ("q3", "a", "q4"),
            ("q4", "a", "q5"),
        ],
        start="q0",
        all_accepting=True,
    )
    return first, second


def fig2_examples() -> dict[str, tuple[FSP, FSP]]:
    """The separating pairs of Fig. 2 keyed by what they separate."""
    return {
        "language-equivalent, not failure-equivalent": fig2_language_pair(),
        "failure-equivalent, not observationally-equivalent": fig2_failure_pair(),
    }


# ----------------------------------------------------------------------
# Figure 5b -- the chaos process, and Figure 5d -- the trivial NFA
# ----------------------------------------------------------------------
def chaos() -> FSP:
    """The r.o.u. *chaos* process of Fig. 5b.

    Over the unary alphabet ``{a}`` chaos has a start state with an
    ``a``-self-loop and an ``a``-move to a dead state; every state is
    accepting.  Theorem 4.1(c) characterises ``q approx_2 chaos`` in terms of
    the existence of both dead and cyclic ``s``-derivatives of ``q``.
    """
    return from_transitions(
        [
            ("chaos", "a", "chaos"),
            ("chaos", "a", "halt"),
        ],
        start="chaos",
        all_accepting=True,
    )


def trivial_nfa(alphabet: frozenset[str] | set[str] = frozenset({"a", "b"})) -> FSP:
    """The trivial NFA ``q*`` of Fig. 5d: one accepting state with a self-loop
    for every action, so it accepts ``Sigma*``.
    """
    state = "q*"
    return from_transitions(
        [(state, action, state) for action in sorted(alphabet)],
        start=state,
        all_accepting=True,
        alphabet=alphabet,
    )
