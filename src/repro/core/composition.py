"""Composition operators on processes -- the "extended star expressions" of Section 6.

The paper's closing discussion extends star expressions with the genuinely
concurrent operators of CCS -- above all composition -- whose semantics is a
"direct product of states" construction: the representative process of the
whole is a product of the representative processes of the parts.  This module
provides those product constructions directly on :class:`~repro.core.fsp.FSP`
values, independent of the CCS term language:

* :func:`synchronous_product` -- both components move together on shared
  actions (the *intersection* operator mentioned in Section 6);
* :func:`interleaving_product` -- pure asynchronous interleaving;
* :func:`ccs_composition` -- CCS parallel composition: interleaving plus
  synchronisation of complementary actions (``a`` with ``a!``) into tau;
* :func:`restrict` and :func:`hide` -- the restriction operator and
  tau-hiding, the two ways of internalising channels;
* :func:`relabel` -- action renaming.

All constructions explore only the reachable part of the product, so the
result size is bounded by the product of the component sizes but is usually
far smaller.  Extensions of a product state are the union of the component
extensions (so acceptance in the standard model means "some component
accepts"); pass ``extension_mode="intersection"`` for the conjunctive reading.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping

from repro.core.actions import CO_SUFFIX, channel_closure, co_action as _co
from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP, TAU

__all__ = [
    "CO_SUFFIX",
    "PAIR_SEPARATOR",
    "ccs_composition",
    "hide",
    "interleaving_product",
    "pair_name",
    "relabel",
    "restrict",
    "synchronous_product",
]

#: Separator used in product-state names.  Deliberately plain ASCII so that
#: composed processes survive every serialisation path (``.aut`` headers,
#: JSON with ``ensure_ascii``, DOT labels) without escaping.
PAIR_SEPARATOR = "|"


def pair_name(left: str, right: str) -> str:
    """The canonical name of a product state, e.g. ``(p|q)``.

    Shared with the lazy products of :mod:`repro.explore` so that
    materialising a lazy product yields a process *equal* to the eager one.
    """
    return f"({left}{PAIR_SEPARATOR}{right})"


#: Backwards-compatible private alias (pre-explore callers).
_pair_name = pair_name


def _combine_extensions(
    first: FSP, second: FSP, left: str, right: str, mode: str
) -> frozenset[str]:
    if mode == "union":
        return first.extension(left) | second.extension(right)
    if mode == "intersection":
        return first.extension(left) & second.extension(right)
    raise InvalidProcessError(f"unknown extension mode {mode!r}")


def _explore_product(
    first: FSP,
    second: FSP,
    moves,
    alphabet: frozenset[str],
    extension_mode: str,
) -> FSP:
    """Generic reachable-product exploration.

    ``moves(left_state, right_state)`` yields ``(action, left', right')``
    triples describing the joint moves available from a product state.
    """
    start = (first.start, second.start)
    # Pair names must stay injective on the reachable product: a component
    # state that itself contains the separator could alias two distinct
    # pairs to one name, silently merging behaviours.  Detect and refuse
    # (the lazy route in repro.explore guards identically).
    owners: dict[str, tuple[str, str]] = {}

    def name_of(pair: tuple[str, str]) -> str:
        name = _pair_name(*pair)
        previous = owners.setdefault(name, pair)
        if previous != pair:
            raise InvalidProcessError(
                f"product-state name collision: {name!r} names two distinct pairs"
            )
        return name

    seen = {start}
    queue: deque[tuple[str, str]] = deque([start])
    states: set[str] = set()
    transitions: set[tuple[str, str, str]] = set()
    extensions: set[tuple[str, str]] = set()
    while queue:
        pair = queue.popleft()
        left, right = pair
        name = name_of(pair)
        states.add(name)
        for variable in _combine_extensions(first, second, left, right, extension_mode):
            extensions.add((name, variable))
        for action, next_left, next_right in moves(left, right):
            target = (next_left, next_right)
            transitions.add((name, action, name_of(target)))
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return FSP(
        states=states,
        start=_pair_name(*start),
        alphabet=alphabet,
        transitions=transitions,
        variables=first.variables | second.variables,
        extensions=extensions,
    )


def synchronous_product(first: FSP, second: FSP, extension_mode: str = "intersection") -> FSP:
    """The fully synchronous (intersection) product.

    Both components must take a transition with the same observable action for
    the product to move; tau-moves of either component are interleaved freely
    (they are local).  With ``extension_mode="intersection"`` and standard
    components the product accepts exactly the intersection of the two
    languages, which is the "intersection operator" reading of Section 6.
    """
    alphabet = first.alphabet & second.alphabet

    def moves(left: str, right: str):
        for target in first.successors(left, TAU):
            yield TAU, target, right
        for target in second.successors(right, TAU):
            yield TAU, left, target
        for action in alphabet:
            for left_target in first.successors(left, action):
                for right_target in second.successors(right, action):
                    yield action, left_target, right_target

    return _explore_product(first, second, moves, alphabet, extension_mode)


def interleaving_product(first: FSP, second: FSP, extension_mode: str = "union") -> FSP:
    """Pure asynchronous interleaving: either component moves, never both at once."""
    alphabet = first.alphabet | second.alphabet

    def moves(left: str, right: str):
        for action in first.enabled_actions(left):
            for target in first.successors(left, action):
                yield action, target, right
        for action in second.enabled_actions(right):
            for target in second.successors(right, action):
                yield action, left, target

    return _explore_product(first, second, moves, alphabet, extension_mode)


def ccs_composition(first: FSP, second: FSP, extension_mode: str = "union") -> FSP:
    """CCS parallel composition ``first | second`` on processes.

    Interleaving of all moves plus a tau-move whenever the two components can
    perform complementary actions (``a`` and ``a!``) simultaneously.  Matches
    the SOS rules in :mod:`repro.ccs.semantics`, but operates directly on
    state machines so it can be applied to processes that did not come from
    CCS terms (for example representative FSPs of star expressions -- the
    "extended star expressions" of Section 6).
    """
    alphabet = first.alphabet | second.alphabet

    def moves(left: str, right: str):
        for action in first.enabled_actions(left):
            for target in first.successors(left, action):
                yield action, target, right
        for action in second.enabled_actions(right):
            for target in second.successors(right, action):
                yield action, left, target
        for action in first.enabled_actions(left):
            if action == TAU:
                continue
            partner = _co(action)
            for left_target in first.successors(left, action):
                for right_target in second.successors(right, partner):
                    yield TAU, left_target, right_target

    return _explore_product(first, second, moves, alphabet, extension_mode)


def restrict(fsp: FSP, channels: Iterable[str]) -> FSP:
    """CCS restriction ``P \\ L``: transitions on the listed channels (and their
    co-actions) are removed; tau-moves are unaffected."""
    blocked = channel_closure(channels)
    transitions = {
        (src, action, dst)
        for src, action, dst in fsp.transitions
        if action == TAU or action not in blocked
    }
    return FSP(
        states=fsp.states,
        start=fsp.start,
        alphabet=fsp.alphabet - frozenset(blocked),
        transitions=transitions,
        variables=fsp.variables,
        extensions=fsp.extensions,
    ).restrict_to_reachable()


def hide(fsp: FSP, channels: Iterable[str]) -> FSP:
    """Hiding: transitions on the listed channels become tau-moves.

    This is the CSP-style internalisation; combined with
    :func:`interleaving_product` or :func:`ccs_composition` it produces the
    tau-rich processes on which observational equivalence does its work.
    """
    hidden = channel_closure(channels)
    transitions = {
        (src, TAU if action in hidden else action, dst)
        for src, action, dst in fsp.transitions
    }
    return FSP(
        states=fsp.states,
        start=fsp.start,
        alphabet=fsp.alphabet - frozenset(hidden),
        transitions=transitions,
        variables=fsp.variables,
        extensions=fsp.extensions,
    )


def relabel(fsp: FSP, mapping: Mapping[str, str]) -> FSP:
    """Relabelling ``P[f]``: rename observable actions according to ``mapping``.

    Actions not mentioned in the mapping are unchanged; tau cannot be renamed.
    Co-actions follow their channel automatically (renaming ``a`` to ``b``
    also renames ``a!`` to ``b!``).
    """
    if TAU in mapping:
        raise InvalidProcessError("tau cannot be relabelled")
    full_mapping: dict[str, str] = {}
    for old, new in mapping.items():
        full_mapping[old] = new
        full_mapping[_co(old)] = _co(new)

    def rename(action: str) -> str:
        if action == TAU:
            return action
        return full_mapping.get(action, action)

    transitions = {(src, rename(action), dst) for src, action, dst in fsp.transitions}
    alphabet = frozenset(rename(action) for action in fsp.alphabet)
    return FSP(
        states=fsp.states,
        start=fsp.start,
        alphabet=alphabet,
        transitions=transitions,
        variables=fsp.variables,
        extensions=fsp.extensions,
    )
