"""Finite State Processes (FSPs) -- Definition 2.1.1 of Kanellakis & Smolka.

An FSP is a sextuple ``(K, p0, Sigma, Delta, V, E)`` where

* ``K`` is a finite set of states,
* ``p0`` is the start state,
* ``Sigma`` is a finite set of *actions* and ``tau`` (written :data:`TAU`) is a
  distinguished unobservable action not in ``Sigma``,
* ``Delta`` is the transition relation, a subset of
  ``K x (Sigma u {tau}) x K``,
* ``V`` is a finite set of *variables* disjoint from ``Sigma u {tau}``,
* ``E`` is the extension relation, a subset of ``K x V``.

Extensions generalise the accept/non-accept distinction of classical automata:
in the *standard* model ``V = {x}`` and a state is accepting exactly when its
extension set is ``{x}``.

The class :class:`FSP` below is an immutable value object.  All derived lookup
structures (successor maps, extension maps) are computed once at construction
time so that the partition-refinement algorithms in :mod:`repro.partition` can
query them in O(1).  Use :class:`FSPBuilder` or the convenience constructors
for incremental construction.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping
from typing import Any

from repro.core.errors import InvalidProcessError

#: The unobservable action of CCS.  It is deliberately *not* a member of the
#: action alphabet ``Sigma`` of any FSP; the transition relation ranges over
#: ``Sigma u {TAU}``.
TAU = "τ"

#: The variable used by the *standard* model (Definition 2.1.1 / Section 2.1):
#: a state ``q`` of a standard FSP is accepting iff ``E(q) == {ACCEPT}``.
ACCEPT = "x"

#: Marker action used by :func:`repro.core.derivatives.saturate` for the
#: ``=>^epsilon`` relation of Theorem 4.1(a).  It never occurs in user-built
#: processes.
EPSILON = "ε"

State = str
Action = str
Variable = str
Transition = tuple[State, Action, State]


def _freeze_str_set(values: Iterable[str], what: str) -> frozenset[str]:
    out = frozenset(values)
    for value in out:
        if not isinstance(value, str) or not value:
            raise InvalidProcessError(f"{what} must be non-empty strings, got {value!r}")
    return out


class FSP:
    """An immutable finite state process.

    Parameters
    ----------
    states:
        The state set ``K``.  States are identified by non-empty strings.
    start:
        The start state ``p0``; must be a member of ``states``.
    alphabet:
        The observable action alphabet ``Sigma``.  Must not contain
        :data:`TAU` or :data:`EPSILON`.
    transitions:
        The transition relation ``Delta`` as ``(source, action, target)``
        triples.  Actions must lie in ``alphabet | {TAU}``.
    variables:
        The variable set ``V``.  Defaults to ``{ACCEPT}`` (the standard model).
    extensions:
        The extension relation ``E`` as ``(state, variable)`` pairs.

    Raises
    ------
    InvalidProcessError
        If any structural constraint of Definition 2.1.1 is violated.
    """

    __slots__ = (
        "_states",
        "_start",
        "_alphabet",
        "_transitions",
        "_variables",
        "_extensions",
        "_succ",
        "_pred",
        "_ext_map",
        "_out_actions",
        "_hash",
    )

    def __init__(
        self,
        states: Iterable[State],
        start: State,
        alphabet: Iterable[Action],
        transitions: Iterable[Transition],
        variables: Iterable[Variable] = (ACCEPT,),
        extensions: Iterable[tuple[State, Variable]] = (),
    ) -> None:
        self._states = _freeze_str_set(states, "states")
        self._alphabet = _freeze_str_set(alphabet, "actions") if alphabet else frozenset()
        self._variables = _freeze_str_set(variables, "variables") if variables else frozenset()
        self._transitions = frozenset(
            (str(src), str(act), str(dst)) for src, act, dst in transitions
        )
        self._extensions = frozenset((str(state), str(var)) for state, var in extensions)
        self._start = str(start)
        self._validate()

        # Derived indices.  ``_succ`` maps (state, action) -> frozenset of
        # successor states; ``_pred`` is the mirror image used by the
        # Paige-Tarjan splitter; ``_ext_map`` maps a state to its extension
        # set; ``_out_actions`` maps a state to the actions labelling its
        # outgoing transitions.
        succ: dict[tuple[State, Action], set[State]] = {}
        pred: dict[tuple[State, Action], set[State]] = {}
        out_actions: dict[State, set[Action]] = {state: set() for state in self._states}
        for src, act, dst in self._transitions:
            succ.setdefault((src, act), set()).add(dst)
            pred.setdefault((dst, act), set()).add(src)
            out_actions[src].add(act)
        self._succ = {key: frozenset(val) for key, val in succ.items()}
        self._pred = {key: frozenset(val) for key, val in pred.items()}
        self._out_actions = {state: frozenset(acts) for state, acts in out_actions.items()}

        ext_map: dict[State, set[Variable]] = {state: set() for state in self._states}
        for state, var in self._extensions:
            ext_map[state].add(var)
        self._ext_map = {state: frozenset(vs) for state, vs in ext_map.items()}
        self._hash = hash(
            (self._states, self._start, self._alphabet, self._transitions, self._extensions)
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._states:
            raise InvalidProcessError("an FSP needs at least one state")
        if self._start not in self._states:
            raise InvalidProcessError(
                f"start state {self._start!r} is not a member of the state set"
            )
        if TAU in self._alphabet:
            raise InvalidProcessError(
                f"the action alphabet may not contain the unobservable action {TAU!r}"
            )
        if self._variables & (self._alphabet | {TAU}):
            raise InvalidProcessError("variables must be disjoint from the actions and tau")
        allowed_actions = self._alphabet | {TAU}
        for src, act, dst in self._transitions:
            if src not in self._states:
                raise InvalidProcessError(f"transition source {src!r} is not a state")
            if dst not in self._states:
                raise InvalidProcessError(f"transition target {dst!r} is not a state")
            if act not in allowed_actions:
                raise InvalidProcessError(
                    f"transition action {act!r} is not in the alphabet or tau"
                )
        for state, var in self._extensions:
            if state not in self._states:
                raise InvalidProcessError(f"extension state {state!r} is not a state")
            if var not in self._variables:
                raise InvalidProcessError(f"extension variable {var!r} is not in V")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def states(self) -> frozenset[State]:
        """The state set ``K``."""
        return self._states

    @property
    def start(self) -> State:
        """The start state ``p0``."""
        return self._start

    @property
    def alphabet(self) -> frozenset[Action]:
        """The observable action alphabet ``Sigma`` (never contains tau)."""
        return self._alphabet

    @property
    def transitions(self) -> frozenset[Transition]:
        """The transition relation ``Delta``."""
        return self._transitions

    @property
    def variables(self) -> frozenset[Variable]:
        """The variable set ``V``."""
        return self._variables

    @property
    def extensions(self) -> frozenset[tuple[State, Variable]]:
        """The extension relation ``E``."""
        return self._extensions

    @property
    def num_states(self) -> int:
        """``|K|`` -- the ``n`` of the paper's complexity bounds."""
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        """``|Delta|`` -- the ``m`` of the paper's complexity bounds."""
        return len(self._transitions)

    # ------------------------------------------------------------------
    # relational accessors (the Delta(q), E(q), Delta(q, a) of Section 2.1)
    # ------------------------------------------------------------------
    def successors(self, state: State, action: Action) -> frozenset[State]:
        """``Delta(q, a)`` -- the destinations of ``state`` via ``action``."""
        return self._succ.get((state, action), frozenset())

    def predecessors(self, state: State, action: Action) -> frozenset[State]:
        """The sources of ``action``-transitions into ``state``."""
        return self._pred.get((state, action), frozenset())

    def transitions_from(self, state: State) -> frozenset[tuple[Action, State]]:
        """``Delta(q)`` -- the set of ``(action, destination)`` pairs from ``state``."""
        out = set()
        for action in self._out_actions.get(state, frozenset()):
            for dst in self._succ.get((state, action), frozenset()):
                out.add((action, dst))
        return frozenset(out)

    def extension(self, state: State) -> frozenset[Variable]:
        """``E(q)`` -- the extension set of ``state``."""
        if state not in self._states:
            raise InvalidProcessError(f"{state!r} is not a state of this FSP")
        return self._ext_map[state]

    def enabled_actions(self, state: State) -> frozenset[Action]:
        """The actions (possibly including tau) labelling outgoing transitions."""
        return self._out_actions.get(state, frozenset())

    def is_accepting(self, state: State) -> bool:
        """Whether ``state`` is accepting in the standard-model reading.

        A state is accepting when :data:`ACCEPT` belongs to its extension set.
        For non-standard processes this still gives a meaningful predicate but
        the classical language-theoretic interpretation only applies to the
        standard model.
        """
        return ACCEPT in self.extension(state)

    def accepting_states(self) -> frozenset[State]:
        """All states whose extension contains :data:`ACCEPT`."""
        return frozenset(state for state in self._states if self.is_accepting(state))

    def has_tau(self) -> bool:
        """Whether any transition is labelled with the unobservable action."""
        return any(act == TAU for _, act, _ in self._transitions)

    # ------------------------------------------------------------------
    # graph-level operations
    # ------------------------------------------------------------------
    def reachable_states(self, origin: State | None = None) -> frozenset[State]:
        """The states reachable from ``origin`` (default: the start state)."""
        root = self._start if origin is None else origin
        if root not in self._states:
            raise InvalidProcessError(f"{root!r} is not a state of this FSP")
        seen = {root}
        frontier = [root]
        while frontier:
            state = frontier.pop()
            for action in self._out_actions.get(state, frozenset()):
                for nxt in self._succ.get((state, action), frozenset()):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
        return frozenset(seen)

    def restrict_to_reachable(self, origin: State | None = None) -> "FSP":
        """Return the sub-process induced by the states reachable from ``origin``."""
        keep = self.reachable_states(origin)
        root = self._start if origin is None else origin
        return FSP(
            states=keep,
            start=root,
            alphabet=self._alphabet,
            transitions=[t for t in self._transitions if t[0] in keep and t[2] in keep],
            variables=self._variables,
            extensions=[e for e in self._extensions if e[0] in keep],
        )

    def rename_states(
        self, mapping: Mapping[State, State] | None = None, prefix: str = ""
    ) -> "FSP":
        """Return an isomorphic copy with renamed states.

        If ``mapping`` is given it must be a bijection on the state set.  If it
        is omitted, every state ``q`` is renamed to ``prefix + q``.
        """
        if mapping is None:
            mapping = {state: f"{prefix}{state}" for state in self._states}
        if set(mapping) != set(self._states):
            raise InvalidProcessError("state renaming must cover exactly the state set")
        if len(set(mapping.values())) != len(self._states):
            raise InvalidProcessError("state renaming must be injective")
        return FSP(
            states=[mapping[q] for q in self._states],
            start=mapping[self._start],
            alphabet=self._alphabet,
            transitions=[(mapping[s], a, mapping[d]) for s, a, d in self._transitions],
            variables=self._variables,
            extensions=[(mapping[q], v) for q, v in self._extensions],
        )

    def with_start(self, start: State) -> "FSP":
        """Return the same process rooted at a different start state."""
        if start not in self._states:
            raise InvalidProcessError(f"{start!r} is not a state of this FSP")
        return FSP(
            states=self._states,
            start=start,
            alphabet=self._alphabet,
            transitions=self._transitions,
            variables=self._variables,
            extensions=self._extensions,
        )

    def with_alphabet(self, alphabet: Iterable[Action]) -> "FSP":
        """Return the same process over a (super-)alphabet.

        Useful when two processes must agree on ``Sigma`` before an
        equivalence check (the paper always compares states of FSPs *having
        the same Sigma and V*).
        """
        new_alphabet = frozenset(alphabet)
        used = {act for _, act, _ in self._transitions if act != TAU}
        if not used <= new_alphabet:
            raise InvalidProcessError(
                f"new alphabet {sorted(new_alphabet)} does not cover used actions {sorted(used)}"
            )
        return FSP(
            states=self._states,
            start=self._start,
            alphabet=new_alphabet,
            transitions=self._transitions,
            variables=self._variables,
            extensions=self._extensions,
        )

    def disjoint_union(self, other: "FSP", prefixes: tuple[str, str] = ("L:", "R:")) -> "FSP":
        """Combine two FSPs into one over the union of their components.

        The paper always speaks of equivalence of *states* and notes that two
        states of distinct FSPs can be compared by viewing them inside a single
        process.  The returned process has states ``L:q`` for states of
        ``self`` and ``R:q`` for states of ``other``; its start state is the
        (renamed) start state of ``self``.

        Returns
        -------
        FSP
            The combined process.  Use ``combined.with_start("R:" + other.start)``
            to root it at the other operand.
        """
        left = self.rename_states(prefix=prefixes[0])
        right = other.rename_states(prefix=prefixes[1])
        return FSP(
            states=left.states | right.states,
            start=left.start,
            alphabet=self._alphabet | other._alphabet,
            transitions=left.transitions | right.transitions,
            variables=self._variables | other._variables,
            extensions=left.extensions | right.extensions,
        )

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, FSP):
            return NotImplemented
        return (
            self._states == other._states
            and self._start == other._start
            and self._alphabet == other._alphabet
            and self._transitions == other._transitions
            and self._variables == other._variables
            and self._extensions == other._extensions
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"FSP(states={self.num_states}, transitions={self.num_transitions}, "
            f"alphabet={sorted(self._alphabet)}, start={self._start!r})"
        )

    def describe(self) -> str:
        """A multi-line human-readable rendering of the process."""
        lines = [f"FSP with {self.num_states} states over {sorted(self._alphabet)}"]
        lines.append(f"  start: {self._start}")
        for state in sorted(self._states):
            ext = sorted(self._ext_map[state])
            marker = f"  {{{', '.join(ext)}}}" if ext else ""
            lines.append(f"  state {state}{marker}")
            for action, dst in sorted(self.transitions_from(state)):
                lines.append(f"    --{action}--> {dst}")
        return "\n".join(lines)


class FSPBuilder:
    """Mutable helper for constructing :class:`FSP` instances incrementally.

    Example
    -------
    >>> builder = FSPBuilder(alphabet={"a", "b"})
    >>> builder.add_transition("p", "a", "q")
    >>> builder.add_transition("q", "b", "p")
    >>> builder.mark_accepting("p")
    >>> process = builder.build(start="p")
    >>> sorted(process.states)
    ['p', 'q']

    States referenced by transitions or extensions are added automatically;
    :meth:`add_state` is only needed for isolated states.
    """

    def __init__(
        self,
        alphabet: Iterable[Action] = (),
        variables: Iterable[Variable] = (ACCEPT,),
    ) -> None:
        self._states: set[State] = set()
        self._alphabet: set[Action] = set(alphabet)
        self._variables: set[Variable] = set(variables)
        self._transitions: set[Transition] = set()
        self._extensions: set[tuple[State, Variable]] = set()

    def add_state(self, state: State) -> "FSPBuilder":
        """Declare a state (no-op if already present)."""
        self._states.add(str(state))
        return self

    def add_action(self, action: Action) -> "FSPBuilder":
        """Add an action to the alphabet without adding a transition."""
        if action != TAU:
            self._alphabet.add(str(action))
        return self

    def add_transition(self, src: State, action: Action, dst: State) -> "FSPBuilder":
        """Add a transition; the action is added to the alphabet unless it is tau."""
        src, dst = str(src), str(dst)
        self._states.update((src, dst))
        if action != TAU:
            self._alphabet.add(str(action))
        self._transitions.add((src, str(action), dst))
        return self

    def add_extension(self, state: State, variable: Variable) -> "FSPBuilder":
        """Attach a variable to a state's extension set."""
        state = str(state)
        self._states.add(state)
        self._variables.add(str(variable))
        self._extensions.add((state, str(variable)))
        return self

    def mark_accepting(self, *states: State) -> "FSPBuilder":
        """Mark states as accepting in the standard-model sense."""
        for state in states:
            self.add_extension(state, ACCEPT)
        return self

    def mark_all_accepting(self) -> "FSPBuilder":
        """Mark every declared state accepting (the *restricted* model)."""
        for state in list(self._states):
            self.add_extension(state, ACCEPT)
        return self

    def build(self, start: State) -> FSP:
        """Finish construction and return the immutable :class:`FSP`."""
        start = str(start)
        self._states.add(start)
        return FSP(
            states=self._states,
            start=start,
            alphabet=self._alphabet,
            transitions=self._transitions,
            variables=self._variables,
            extensions=self._extensions,
        )


# ----------------------------------------------------------------------
# Convenience constructors used across examples, tests and reductions.
# ----------------------------------------------------------------------
_FRESH_COUNTER = itertools.count()


def fresh_state(prefix: str = "s") -> State:
    """Return a globally fresh state name (used by inductive constructions)."""
    return f"{prefix}{next(_FRESH_COUNTER)}"


def single_state_process(
    alphabet: Iterable[Action] = (),
    accepting: bool = True,
    name: State = "p0",
) -> FSP:
    """A one-state process with no transitions.

    With ``accepting=True`` this is the representative FSP of the empty star
    expression (Definition 2.3.1, case ``r = emptyset``) -- a single accepting
    state with no moves.
    """
    extensions = [(name, ACCEPT)] if accepting else []
    return FSP(
        states=[name],
        start=name,
        alphabet=alphabet,
        transitions=[],
        extensions=extensions,
    )


def from_transitions(
    transitions: Iterable[Transition],
    start: State,
    accepting: Iterable[State] = (),
    alphabet: Iterable[Action] = (),
    all_accepting: bool = False,
) -> FSP:
    """Build an FSP from a transition list.

    Parameters
    ----------
    transitions:
        ``(source, action, target)`` triples; ``TAU`` is allowed as an action.
    start:
        The start state.
    accepting:
        States to mark accepting; ignored when ``all_accepting`` is true.
    alphabet:
        Extra actions to include in ``Sigma`` beyond those appearing on
        transitions.
    all_accepting:
        Mark every state accepting (producing a *restricted* process).
    """
    builder = FSPBuilder(alphabet=alphabet)
    builder.add_state(start)
    for src, action, dst in transitions:
        builder.add_transition(src, action, dst)
    if all_accepting:
        builder.mark_all_accepting()
    else:
        builder.mark_accepting(*accepting)
    return builder.build(start=start)
