"""A compact integer-indexed labelled transition system kernel.

The hash-based :class:`~repro.core.fsp.FSP` value object is the right
interface for building and validating processes, but it is the wrong data
structure for the partition-refinement algorithms of Section 3: every
splitter scan walks dicts of frozensets of strings, so constant factors
swamp the ``O(c^2 n log n)`` / ``O(m log n)`` asymptotics the paper is
about.  This module provides the engineered representation that the
solvers in :mod:`repro.partition` actually run on:

* states and actions are interned to dense integers ``0..n-1`` / ``0..k-1``;
* the transition relation is stored once, sorted by ``(source, action)``,
  in CSR-style contiguous arrays (:mod:`array` -- no numpy dependency):
  ``fwd_offsets[s] .. fwd_offsets[s+1]`` indexes the arcs leaving state
  ``s`` in the parallel ``fwd_actions`` / ``fwd_targets`` arrays;
* a reverse index with the same layout (grouped by *target*) is built once
  on demand and cached -- this is the structure every splitter scan of the
  Kanellakis-Smolka and Paige-Tarjan algorithms walks.

``LTS.from_fsp`` / ``LTS.to_fsp`` bridge between the two worlds; the
round-trip is exact whenever tau-transitions are kept (``include_tau=True``,
the default).

Example
-------

>>> from repro.core.fsp import from_transitions
>>> process = from_transitions(
...     [("p", "a", "q"), ("q", "b", "p")],
...     start="p", accepting=["q"], alphabet={"a", "b"},
... )
>>> from repro.core.lts import LTS
>>> kernel = LTS.from_fsp(process)
>>> kernel.n, kernel.num_transitions
(2, 2)
>>> kernel.state_names[kernel.start]
'p'
>>> sorted(
...     (kernel.state_names[s], kernel.action_names[a], kernel.state_names[t])
...     for s, a, t in kernel.arcs()
... )
[('p', 'a', 'q'), ('q', 'b', 'p')]
>>> kernel.to_fsp() == process
True
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

from repro.core.errors import InvalidProcessError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.fsp import FSP

#: Array typecode for state/action indices: platform ``long`` (64-bit on the
#: supported platforms), wide enough for any in-memory transition system.
INDEX_TYPECODE = "l"

_ITEMSIZE = array(INDEX_TYPECODE).itemsize


def _zeros(count: int) -> array:
    """A zero-filled index array of the given length."""
    return array(INDEX_TYPECODE, bytes(_ITEMSIZE * count))


class LTS:
    """An immutable integer-indexed labelled transition system.

    Parameters
    ----------
    state_names:
        External names for the states; state ``i`` is ``state_names[i]``.
    action_names:
        External names for the actions (one per transition label / relation).
    edges:
        ``(source, action, target)`` integer triples.  Duplicates are
        removed; indices must be in range.
    start:
        Index of the distinguished start state (ignored when ``n == 0``).
    ext_sets:
        Optional per-state extension sets (the ``E(q)`` of Definition 2.1.1),
        used by :meth:`extension_block_ids` and :meth:`to_fsp`.
    variables:
        The variable set ``V`` carried through :meth:`to_fsp`.
    observable_alphabet:
        The observable alphabet ``Sigma`` for :meth:`to_fsp` (actions may be a
        superset of the labels actually used on arcs, and may include tau).
    """

    __slots__ = (
        "n",
        "num_actions",
        "state_names",
        "action_names",
        "start",
        "fwd_offsets",
        "fwd_actions",
        "fwd_targets",
        "ext_sets",
        "variables",
        "observable_alphabet",
        "_rev",
        "_rev_lists",
        "_deterministic",
        "_max_fanout",
    )

    def __init__(
        self,
        state_names: Sequence[str],
        action_names: Sequence[str],
        edges: Iterable[tuple[int, int, int]],
        start: int = 0,
        ext_sets: Sequence[frozenset[str]] | None = None,
        variables: tuple[str, ...] = (),
        observable_alphabet: tuple[str, ...] | None = None,
    ) -> None:
        self.state_names: tuple[str, ...] = tuple(state_names)
        self.action_names: tuple[str, ...] = tuple(action_names)
        n = len(self.state_names)
        k = len(self.action_names)
        self.n = n
        self.num_actions = k
        if n and not 0 <= start < n:
            raise InvalidProcessError(f"start index {start} out of range for {n} states")
        self.start = start if n else 0

        unique = sorted(set(edges))
        offsets = _zeros(n + 1)  # zero-initialised
        if unique:
            sources, edge_actions, edge_targets = zip(*unique)
            if not (0 <= sources[0] and sources[-1] < n):
                raise InvalidProcessError("edge with an out-of-range source state")
            if not (0 <= min(edge_targets) and max(edge_targets) < n):
                raise InvalidProcessError("edge with an out-of-range target state")
            if not (0 <= min(edge_actions) and max(edge_actions) < k):
                raise InvalidProcessError("edge with an out-of-range action")
            counts = [0] * (n + 1)
            for src in sources:
                counts[src + 1] += 1
            total = 0
            for s in range(n):
                total += counts[s + 1]
                offsets[s + 1] = total
            self.fwd_actions = array(INDEX_TYPECODE, edge_actions)
            self.fwd_targets = array(INDEX_TYPECODE, edge_targets)
        else:
            self.fwd_actions = _zeros(0)
            self.fwd_targets = _zeros(0)
        self.fwd_offsets = offsets

        self.ext_sets: tuple[frozenset[str], ...] | None = (
            tuple(frozenset(ext) for ext in ext_sets) if ext_sets is not None else None
        )
        if self.ext_sets is not None and len(self.ext_sets) != n:
            raise InvalidProcessError("ext_sets must give one extension set per state")
        self.variables = tuple(variables)
        self.observable_alphabet = observable_alphabet
        self._rev: tuple[array, array, array] | None = None
        self._rev_lists: list[Sequence[int]] | None = None
        self._deterministic: bool | None = None
        self._max_fanout: int | None = None

    # ------------------------------------------------------------------
    # bridges
    # ------------------------------------------------------------------
    @classmethod
    def from_fsp(cls, fsp: "FSP", include_tau: bool = True) -> "LTS":
        """Intern a :class:`~repro.core.fsp.FSP` into the integer kernel.

        States are interned in sorted order (so the numbering is canonical),
        actions likewise; when ``include_tau`` is true and the process has
        tau-moves, tau is interned as one more action.  With
        ``include_tau=False`` the tau-arcs are dropped -- that is the Lemma
        3.1 reduction for observable processes.
        """
        from repro.core.fsp import TAU

        state_names = sorted(fsp.states)
        action_names = sorted(fsp.alphabet)
        if include_tau and fsp.has_tau():
            action_names.append(TAU)
        state_index = {name: i for i, name in enumerate(state_names)}
        action_index = {name: i for i, name in enumerate(action_names)}
        edges = [
            (state_index[src], action_index[act], state_index[dst])
            for src, act, dst in fsp.transitions
            if act in action_index
        ]
        return cls(
            state_names,
            action_names,
            edges,
            start=state_index[fsp.start],
            ext_sets=[fsp.extension(name) for name in state_names],
            variables=tuple(sorted(fsp.variables)),
            observable_alphabet=tuple(sorted(fsp.alphabet)),
        )

    @classmethod
    def from_csr(
        cls,
        state_names: Sequence[str],
        action_names: Sequence[str],
        fwd_offsets: array,
        fwd_actions: array,
        fwd_targets: array,
        start: int = 0,
        ext_sets: Sequence[frozenset[str]] | None = None,
        variables: tuple[str, ...] = (),
        observable_alphabet: tuple[str, ...] | None = None,
    ) -> "LTS":
        """Adopt pre-built CSR arrays without the sort/dedup of ``__init__``.

        The caller guarantees the CSR invariants: ``fwd_offsets`` has length
        ``n + 1`` with ``fwd_offsets[0] == 0`` and ``fwd_offsets[n] == m``,
        and within every state's slice the arcs are sorted by ``(action,
        target)`` with no duplicates -- the exact layout ``__init__`` produces.
        This is the emission path of the weak-transition engine
        (:mod:`repro.core.weak`), whose saturated arc sets are generated in
        sorted order and would only be re-sorted (at ``O(m log m)``) by the
        edge-triple constructor.
        """
        lts = cls.__new__(cls)
        lts.state_names = tuple(state_names)
        lts.action_names = tuple(action_names)
        n = len(lts.state_names)
        lts.n = n
        lts.num_actions = len(lts.action_names)
        if (
            len(fwd_offsets) != n + 1
            or fwd_offsets[n] != len(fwd_targets)
            or len(fwd_actions) != len(fwd_targets)
        ):
            raise InvalidProcessError("CSR offsets do not match the arc arrays")
        if n and not 0 <= start < n:
            raise InvalidProcessError(f"start index {start} out of range for {n} states")
        lts.start = start if n else 0
        lts.fwd_offsets = fwd_offsets
        lts.fwd_actions = fwd_actions
        lts.fwd_targets = fwd_targets
        lts.ext_sets = (tuple(frozenset(ext) for ext in ext_sets) if ext_sets is not None else None)
        if lts.ext_sets is not None and len(lts.ext_sets) != n:
            raise InvalidProcessError("ext_sets must give one extension set per state")
        lts.variables = tuple(variables)
        lts.observable_alphabet = observable_alphabet
        lts._rev = None
        lts._rev_lists = None
        lts._deterministic = None
        lts._max_fanout = None
        return lts

    def to_fsp(self) -> "FSP":
        """Reconstruct the :class:`~repro.core.fsp.FSP` this kernel encodes."""
        from repro.core.fsp import FSP, TAU

        if self.n == 0:
            raise InvalidProcessError("cannot build an FSP from an empty LTS")
        names = self.state_names
        actions = self.action_names
        offsets, arc_actions, arc_targets = self.fwd_offsets, self.fwd_actions, self.fwd_targets
        transitions = [
            (names[src], actions[arc_actions[i]], names[arc_targets[i]])
            for src in range(self.n)
            for i in range(offsets[src], offsets[src + 1])
        ]
        ext_sets = self.ext_sets if self.ext_sets is not None else (frozenset(),) * self.n
        extensions = [(names[s], var) for s in range(self.n) for var in ext_sets[s]]
        alphabet = (
            self.observable_alphabet
            if self.observable_alphabet is not None
            else tuple(name for name in actions if name != TAU)
        )
        return FSP(
            states=names,
            start=names[self.start],
            alphabet=alphabet,
            transitions=transitions,
            variables=self.variables or {var for _, var in extensions},
            extensions=extensions,
        )

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def num_transitions(self) -> int:
        """``m`` -- the number of arcs."""
        return len(self.fwd_targets)

    def arcs(self) -> Iterator[tuple[int, int, int]]:
        """All arcs as ``(source, action, target)`` integer triples."""
        offsets = self.fwd_offsets
        for src in range(self.n):
            for i in range(offsets[src], offsets[src + 1]):
                yield src, self.fwd_actions[i], self.fwd_targets[i]

    def reverse_index(self) -> tuple[array, array, array]:
        """The cached reverse adjacency ``(rev_offsets, rev_actions, rev_sources)``.

        Arcs grouped by *target*: ``rev_offsets[t] .. rev_offsets[t+1]``
        indexes the arcs entering state ``t``.  This is the index every
        splitter scan walks, so it is built exactly once per LTS.
        """
        if self._rev is None:
            n, m = self.n, len(self.fwd_targets)
            rev_offsets = _zeros(n + 1)
            rev_actions = _zeros(m)
            rev_sources = _zeros(m)
            fwd_targets = self.fwd_targets
            fwd_actions = self.fwd_actions
            for dst in fwd_targets:
                rev_offsets[dst + 1] += 1
            for t in range(n):
                rev_offsets[t + 1] += rev_offsets[t]
            cursor = list(rev_offsets[:n])
            offsets = self.fwd_offsets
            for src in range(n):
                for i in range(offsets[src], offsets[src + 1]):
                    dst = fwd_targets[i]
                    slot = cursor[dst]
                    rev_actions[slot] = fwd_actions[i]
                    rev_sources[slot] = src
                    cursor[dst] = slot + 1
            self._rev = (rev_offsets, rev_actions, rev_sources)
        return self._rev

    def reverse_lists(self) -> list[Sequence[int]]:
        """The reverse index as a flat list of per-``(action, target)`` source lists.

        Slot ``action * n + target`` holds the sources of ``action``-arcs into
        ``target`` (a shared empty tuple when there are none).  This view
        trades ``O(k n)`` slots for branch-free inner loops: a splitter scan
        is one list lookup plus a direct iteration per member, with no offset
        arithmetic per arc.  Built once from the CSR arrays and cached.
        """
        if self._rev_lists is None:
            n = self.n
            empty: tuple[int, ...] = ()
            slots: list[Sequence[int]] = [empty] * (n * self.num_actions)
            offsets = self.fwd_offsets
            fwd_actions = self.fwd_actions.tolist()
            fwd_targets = self.fwd_targets.tolist()
            for src in range(n):
                for i in range(offsets[src], offsets[src + 1]):
                    key = fwd_actions[i] * n + fwd_targets[i]
                    slot = slots[key]
                    if slot is empty:
                        slots[key] = [src]
                    else:
                        slot.append(src)
            self._rev_lists = slots
        return self._rev_lists

    def is_deterministic(self) -> bool:
        """Whether every ``(state, action)`` pair has at most one successor.

        On deterministic systems the solvers may use Hopcroft's smaller-half
        worklist rule, which is unsound for relations in general.  The scan
        exploits the CSR sort order -- two arcs with the same ``(state,
        action)`` are adjacent -- and exits at the first duplicate.
        """
        if self._deterministic is None:
            offsets, arc_actions = self.fwd_offsets, self.fwd_actions
            self._deterministic = True
            for s in range(self.n):
                lo, hi = offsets[s], offsets[s + 1]
                for i in range(lo + 1, hi):
                    if arc_actions[i] == arc_actions[i - 1]:
                        self._deterministic = False
                        return False
        return self._deterministic

    def max_fanout(self) -> int:
        """The ``c`` of Section 3: the largest ``|Delta(q, a)|`` over all pairs."""
        if self._max_fanout is None:
            best = 0
            offsets, arc_actions = self.fwd_offsets, self.fwd_actions
            for s in range(self.n):
                lo, hi = offsets[s], offsets[s + 1]
                run = 0
                last = -1
                for i in range(lo, hi):
                    act = arc_actions[i]
                    run = run + 1 if act == last else 1
                    last = act
                    if run > best:
                        best = run
            self._max_fanout = best
        return self._max_fanout

    def extension_block_ids(self) -> tuple[list[int], int]:
        """Group states by extension set: ``(block_of, num_blocks)``.

        This is the initial partition of the Lemma 3.1 reduction.  States
        without extension information all land in one block.
        """
        if self.ext_sets is None:
            return [0] * self.n, 1 if self.n else 0
        index: dict[frozenset[str], int] = {}
        block_of = [0] * self.n
        for i, ext in enumerate(self.ext_sets):
            block_of[i] = index.setdefault(ext, len(index))
        return block_of, len(index)

    def __repr__(self) -> str:
        return (f"LTS(n={self.n}, m={self.num_transitions}, " f"actions={list(self.action_names)})")
