"""Core process model: FSPs, model classification, weak derivatives, paper figures."""

from repro.core.classify import ModelClass, belongs_to, classify, require
from repro.core.derivatives import (
    WeakTransitionView,
    saturate,
    saturate_reference,
    tau_closure,
    tau_closure_reference,
    weak_successors,
)
from repro.core.errors import (
    ExpressionError,
    InvalidProcessError,
    ModelClassError,
    ReproError,
    StateSpaceLimitError,
)
from repro.core.fsp import (
    ACCEPT,
    EPSILON,
    FSP,
    TAU,
    FSPBuilder,
    from_transitions,
    single_state_process,
)
from repro.core.lts import LTS
from repro.core.weak import WeakKernel, saturate_lts, tau_closure_bits, tau_scc

__all__ = [
    "ACCEPT",
    "EPSILON",
    "ExpressionError",
    "FSP",
    "FSPBuilder",
    "InvalidProcessError",
    "LTS",
    "ModelClass",
    "ModelClassError",
    "ReproError",
    "StateSpaceLimitError",
    "TAU",
    "WeakKernel",
    "WeakTransitionView",
    "belongs_to",
    "classify",
    "from_transitions",
    "require",
    "saturate",
    "saturate_lts",
    "saturate_reference",
    "single_state_process",
    "tau_closure",
    "tau_closure_bits",
    "tau_closure_reference",
    "tau_scc",
    "weak_successors",
]
