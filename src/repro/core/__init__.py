"""Core process model: FSPs, model classification, weak derivatives, paper figures."""

from repro.core.classify import ModelClass, belongs_to, classify, require
from repro.core.derivatives import WeakTransitionView, saturate, tau_closure, weak_successors
from repro.core.errors import (
    ExpressionError,
    InvalidProcessError,
    ModelClassError,
    ReproError,
    StateSpaceLimitError,
)
from repro.core.fsp import ACCEPT, EPSILON, FSP, TAU, FSPBuilder, from_transitions, single_state_process
from repro.core.lts import LTS

__all__ = [
    "ACCEPT",
    "EPSILON",
    "ExpressionError",
    "FSP",
    "FSPBuilder",
    "InvalidProcessError",
    "LTS",
    "ModelClass",
    "ModelClassError",
    "ReproError",
    "StateSpaceLimitError",
    "TAU",
    "WeakTransitionView",
    "belongs_to",
    "classify",
    "from_transitions",
    "require",
    "saturate",
    "single_state_process",
    "tau_closure",
    "weak_successors",
]
